#include "cluster/kmeans.h"

/// \file kmeans.cc
/// \brief Lloyd's k-means with k-means++ seeding over feature vectors —
/// the scalable clustering backend.

#include <algorithm>
#include <limits>

namespace smb::cluster {

namespace {

double SquaredL2(const FeatureVector& a, const FeatureVector& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
std::vector<FeatureVector> SeedPlusPlus(
    const std::vector<FeatureVector>& points, size_t k, Rng* rng) {
  std::vector<FeatureVector> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng->UniformIndex(points.size())]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i], SquaredL2(points[i], centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All points coincide with centroids; duplicate one arbitrarily.
      centroids.push_back(points[rng->UniformIndex(points.size())]);
      continue;
    }
    double draw = rng->UniformDouble() * total;
    size_t chosen = points.size() - 1;
    double acc = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      acc += dist2[i];
      if (acc >= draw) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<FeatureVector>& points,
                            const KMeansOptions& options, Rng* rng) {
  if (points.empty()) {
    return Status::InvalidArgument("k-means requires at least one point");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  const size_t dims = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dims) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }

  const size_t k = std::min(options.k, points.size());
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, k, rng);
  result.assignment.assign(points.size(), -1);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double d = SquaredL2(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && options.early_stop) break;
    // Update step.
    std::vector<FeatureVector> sums(k, FeatureVector(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      auto c = static_cast<size_t>(result.assignment[i]);
      for (size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng->UniformIndex(points.size())];
        continue;
      }
      for (size_t d = 0; d < dims; ++d) {
        sums[c][d] /= static_cast<double>(counts[c]);
      }
      result.centroids[c] = std::move(sums[c]);
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.inertia += SquaredL2(
        points[i],
        result.centroids[static_cast<size_t>(result.assignment[i])]);
  }
  return result;
}

}  // namespace smb::cluster
