#pragma once

#include <vector>

#include "cluster/feature.h"
#include "cluster/kmeans.h"
#include "common/result.h"
#include "common/rng.h"
#include "schema/repository.h"

/// \file element_clustering.h
/// \brief Clustering of all repository elements for non-exhaustive search.
///
/// This is the search-space-restriction heuristic of the paper's companion
/// work [16]: repository elements are clustered by name features once, and a
/// query element then only considers elements in the clusters whose
/// centroids are most similar to it. Mappings that would use elements
/// outside those clusters are never generated — which is exactly what makes
/// the improved system non-exhaustive.

namespace smb::cluster {

/// \brief Clustering algorithm selector.
enum class ClusterAlgorithm {
  kKMeans,
  kAgglomerative,
};

/// \brief Parameters for repository clustering.
struct ElementClusteringOptions {
  ClusterAlgorithm algorithm = ClusterAlgorithm::kKMeans;
  /// Number of clusters; if 0, uses sqrt(#elements) rounded up.
  size_t num_clusters = 0;
  FeaturizerOptions featurizer;
  KMeansOptions kmeans;
};

/// \brief An immutable clustering of every element of a repository.
class ElementClustering {
 public:
  /// Builds a clustering over all elements of `repo`.
  static Result<ElementClustering> Build(
      const schema::SchemaRepository& repo,
      const ElementClusteringOptions& options, Rng* rng);

  /// Number of clusters.
  size_t cluster_count() const { return centroids_.size(); }

  /// Cluster id of a repository element (same order as repo.AllElements()).
  int ClusterOf(size_t element_index) const {
    return assignment_[element_index];
  }

  /// The elements of cluster `c`.
  const std::vector<schema::ElementRef>& ClusterMembers(int c) const {
    return members_[static_cast<size_t>(c)];
  }

  /// \brief Cluster ids ranked by centroid cosine similarity to a query
  /// element name (highest first), truncated to `top_m`.
  std::vector<int> TopClustersFor(std::string_view query_name,
                                  std::string_view query_parent_name,
                                  size_t top_m) const;

  /// The featurizer used to build the clustering.
  const ElementFeaturizer& featurizer() const { return featurizer_; }

 private:
  ElementClustering(ElementFeaturizer featurizer,
                    std::vector<int> assignment,
                    std::vector<FeatureVector> centroids,
                    std::vector<std::vector<schema::ElementRef>> members)
      : featurizer_(std::move(featurizer)),
        assignment_(std::move(assignment)),
        centroids_(std::move(centroids)),
        members_(std::move(members)) {}

  ElementFeaturizer featurizer_;
  std::vector<int> assignment_;
  std::vector<FeatureVector> centroids_;
  std::vector<std::vector<schema::ElementRef>> members_;
};

}  // namespace smb::cluster
