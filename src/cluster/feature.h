#pragma once

#include <string_view>
#include <vector>

/// \file feature.h
/// \brief Dense feature vectors for schema elements.
///
/// Element names are embedded by hashing character trigrams into a
/// fixed-dimension count vector (L2-normalized). Optionally the parent name
/// is mixed in with a lower weight, so elements keep some structural
/// context — the clustering heuristic of the paper's companion work [16]
/// groups elements that are good *candidate targets* for the same query
/// element.

namespace smb::cluster {

using FeatureVector = std::vector<double>;

/// \brief Featurization parameters.
struct FeaturizerOptions {
  /// Dimension of the hashed trigram space.
  size_t dimensions = 64;
  /// Weight of the parent element's name trigrams (0 disables).
  double parent_weight = 0.3;
  /// Case-fold names before hashing.
  bool case_insensitive = true;
};

/// \brief Hashes names into FeatureVectors.
class ElementFeaturizer {
 public:
  explicit ElementFeaturizer(FeaturizerOptions options = {})
      : options_(options) {}

  /// Embeds a name (with optional parent-name context).
  FeatureVector Featurize(std::string_view name,
                          std::string_view parent_name = "") const;

  size_t dimensions() const { return options_.dimensions; }

 private:
  void AddTrigrams(std::string_view name, double weight,
                   FeatureVector* out) const;

  FeaturizerOptions options_;
};

/// Euclidean distance between equal-length vectors.
double L2Distance(const FeatureVector& a, const FeatureVector& b);

/// Cosine similarity; 0 when either vector is all-zero.
double CosineSimilarity(const FeatureVector& a, const FeatureVector& b);

/// Scales a vector to unit L2 norm (no-op on the zero vector).
void L2Normalize(FeatureVector* v);

}  // namespace smb::cluster
