#include "cluster/element_clustering.h"

/// \file element_clustering.cc
/// \brief Repository-wide element clustering — the search-space
/// restriction of the paper's companion non-exhaustive matcher [16]
/// driving match::ClusterMatcher.

#include <algorithm>
#include <cmath>

#include "cluster/agglomerative.h"

namespace smb::cluster {

Result<ElementClustering> ElementClustering::Build(
    const schema::SchemaRepository& repo,
    const ElementClusteringOptions& options, Rng* rng) {
  if (repo.total_elements() == 0) {
    return Status::InvalidArgument("repository has no elements to cluster");
  }
  ElementFeaturizer featurizer(options.featurizer);
  std::vector<schema::ElementRef> elements = repo.AllElements();
  std::vector<FeatureVector> points;
  points.reserve(elements.size());
  for (const auto& ref : elements) {
    const schema::Schema& s = repo.schema(ref.schema_index);
    const schema::SchemaNode& node = s.node(ref.node);
    std::string_view parent_name;
    if (node.parent != schema::kInvalidNode) {
      parent_name = s.node(node.parent).name;
    }
    points.push_back(featurizer.Featurize(node.name, parent_name));
  }

  size_t k = options.num_clusters;
  if (k == 0) {
    k = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(points.size()))));
  }

  std::vector<int> assignment;
  std::vector<FeatureVector> centroids;
  if (options.algorithm == ClusterAlgorithm::kKMeans) {
    KMeansOptions kopts = options.kmeans;
    kopts.k = k;
    SMB_ASSIGN_OR_RETURN(KMeansResult km, KMeans(points, kopts, rng));
    assignment = std::move(km.assignment);
    centroids = std::move(km.centroids);
  } else {
    AgglomerativeOptions aopts;
    aopts.target_clusters = k;
    SMB_ASSIGN_OR_RETURN(AgglomerativeResult ag,
                         AgglomerativeCluster(points, aopts));
    assignment = std::move(ag.assignment);
    centroids = std::move(ag.centroids);
  }

  std::vector<std::vector<schema::ElementRef>> members(centroids.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    members[static_cast<size_t>(assignment[i])].push_back(elements[i]);
  }

  return ElementClustering(std::move(featurizer), std::move(assignment),
                           std::move(centroids), std::move(members));
}

std::vector<int> ElementClustering::TopClustersFor(
    std::string_view query_name, std::string_view query_parent_name,
    size_t top_m) const {
  FeatureVector q = featurizer_.Featurize(query_name, query_parent_name);
  std::vector<std::pair<double, int>> scored;
  scored.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    scored.emplace_back(CosineSimilarity(q, centroids_[c]),
                        static_cast<int>(c));
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<int> out;
  for (size_t i = 0; i < scored.size() && i < top_m; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace smb::cluster
