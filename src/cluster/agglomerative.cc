#include "cluster/agglomerative.h"

/// \file agglomerative.cc
/// \brief Bottom-up average/single/complete-linkage clustering used as the
/// quadratic-but-deterministic alternative to k-means for small
/// repositories.

#include <algorithm>
#include <limits>

namespace smb::cluster {

Result<AgglomerativeResult> AgglomerativeCluster(
    const std::vector<FeatureVector>& points,
    const AgglomerativeOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument(
        "agglomerative clustering requires at least one point");
  }
  if (options.target_clusters == 0) {
    return Status::InvalidArgument("target_clusters must be positive");
  }
  const size_t n = points.size();
  const size_t dims = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dims) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }
  const size_t target = std::min(options.target_clusters, n);

  // active[c]: the point indices of live cluster c.
  std::vector<std::vector<size_t>> members(n);
  std::vector<bool> alive(n, true);
  for (size_t i = 0; i < n; ++i) members[i] = {i};

  // Pairwise point distances, computed once.
  std::vector<double> pd(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = L2Distance(points[i], points[j]);
      pd[i * n + j] = d;
      pd[j * n + i] = d;
    }
  }

  auto cluster_distance = [&](size_t a, size_t b) {
    double best_min = std::numeric_limits<double>::infinity();
    double best_max = 0.0;
    double sum = 0.0;
    size_t count = 0;
    for (size_t i : members[a]) {
      for (size_t j : members[b]) {
        double d = pd[i * n + j];
        best_min = std::min(best_min, d);
        best_max = std::max(best_max, d);
        sum += d;
        ++count;
      }
    }
    switch (options.linkage) {
      case Linkage::kSingle:
        return best_min;
      case Linkage::kComplete:
        return best_max;
      case Linkage::kAverage:
        return sum / static_cast<double>(count);
    }
    return sum / static_cast<double>(count);
  };

  size_t live = n;
  while (live > target) {
    // Find the closest pair of live clusters.
    double best = std::numeric_limits<double>::infinity();
    size_t ba = 0, bb = 0;
    for (size_t a = 0; a < n; ++a) {
      if (!alive[a]) continue;
      for (size_t b = a + 1; b < n; ++b) {
        if (!alive[b]) continue;
        double d = cluster_distance(a, b);
        if (d < best) {
          best = d;
          ba = a;
          bb = b;
        }
      }
    }
    // Merge bb into ba.
    members[ba].insert(members[ba].end(), members[bb].begin(),
                       members[bb].end());
    members[bb].clear();
    alive[bb] = false;
    --live;
  }

  // Densify cluster ids and compute centroids.
  AgglomerativeResult result;
  result.assignment.assign(n, -1);
  for (size_t c = 0; c < n; ++c) {
    if (!alive[c]) continue;
    int id = static_cast<int>(result.centroids.size());
    FeatureVector centroid(dims, 0.0);
    for (size_t i : members[c]) {
      result.assignment[i] = id;
      for (size_t d = 0; d < dims; ++d) centroid[d] += points[i][d];
    }
    for (size_t d = 0; d < dims; ++d) {
      centroid[d] /= static_cast<double>(members[c].size());
    }
    result.centroids.push_back(std::move(centroid));
  }
  return result;
}

}  // namespace smb::cluster
