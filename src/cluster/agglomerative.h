#pragma once

#include <cstddef>
#include <vector>

#include "cluster/feature.h"
#include "common/result.h"

/// \file agglomerative.h
/// \brief Bottom-up (agglomerative) hierarchical clustering.
///
/// Average-linkage merging, cut when `target_clusters` remain. Quadratic in
/// the number of points; intended for repositories up to a few thousand
/// elements (the k-means path scales further).

namespace smb::cluster {

/// \brief Linkage criterion for cluster-to-cluster distance.
enum class Linkage {
  kSingle,    ///< min pairwise distance
  kComplete,  ///< max pairwise distance
  kAverage,   ///< mean pairwise distance
};

/// \brief Agglomerative clustering parameters.
struct AgglomerativeOptions {
  size_t target_clusters = 8;
  Linkage linkage = Linkage::kAverage;
};

/// \brief Result: per-point cluster ids (0..k-1, dense) and centroids.
struct AgglomerativeResult {
  std::vector<int> assignment;
  std::vector<FeatureVector> centroids;
};

/// \brief Clusters `points` bottom-up until `target_clusters` remain.
Result<AgglomerativeResult> AgglomerativeCluster(
    const std::vector<FeatureVector>& points,
    const AgglomerativeOptions& options);

}  // namespace smb::cluster
