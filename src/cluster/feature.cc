#include "cluster/feature.h"

/// \file feature.cc
/// \brief Character-trigram feature vectors (hashed, L2-normalized) that
/// embed element names for clustering distance.

#include <cmath>
#include <cstdint>

#include "common/strings.h"

namespace smb::cluster {

namespace {

/// FNV-1a 64-bit over a short string.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void ElementFeaturizer::AddTrigrams(std::string_view name, double weight,
                                    FeatureVector* out) const {
  if (name.empty() || weight <= 0.0) return;
  std::string padded = "##";
  padded += name;
  padded += "##";
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    uint64_t h = Fnv1a(std::string_view(padded).substr(i, 3));
    size_t dim = static_cast<size_t>(h % options_.dimensions);
    // Sign hashing halves collision bias (standard feature-hashing trick).
    double sign = ((h >> 32) & 1) ? 1.0 : -1.0;
    (*out)[dim] += sign * weight;
  }
}

FeatureVector ElementFeaturizer::Featurize(std::string_view name,
                                           std::string_view parent_name) const {
  FeatureVector v(options_.dimensions, 0.0);
  std::string lname, lparent;
  if (options_.case_insensitive) {
    lname = ToLower(name);
    lparent = ToLower(parent_name);
    name = lname;
    parent_name = lparent;
  }
  AddTrigrams(name, 1.0, &v);
  AddTrigrams(parent_name, options_.parent_weight, &v);
  L2Normalize(&v);
  return v;
}

double L2Distance(const FeatureVector& a, const FeatureVector& b) {
  double sum = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double CosineSimilarity(const FeatureVector& a, const FeatureVector& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void L2Normalize(FeatureVector* v) {
  double norm = 0.0;
  for (double x : *v) norm += x * x;
  if (norm <= 0.0) return;
  norm = std::sqrt(norm);
  for (double& x : *v) x /= norm;
}

}  // namespace smb::cluster
