#pragma once

#include <cstddef>
#include <vector>

#include "cluster/feature.h"
#include "common/result.h"
#include "common/rng.h"

/// \file kmeans.h
/// \brief Lloyd's k-means with k-means++ seeding.

namespace smb::cluster {

/// \brief K-means parameters.
struct KMeansOptions {
  size_t k = 8;
  size_t max_iterations = 50;
  /// Stop when no assignment changes in an iteration.
  bool early_stop = true;
};

/// \brief Clustering output: per-point cluster ids and the centroids.
struct KMeansResult {
  std::vector<int> assignment;           ///< point index -> cluster id
  std::vector<FeatureVector> centroids;  ///< cluster id -> centroid
  size_t iterations = 0;                 ///< Lloyd iterations executed
  double inertia = 0.0;                  ///< sum of squared distances
};

/// \brief Runs k-means++ / Lloyd on `points`.
///
/// Fails with `kInvalidArgument` when `points` is empty, `k == 0`, or the
/// points have inconsistent dimensions. When `k >= points.size()`, every
/// point gets its own cluster.
Result<KMeansResult> KMeans(const std::vector<FeatureVector>& points,
                            const KMeansOptions& options, Rng* rng);

}  // namespace smb::cluster
