#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "schema/repository.h"
#include "sim/name_similarity.h"
#include "sim/prepared_kernel.h"

/// \file prepared_repository.h
/// \brief Query-independent repository index: prepared names, inverted
/// postings and type buckets, built once and shared by every query.
///
/// The dense engine path recomputes one full query×repository cost matrix
/// per query — O(|query|·Σ|schema|) composite name distances every time,
/// even though the repository side never changes. This index moves all
/// query-independent work to a one-time build:
///
///  * every element's name is folded and tokenized once
///    (`sim::PreparedName`, the same fast path the dense pool uses — costs
///    computed over the index are bit-identical to the pool's);
///  * a token inverted index (plus synonym-group postings) finds elements
///    sharing an identifier word with a query element in O(postings);
///  * a padded-trigram inverted index with per-element multiplicities finds
///    fuzzy name overlaps *and* yields each element's exact trigram Dice
///    coefficient against the query name without touching the element;
///  * whole-name and synonym-group name buckets catch exact renames and
///    dictionary aliases ("customer" → "client");
///  * type buckets group elements by declared simple type.
///
/// `CandidateGenerator` (candidate_generator.h) turns these postings into
/// top-C candidate lists per query element together with an **admissible
/// skip-bound** — a certified lower bound on the name+type cost of every
/// element it did not retrieve. The argument, for the composite measure
/// `sim = (w_l·L + w_j·J + w_t·D + w_k·K) / Σw` of sim/name_similarity.h:
///
///  1. L, J, K ≤ 1 always, and D (trigram Dice) is computed *exactly* for
///     every element sharing ≥ 1 trigram with the query name, directly from
///     the posting multiplicities; elements sharing none have D = 0.
///  2. Hence for any unscored element: sim ≤ 1 − (w_t/Σw)·(1 − D), i.e.
///     cost = 1 − sim ≥ (w_t/Σw)·(1 − D). The type-mismatch penalty only
///     adds cost, so the bound survives type awareness.
///  3. The two short-circuits of the measure are neutralized by always
///     scoring their buckets: equal folded names (sim = 1) share all
///     trigrams so their bound is 0 anyway, and whole-name synonym pairs
///     (sim = synonym_score, independent of trigrams) are exactly the
///     name-group bucket, which the generator always scores.
///
/// The bound lets Δ-threshold completeness be argued per (position, schema)
/// cell — a mapping through a skipped element costs at least
/// `w_name·bound / normalizer` in Δ — and measured end-to-end (see
/// `eval::RunIndexedWorkload`'s recall-vs-dense report).
///
/// Everything here is immutable after Build and safe for concurrent reads;
/// one index serves every worker thread and every query.

namespace smb::index {

/// \brief Appends the deduplicated (token id, synonym group) pairs of a
/// prepared name to `out` (cleared first) — the unit both the index build
/// posts under and query-time retrieval looks up under, shared so the two
/// sides can never disagree on what counts as a token.
void AppendUniqueTokenGroupPairs(const sim::PreparedName& name,
                                 std::vector<std::pair<uint32_t, int32_t>>* out);

/// \brief One repository element with its query-independent precompute.
struct PreparedElement {
  int32_t schema_index = -1;
  schema::NodeId node = schema::kInvalidNode;
  /// Folded + tokenized + kernel-compiled name: interned gram/token ids,
  /// synonym groups and PEQ bitmasks, interned against the repository's
  /// shared `TokenTable` (bit-compatible with the dense pool's path).
  sim::PreparedName name;
  /// |ExtractNgrams(name.folded, 3)| — the Dice denominator contribution.
  uint32_t trigram_count = 0;
};

/// \brief One posting of the trigram index: element + gram multiplicity.
struct TrigramPosting {
  uint32_t ordinal = 0;
  /// How many times the gram occurs in the element name (multiset count).
  uint16_t count = 0;
};

/// Postings per block of the block-max trigram metadata: each posting list
/// is cut into runs of this many consecutive postings (the last run
/// ragged), and every run carries score upper bounds a WAND-style
/// traversal can skip against without touching the postings themselves.
inline constexpr size_t kTrigramBlockSize = 64;

/// \brief Block metadata of one trigram posting list, as three parallel
/// spans (block `b` of the list covers postings
/// `[b·kTrigramBlockSize, (b+1)·kTrigramBlockSize)` of the list).
///
/// The fields bound the trigram Dice of any element in the block: for a
/// query gram with multiplicity `q`, the block's elements contribute at
/// most `min(q, max_count)` to a Dice numerator, and every element's Dice
/// denominator is at least `qa + tc_floor` — so
/// `2·Σ min(q_i, max_count_i) / (qa + max(Σ…, min tc_floor))` is an
/// admissible upper bound on the Dice of every element covered by the
/// blocks (see candidate_generator.cc's block-max traversal).
struct TrigramBlockSpans {
  /// Ordinal of each block's last posting (ascending within the list).
  std::span<const uint32_t> last_ordinals;
  /// Max posting multiplicity within each block.
  std::span<const uint16_t> max_counts;
  /// Min `PreparedElement::trigram_count` over each block's elements.
  std::span<const uint32_t> tc_floors;

  size_t size() const { return last_ordinals.size(); }
};

/// \brief Size/shape of a built index (for reports and benches).
struct PreparedRepositoryStats {
  size_t element_count = 0;
  size_t distinct_tokens = 0;
  size_t distinct_trigrams = 0;
  size_t distinct_types = 0;
  /// Token postings entries across all tokens.
  size_t token_posting_entries = 0;
  /// Trigram postings entries across all grams.
  size_t trigram_posting_entries = 0;
};

/// \brief The query-independent repository index. Build once per
/// repository, reuse for every query (and across threads).
class PreparedRepository {
 public:
  /// \brief Indexes every element of `repo`. `name_options` must be the
  /// same the queries will match with (folding and synonyms feed the
  /// index); the repository must outlive the index.
  static Result<PreparedRepository> Build(
      const schema::SchemaRepository& repo,
      const sim::NameSimilarityOptions& name_options);

  /// The repository this index was built over.
  const schema::SchemaRepository& repo() const { return *repo_; }

  /// True iff this index was built over exactly `repo` (same object).
  bool BuiltOver(const schema::SchemaRepository& repo) const {
    return repo_ == &repo;
  }

  const sim::NameSimilarityOptions& name_options() const {
    return name_options_;
  }

  /// Elements across all schemas; ordinals are dense in
  /// (schema, node) order.
  size_t element_count() const { return elements_.size(); }
  const PreparedElement& element(uint32_t ordinal) const {
    return elements_[ordinal];
  }

  /// Ordinal of the first element of `schema_index`.
  uint32_t first_ordinal(int32_t schema_index) const {
    return first_ordinal_[static_cast<size_t>(schema_index)];
  }

  /// Ordinal of `(schema_index, node)`.
  uint32_t OrdinalOf(int32_t schema_index, schema::NodeId node) const {
    return first_ordinal(schema_index) + static_cast<uint32_t>(node);
  }

  /// The repository-wide token interner: every element token was interned
  /// into it at build time; queries prepare against it lookup-only (const,
  /// thread-safe), so element/query token ids agree. Heap-allocated so the
  /// provenance pointers inside the prepared names stay valid when the
  /// repository index itself is moved.
  const sim::TokenTable& token_table() const { return *token_table_; }

  /// Elements whose name contains `token` (sorted ordinals); empty when
  /// the token is unknown.
  std::span<const uint32_t> TokenPostings(std::string_view token) const;

  /// Id-keyed fast path of `TokenPostings`: `token_id` from
  /// `token_table()`. `kUnknownTokenId` yields an empty span.
  std::span<const uint32_t> TokenPostings(uint32_t token_id) const;

  /// Elements containing any token of synonym group `group` (sorted
  /// ordinals); nullptr when the group posted nothing.
  const std::vector<uint32_t>* TokenGroupPostings(int group) const;

  /// Trigram postings for `gram` with per-element multiplicities; empty
  /// when no element name contains the gram.
  std::span<const TrigramPosting> TrigramPostings(
      std::string_view gram) const;

  /// Id-keyed fast path of `TrigramPostings`: `gram_id` is a
  /// `sim::GramTable::Pack`ed trigram (as stored in
  /// `sim::PreparedName::gram_ids`).
  std::span<const TrigramPosting> TrigramPostings(uint32_t gram_id) const;

  /// Index of `gram_id`'s posting list in the CSR trigram arrays, or -1
  /// when no element name contains the gram. The returned index addresses
  /// `TrigramListPostings` / `TrigramBlocks`.
  int32_t TrigramListIndex(uint32_t gram_id) const;

  /// Postings of trigram list `list_index` (from `TrigramListIndex`),
  /// ascending by ordinal.
  std::span<const TrigramPosting> TrigramListPostings(
      int32_t list_index) const;

  /// Block-max metadata of trigram list `list_index`: per-block score
  /// upper bounds over runs of `kTrigramBlockSize` postings.
  TrigramBlockSpans TrigramBlocks(int32_t list_index) const;

  /// Elements whose folded name equals `folded` (sorted ordinals).
  const std::vector<uint32_t>* NameBucket(std::string_view folded) const;

  /// Elements whose whole folded name belongs to synonym group `group`.
  const std::vector<uint32_t>* NameGroupBucket(int group) const;

  /// Elements declaring simple type `type` (sorted ordinals); nullptr for
  /// unknown types. The empty string buckets untyped elements.
  const std::vector<uint32_t>* TypeBucket(std::string_view type) const;

  const PreparedRepositoryStats& stats() const { return stats_; }

 private:
  PreparedRepository() = default;

  /// The snapshot serializer/deserializer (index/snapshot.cc) reads and
  /// rebuilds the private structures directly — it is the *only* other
  /// writer of this class, so the invariants stay in two audited places.
  friend struct SnapshotCodec;

  /// Derives the block-max arrays from `trigram_offsets_` /
  /// `trigram_entries_` / `elements_` (which must be final). Called by
  /// `Build` and by the snapshot loader for pre-v2 files.
  void BuildTrigramBlocks();

  template <typename Map>
  static const typename Map::mapped_type* Find(const Map& map,
                                               const std::string& key) {
    auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  }

  const schema::SchemaRepository* repo_ = nullptr;
  sim::NameSimilarityOptions name_options_;
  std::vector<PreparedElement> elements_;
  std::vector<uint32_t> first_ordinal_;
  /// Shared interner — element token ids index `token_postings_` directly.
  /// On the heap: `PreparedName::token_table` provenance pointers must
  /// survive moves of this object.
  std::unique_ptr<sim::TokenTable> token_table_ =
      std::make_unique<sim::TokenTable>();
  /// Token postings in CSR form, dense by interned token id: the postings
  /// of token `t` are `token_posting_entries_[token_posting_offsets_[t] ..
  /// token_posting_offsets_[t + 1])`. Two flat arrays instead of one
  /// vector per token: cache-friendly on the query hot path and bulk
  /// loadable from a snapshot.
  std::vector<uint32_t> token_posting_offsets_;
  std::vector<uint32_t> token_posting_entries_;
  std::unordered_map<int, std::vector<uint32_t>> token_group_postings_;
  /// Trigram postings in sorted-key CSR form: `trigram_keys_` holds the
  /// distinct packed gram ids (`sim::GramTable::Pack`, ascending), and the
  /// postings of `trigram_keys_[i]` are
  /// `trigram_entries_[trigram_offsets_[i] .. trigram_offsets_[i + 1])`.
  /// Lookup is a binary search — no hashing, no per-gram heap blocks.
  std::vector<uint32_t> trigram_keys_;
  std::vector<uint32_t> trigram_offsets_;
  std::vector<TrigramPosting> trigram_entries_;
  /// Block-max metadata over `trigram_entries_`, CSR by list: the blocks
  /// of list `i` are `[trigram_block_offsets_[i],
  /// trigram_block_offsets_[i + 1])` into the three parallel arrays
  /// (`ceil(list length / kTrigramBlockSize)` blocks per list). Stored in
  /// snapshots from format v2; rebuilt by `BuildTrigramBlocks` for v1
  /// files and fresh builds.
  std::vector<uint32_t> trigram_block_offsets_;
  std::vector<uint32_t> trigram_block_last_ordinals_;
  std::vector<uint16_t> trigram_block_max_counts_;
  std::vector<uint32_t> trigram_block_tc_floors_;
  std::unordered_map<std::string, std::vector<uint32_t>> name_buckets_;
  std::unordered_map<int, std::vector<uint32_t>> name_group_buckets_;
  std::unordered_map<std::string, std::vector<uint32_t>> type_buckets_;
  PreparedRepositoryStats stats_;
};

}  // namespace smb::index
