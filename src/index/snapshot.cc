#include "index/snapshot.h"

/// \file snapshot.cc
/// \brief Binary encode/decode of `PreparedRepository` — versioned
/// little-endian layout, fingerprint + checksum verification (fail
/// closed), chunked element payload decoded on a worker pool.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>
#include <vector>

#include "io/binary_io.h"
#include "match/fingerprint.h"

namespace smb::index {

namespace {

/// magic(8) + version(4) + options_fp(8) + repo_fp(8) + body_size(8) +
/// body_checksum(8).
constexpr size_t kHeaderSize = 8 + 4 + 8 + 8 + 8 + 8;

/// Upper bound on element-payload chunks: enough lanes for any realistic
/// core count while keeping the offset table negligible.
constexpr size_t kElementChunks = 64;

Status BodyError(const std::string& what) {
  return Status::ParseError("snapshot body " + what +
                            " (file corrupted, or written by an "
                            "incompatible build — rebuild the snapshot)");
}

/// Validates a CSR offsets array: non-empty, anchored at 0, ending at the
/// total entry count, and monotone — every derived span stays in bounds.
Status CheckCsrOffsets(const std::vector<uint32_t>& offsets, size_t total,
                       const char* where) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != total) {
    return BodyError(std::string("has offsets that do not bracket the ") +
                     where);
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return BodyError(std::string("has decreasing offsets in ") + where);
    }
  }
  return Status::OK();
}

/// Validates that every posting ordinal addresses an element.
Status CheckOrdinals(const std::vector<uint32_t>& ordinals,
                     size_t element_count, const char* where) {
  for (uint32_t ordinal : ordinals) {
    if (ordinal >= element_count) {
      return BodyError("references element " + std::to_string(ordinal) +
                       " of " + std::to_string(element_count) + " in " +
                       where);
    }
  }
  return Status::OK();
}

}  // namespace

/// \brief The one component allowed to take PreparedRepository apart and
/// put it back together (friend of the class).
struct SnapshotCodec {
  static void EncodeBody(const PreparedRepository& p, uint32_t version,
                         io::BinaryWriter* w) {
    w->WriteU32(static_cast<uint32_t>(p.repo_->schema_count()));
    w->WriteU64(p.elements_.size());

    // Token interner, in id order: re-interning in this order reproduces
    // every stored token id exactly.
    const std::vector<std::string_view> tokens = p.token_table_->OrderedTokens();
    w->WriteU32(static_cast<uint32_t>(tokens.size()));
    for (std::string_view token : tokens) w->WriteString(token);

    // Elements in ordinal order. (schema_index, node) are not stored —
    // ordinals are dense in (schema, node) order by construction, so the
    // loader re-derives them from the repository it verifies against.
    // `tokens` are not stored either: every element token was interned at
    // build time, so `token_ids` recovers the exact strings. No doubles
    // anywhere: scores are recomputed by the same kernel from these
    // integer/string payloads, which is what makes loaded results
    // bit-identical.
    //
    // The payload is split into up to `kElementChunks` contiguous ordinal
    // ranges with a byte-offset table in front, so a loader can hand each
    // chunk to a worker thread (the records are self-delimiting but not
    // seekable without the table).
    const size_t element_count = p.elements_.size();
    const size_t per_chunk =
        element_count == 0
            ? 1
            : (element_count + kElementChunks - 1) / kElementChunks;
    std::vector<uint32_t> chunk_first;
    std::vector<uint64_t> chunk_offset;
    io::BinaryWriter payload;
    for (size_t first = 0; first < element_count; first += per_chunk) {
      chunk_first.push_back(static_cast<uint32_t>(first));
    }
    const auto chunk_count = static_cast<uint32_t>(chunk_first.size());
    size_t next_chunk = 0;
    for (size_t ordinal = 0; ordinal < element_count; ++ordinal) {
      if (next_chunk < chunk_first.size() &&
          ordinal == chunk_first[next_chunk]) {
        chunk_offset.push_back(payload.buffer().size());
        ++next_chunk;
      }
      const sim::PreparedName& name = p.elements_[ordinal].name;
      payload.WriteString(name.folded);
      payload.WriteIntArray(name.gram_ids);
      payload.WriteIntArray(name.token_ids);
      payload.WriteIntArray(name.token_groups);
      payload.WriteIntArray(name.peq_chars);
      payload.WriteIntArray(name.peq_masks);
      payload.WriteI32(name.name_group);
    }
    chunk_first.push_back(static_cast<uint32_t>(element_count));
    chunk_offset.push_back(payload.buffer().size());
    w->WriteU32(chunk_count);
    w->WriteU32Vector(chunk_first);
    w->WriteU64Vector(chunk_offset);
    w->WriteU64(payload.buffer().size());
    w->WriteBytes(payload.buffer());

    // Postings: the CSR arrays go to the wire verbatim — a handful of bulk
    // array writes, and the loader gets them back with as many bulk reads.
    // The trigram entries' ordinals and multiplicities are split into two
    // parallel flat arrays so each is one fixed-width block.
    w->WriteU32Vector(p.token_posting_offsets_);
    w->WriteU32Vector(p.token_posting_entries_);

    WriteIntKeyedPostings(p.token_group_postings_, w);

    w->WriteU32Vector(p.trigram_keys_);
    w->WriteU32Vector(p.trigram_offsets_);
    {
      std::vector<uint32_t> ordinals;
      std::vector<uint16_t> counts;
      ordinals.reserve(p.trigram_entries_.size());
      counts.reserve(p.trigram_entries_.size());
      for (const TrigramPosting& posting : p.trigram_entries_) {
        ordinals.push_back(posting.ordinal);
        counts.push_back(posting.count);
      }
      w->WriteU32Vector(ordinals);
      w->WriteU16Vector(counts);
    }
    if (version >= 2) {
      // v2: block-max metadata over the trigram postings (derived data,
      // stored so a load skips the rebuild pass; v1 readers never see it).
      w->WriteU32Vector(p.trigram_block_offsets_);
      w->WriteU32Vector(p.trigram_block_last_ordinals_);
      w->WriteU16Vector(p.trigram_block_max_counts_);
      w->WriteU32Vector(p.trigram_block_tc_floors_);
    }

    WriteStringKeyedPostings(p.name_buckets_, w);
    WriteIntKeyedPostings(p.name_group_buckets_, w);
    WriteStringKeyedPostings(p.type_buckets_, w);

    w->WriteU64(p.stats_.element_count);
    w->WriteU64(p.stats_.distinct_tokens);
    w->WriteU64(p.stats_.distinct_trigrams);
    w->WriteU64(p.stats_.distinct_types);
    w->WriteU64(p.stats_.token_posting_entries);
    w->WriteU64(p.stats_.trigram_posting_entries);
  }

  /// Allocation-tight element-record parser for little-endian targets: one
  /// cursor, one bounds comparison per field, no per-read Result wrapping.
  /// This is the hottest loop of a snapshot load (one record per
  /// repository element); the generic `DecodeElement` below is its
  /// endian-independent twin and the big-endian fallback.
  struct FastElementParser {
    const char* cursor;
    const char* end;

    bool Need(size_t n) const {
      return static_cast<size_t>(end - cursor) >= n;
    }
    uint32_t RawU32() {
      uint32_t value;
      std::memcpy(&value, cursor, 4);
      cursor += 4;
      return value;
    }
    /// Reads a u32 length prefix and gives out the following `width`-sized
    /// array, or fails on truncation.
    bool Array(size_t width, uint32_t* count, const char** data) {
      if (!Need(4)) return false;
      *count = RawU32();
      const size_t bytes = size_t{*count} * width;
      if (!Need(bytes)) return false;
      *data = cursor;
      cursor += bytes;
      return true;
    }

    Status Parse(const std::vector<std::string>& tokens,
                 const sim::TokenTable* token_table,
                 const sim::NameSimilarityOptions& name_options,
                 PreparedElement& element) {
      sim::PreparedName& name = element.name;
      uint32_t count;
      const char* data;
      if (!Array(1, &count, &data)) return Truncated();
      name.folded.assign(data, count);
      if (!Array(4, &count, &data)) return Truncated();
      name.gram_ids.resize(count);
      std::memcpy(name.gram_ids.data(), data, size_t{count} * 4);
      if (!Array(4, &count, &data)) return Truncated();
      name.token_ids.resize(count);
      std::memcpy(name.token_ids.data(), data, size_t{count} * 4);
      if (!Array(4, &count, &data)) return Truncated();
      name.token_groups.resize(count);
      std::memcpy(name.token_groups.data(), data, size_t{count} * 4);
      if (!Array(1, &count, &data)) return Truncated();
      name.peq_chars.resize(count);
      std::memcpy(name.peq_chars.data(), data, count);
      if (!Array(8, &count, &data)) return Truncated();
      name.peq_masks.resize(count);
      std::memcpy(name.peq_masks.data(), data, size_t{count} * 8);
      if (!Need(4)) return Truncated();
      name.name_group = static_cast<int32_t>(RawU32());
      return FinishElement(tokens, token_table, name_options, element);
    }

    static Status Truncated() {
      return BodyError("is truncated inside an element record");
    }
  };

  /// Shared element validation + token/provenance reconstruction — the
  /// semantic half of element decoding, identical for both parsers.
  static Status FinishElement(const std::vector<std::string>& tokens,
                              const sim::TokenTable* token_table,
                              const sim::NameSimilarityOptions& name_options,
                              PreparedElement& element) {
    sim::PreparedName& name = element.name;
    if (!name.token_groups.empty() &&
        name.token_groups.size() != name.token_ids.size()) {
      return BodyError("token group list length disagrees with tokens");
    }
    if (name.peq_chars.size() != name.peq_masks.size()) {
      return BodyError("PEQ char/mask lengths disagree");
    }
    // Tokens back from the interner — build-time interning guarantees
    // every id is known.
    name.tokens.reserve(name.token_ids.size());
    for (uint32_t token_id : name.token_ids) {
      if (token_id >= tokens.size()) {
        return BodyError("references unknown token id " +
                         std::to_string(token_id));
      }
      name.tokens.push_back(tokens[token_id]);
    }
    // Provenance: the ids/groups above are valid under the loaded table
    // and the caller's synonym table (the header fingerprint certified its
    // content matches the build-time one).
    name.token_table = token_table;
    name.synonyms = name_options.synonyms;
    name.kernel_ready = true;
    // The augmented gram keys are derived state (never serialized) —
    // recompute them so loaded elements take the same SIMD Dice path as
    // built ones.
    sim::CompileAugmentedGramKeys(&name);
    element.trigram_count = static_cast<uint32_t>(name.gram_ids.size());
    return Status::OK();
  }

  /// Decodes one element record into `element` (already addressed by its
  /// (schema, node) position). `tokens` is the loaded token table in id
  /// order.
  static Status DecodeElement(io::BinaryReader& r,
                              const std::vector<std::string>& tokens,
                              const sim::TokenTable* token_table,
                              const sim::NameSimilarityOptions& name_options,
                              PreparedElement& element) {
    sim::PreparedName& name = element.name;
    SMB_ASSIGN_OR_RETURN(name.folded, r.ReadString("element name"));
    SMB_RETURN_IF_ERROR(
        r.ReadIntArrayInto(&name.gram_ids, "element gram ids"));
    SMB_RETURN_IF_ERROR(
        r.ReadIntArrayInto(&name.token_ids, "element token ids"));
    SMB_RETURN_IF_ERROR(
        r.ReadIntArrayInto(&name.token_groups, "element token groups"));
    SMB_RETURN_IF_ERROR(
        r.ReadIntArrayInto(&name.peq_chars, "element PEQ chars"));
    SMB_RETURN_IF_ERROR(
        r.ReadIntArrayInto(&name.peq_masks, "element PEQ masks"));
    SMB_ASSIGN_OR_RETURN(name.name_group, r.ReadI32("element name group"));
    return FinishElement(tokens, token_table, name_options, element);
  }

  static Result<PreparedRepository> DecodeBody(
      std::string_view body, uint32_t version,
      const schema::SchemaRepository& repo,
      const sim::NameSimilarityOptions& name_options, size_t num_threads) {
    io::BinaryReader r(body);

    SMB_ASSIGN_OR_RETURN(uint32_t schema_count, r.ReadU32("schema count"));
    SMB_ASSIGN_OR_RETURN(uint64_t element_count, r.ReadU64("element count"));
    if (schema_count != repo.schema_count() ||
        element_count != repo.total_elements()) {
      return BodyError("shape disagrees with the repository (" +
                       std::to_string(schema_count) + " schemas / " +
                       std::to_string(element_count) + " elements vs " +
                       std::to_string(repo.schema_count()) + " / " +
                       std::to_string(repo.total_elements()) + ")");
    }

    PreparedRepository p;
    p.repo_ = &repo;
    p.name_options_ = name_options;

    SMB_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                         r.ReadStringVector("token table"));
    p.token_table_->Reserve(tokens.size());
    for (const std::string& token : tokens) {
      p.token_table_->Intern(token);
    }
    if (p.token_table_->size() != tokens.size()) {
      return BodyError("token table contains duplicate tokens");
    }

    // Chunk table of the element payload (validated before any worker
    // touches a byte range derived from it).
    SMB_ASSIGN_OR_RETURN(uint32_t chunk_count, r.ReadU32("chunk count"));
    SMB_ASSIGN_OR_RETURN(std::vector<uint32_t> chunk_first,
                         r.ReadU32Vector("chunk ordinals"));
    SMB_ASSIGN_OR_RETURN(std::vector<uint64_t> chunk_offset,
                         r.ReadU64Vector("chunk offsets"));
    SMB_ASSIGN_OR_RETURN(uint64_t payload_size,
                         r.ReadU64("element payload size"));
    if (chunk_first.size() != size_t{chunk_count} + 1 ||
        chunk_offset.size() != size_t{chunk_count} + 1 ||
        chunk_first.front() != 0 || chunk_first.back() != element_count ||
        chunk_offset.front() != 0 || chunk_offset.back() != payload_size ||
        !std::is_sorted(chunk_first.begin(), chunk_first.end()) ||
        !std::is_sorted(chunk_offset.begin(), chunk_offset.end()) ||
        (chunk_count == 0 && element_count != 0)) {
      return BodyError("has an inconsistent element chunk table");
    }
    SMB_ASSIGN_OR_RETURN(std::string_view payload,
                         r.View(payload_size, "element payload"));

    // (schema, node) positions derive from the repository alone; workers
    // walk them per chunk.
    p.first_ordinal_.reserve(schema_count);
    {
      uint32_t running = 0;
      for (size_t si = 0; si < repo.schema_count(); ++si) {
        p.first_ordinal_.push_back(running);
        running += static_cast<uint32_t>(
            repo.schema(static_cast<int32_t>(si)).size());
      }
    }

    p.elements_.resize(element_count);
    if (num_threads == 0) {
      num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    num_threads = std::max<size_t>(
        1, std::min<size_t>(num_threads, std::max<uint32_t>(1, chunk_count)));

    std::vector<Status> chunk_status(chunk_count, Status::OK());
    std::atomic<size_t> next_chunk{0};
    auto decode_chunk = [&](size_t c) -> Status {
      const std::string_view chunk_bytes = payload.substr(
          chunk_offset[c], chunk_offset[c + 1] - chunk_offset[c]);
      // The schema containing the chunk's first ordinal: the last schema
      // whose first ordinal is ≤ it (empty schemas collapse onto the same
      // first ordinal and are skipped by the walk below).
      size_t si = static_cast<size_t>(
          std::upper_bound(p.first_ordinal_.begin(), p.first_ordinal_.end(),
                           chunk_first[c]) -
          p.first_ordinal_.begin() - 1);
      FastElementParser fast{chunk_bytes.data(),
                             chunk_bytes.data() + chunk_bytes.size()};
      io::BinaryReader chunk_reader(chunk_bytes);
      constexpr bool kFastPath =
          std::endian::native == std::endian::little;
      for (uint32_t o = chunk_first[c]; o < chunk_first[c + 1]; ++o) {
        while (si + 1 < p.first_ordinal_.size() &&
               p.first_ordinal_[si + 1] <= o) {
          ++si;
        }
        PreparedElement& element = p.elements_[o];
        element.schema_index = static_cast<int32_t>(si);
        element.node = static_cast<schema::NodeId>(o - p.first_ordinal_[si]);
        if constexpr (kFastPath) {
          SMB_RETURN_IF_ERROR(fast.Parse(tokens, p.token_table_.get(),
                                         name_options, element));
        } else {
          SMB_RETURN_IF_ERROR(DecodeElement(chunk_reader, tokens,
                                            p.token_table_.get(),
                                            name_options, element));
        }
      }
      const size_t leftover = kFastPath
                                  ? static_cast<size_t>(fast.end - fast.cursor)
                                  : chunk_reader.remaining();
      if (leftover != 0) {
        return BodyError("element chunk " + std::to_string(c) + " has " +
                         std::to_string(leftover) + " trailing byte(s)");
      }
      return Status::OK();
    };
    auto chunk_worker = [&]() {
      for (size_t c = next_chunk.fetch_add(1); c < chunk_count;
           c = next_chunk.fetch_add(1)) {
        chunk_status[c] = decode_chunk(c);
      }
    };
    if (num_threads <= 1 || chunk_count <= 1) {
      chunk_worker();
    } else {
      std::vector<std::thread> workers;
      workers.reserve(num_threads);
      for (size_t t = 0; t < num_threads; ++t) {
        workers.emplace_back(chunk_worker);
      }
      for (std::thread& worker : workers) worker.join();
    }
    for (const Status& status : chunk_status) {
      SMB_RETURN_IF_ERROR(status);
    }

    // CSR postings: bulk array reads, then structural validation (monotone
    // offsets bracketing the entry arrays, sorted keys, in-range ordinals)
    // so a corrupted file that somehow passed the checksum still cannot
    // produce out-of-bounds spans.
    SMB_ASSIGN_OR_RETURN(p.token_posting_offsets_,
                         r.ReadU32Vector("token posting offsets"));
    SMB_ASSIGN_OR_RETURN(p.token_posting_entries_,
                         r.ReadU32Vector("token postings"));
    if (p.token_posting_offsets_.size() > tokens.size() + 1) {
      return BodyError("has more token posting lists than tokens");
    }
    SMB_RETURN_IF_ERROR(CheckCsrOffsets(p.token_posting_offsets_,
                                        p.token_posting_entries_.size(),
                                        "token postings"));
    SMB_RETURN_IF_ERROR(CheckOrdinals(p.token_posting_entries_, element_count,
                                      "token postings"));

    SMB_RETURN_IF_ERROR(ReadIntKeyedPostings(
        &r, element_count, "token group postings", &p.token_group_postings_));

    {
      SMB_ASSIGN_OR_RETURN(p.trigram_keys_, r.ReadU32Vector("trigram keys"));
      SMB_ASSIGN_OR_RETURN(p.trigram_offsets_,
                           r.ReadU32Vector("trigram offsets"));
      std::vector<uint32_t> ordinals;
      std::vector<uint16_t> counts;
      SMB_RETURN_IF_ERROR(
          r.ReadIntArrayInto(&ordinals, "trigram posting ordinals"));
      SMB_RETURN_IF_ERROR(
          r.ReadIntArrayInto(&counts, "trigram posting multiplicities"));
      if (ordinals.size() != counts.size()) {
        return BodyError(
            "trigram posting ordinal/multiplicity lengths disagree");
      }
      if (p.trigram_offsets_.size() != p.trigram_keys_.size() + 1) {
        return BodyError("trigram offsets disagree with trigram keys");
      }
      if (!std::is_sorted(p.trigram_keys_.begin(), p.trigram_keys_.end()) ||
          std::adjacent_find(p.trigram_keys_.begin(),
                             p.trigram_keys_.end()) != p.trigram_keys_.end()) {
        return BodyError("trigram keys are not strictly sorted");
      }
      SMB_RETURN_IF_ERROR(CheckCsrOffsets(p.trigram_offsets_, ordinals.size(),
                                          "trigram postings"));
      SMB_RETURN_IF_ERROR(
          CheckOrdinals(ordinals, element_count, "trigram postings"));
      p.trigram_entries_.resize(ordinals.size());
      for (size_t i = 0; i < ordinals.size(); ++i) {
        p.trigram_entries_[i].ordinal = ordinals[i];
        p.trigram_entries_[i].count = counts[i];
      }
    }

    if (version >= 2) {
      // v2: the block-max arrays come off the wire; validate their shape
      // against the postings they summarize (every list must carry exactly
      // ceil(length / kTrigramBlockSize) blocks) so a corrupted file can
      // never produce out-of-bounds block spans.
      SMB_RETURN_IF_ERROR(r.ReadIntArrayInto(&p.trigram_block_offsets_,
                                             "trigram block offsets"));
      SMB_RETURN_IF_ERROR(r.ReadIntArrayInto(&p.trigram_block_last_ordinals_,
                                             "trigram block last ordinals"));
      SMB_RETURN_IF_ERROR(r.ReadIntArrayInto(&p.trigram_block_max_counts_,
                                             "trigram block max counts"));
      SMB_RETURN_IF_ERROR(r.ReadIntArrayInto(&p.trigram_block_tc_floors_,
                                             "trigram block tc floors"));
      const size_t total_blocks = p.trigram_block_last_ordinals_.size();
      if (p.trigram_block_offsets_.size() != p.trigram_keys_.size() + 1 ||
          p.trigram_block_max_counts_.size() != total_blocks ||
          p.trigram_block_tc_floors_.size() != total_blocks) {
        return BodyError("trigram block arrays disagree in shape");
      }
      SMB_RETURN_IF_ERROR(CheckCsrOffsets(p.trigram_block_offsets_,
                                          total_blocks, "trigram blocks"));
      for (size_t li = 0; li < p.trigram_keys_.size(); ++li) {
        const size_t list_len = p.trigram_offsets_[li + 1] -
                                p.trigram_offsets_[li];
        const size_t blocks = p.trigram_block_offsets_[li + 1] -
                              p.trigram_block_offsets_[li];
        const size_t expected =
            (list_len + kTrigramBlockSize - 1) / kTrigramBlockSize;
        if (blocks != expected) {
          return BodyError("trigram block counts disagree with postings");
        }
      }
    } else {
      // v1 predates the block-max metadata — derive it from the (already
      // validated) postings, exactly as a fresh Build would.
      p.BuildTrigramBlocks();
    }

    SMB_RETURN_IF_ERROR(ReadStringKeyedPostings(&r, element_count,
                                                "name buckets",
                                                &p.name_buckets_));
    SMB_RETURN_IF_ERROR(ReadIntKeyedPostings(
        &r, element_count, "name group buckets", &p.name_group_buckets_));
    SMB_RETURN_IF_ERROR(ReadStringKeyedPostings(&r, element_count,
                                                "type buckets",
                                                &p.type_buckets_));

    SMB_ASSIGN_OR_RETURN(p.stats_.element_count, r.ReadU64("stats"));
    SMB_ASSIGN_OR_RETURN(p.stats_.distinct_tokens, r.ReadU64("stats"));
    SMB_ASSIGN_OR_RETURN(p.stats_.distinct_trigrams, r.ReadU64("stats"));
    SMB_ASSIGN_OR_RETURN(p.stats_.distinct_types, r.ReadU64("stats"));
    SMB_ASSIGN_OR_RETURN(p.stats_.token_posting_entries, r.ReadU64("stats"));
    SMB_ASSIGN_OR_RETURN(p.stats_.trigram_posting_entries,
                         r.ReadU64("stats"));
    if (p.stats_.element_count != p.elements_.size()) {
      return BodyError("stats disagree with the element payload");
    }

    if (r.remaining() != 0) {
      return BodyError("has " + std::to_string(r.remaining()) +
                       " trailing byte(s)");
    }
    return p;
  }

 private:
  template <typename Map>
  static void WriteIntKeyedPostings(const Map& map, io::BinaryWriter* w) {
    std::vector<int> keys;
    keys.reserve(map.size());
    for (const auto& [key, postings] : map) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w->WriteU32(static_cast<uint32_t>(keys.size()));
    for (int key : keys) {
      w->WriteI32(key);
      w->WriteU32Vector(map.at(key));
    }
  }

  template <typename Map>
  static void WriteStringKeyedPostings(const Map& map, io::BinaryWriter* w) {
    std::vector<std::string_view> keys;
    keys.reserve(map.size());
    for (const auto& [key, postings] : map) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w->WriteU32(static_cast<uint32_t>(keys.size()));
    for (std::string_view key : keys) {
      w->WriteString(key);
      w->WriteU32Vector(map.at(std::string(key)));
    }
  }

  template <typename Map>
  static Status ReadIntKeyedPostings(io::BinaryReader* r,
                                     size_t element_count, const char* where,
                                     Map* out) {
    SMB_ASSIGN_OR_RETURN(uint32_t count, r->ReadU32(where));
    out->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      SMB_ASSIGN_OR_RETURN(int32_t key, r->ReadI32(where));
      SMB_ASSIGN_OR_RETURN(std::vector<uint32_t> postings,
                           r->ReadU32Vector(where));
      SMB_RETURN_IF_ERROR(CheckOrdinals(postings, element_count, where));
      if (!out->emplace(key, std::move(postings)).second) {
        return BodyError(std::string("contains duplicate key in ") + where);
      }
    }
    return Status::OK();
  }

  template <typename Map>
  static Status ReadStringKeyedPostings(io::BinaryReader* r,
                                        size_t element_count,
                                        const char* where, Map* out) {
    SMB_ASSIGN_OR_RETURN(uint32_t count, r->ReadU32(where));
    out->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      SMB_ASSIGN_OR_RETURN(std::string key, r->ReadString(where));
      SMB_ASSIGN_OR_RETURN(std::vector<uint32_t> postings,
                           r->ReadU32Vector(where));
      SMB_RETURN_IF_ERROR(CheckOrdinals(postings, element_count, where));
      if (!out->emplace(std::move(key), std::move(postings)).second) {
        return BodyError(std::string("contains duplicate key in ") + where);
      }
    }
    return Status::OK();
  }
};

namespace {

std::string EncodeSnapshotAt(const PreparedRepository& prepared,
                             uint32_t version) {
  io::BinaryWriter body;
  SnapshotCodec::EncodeBody(prepared, version, &body);

  io::BinaryWriter out;
  out.WriteBytes(kSnapshotMagic);
  out.WriteU32(version);
  out.WriteU64(match::FingerprintNameOptions(prepared.name_options()));
  out.WriteU64(match::FingerprintRepository(prepared.repo()));
  out.WriteU64(body.buffer().size());
  out.WriteU64(io::Checksum64(body.buffer()));
  out.WriteBytes(body.buffer());
  return std::move(out.TakeBuffer());
}

}  // namespace

std::string EncodeSnapshot(const PreparedRepository& prepared) {
  return EncodeSnapshotAt(prepared, kSnapshotFormatVersion);
}

Result<std::string> EncodeSnapshotForVersion(
    const PreparedRepository& prepared, uint32_t format_version) {
  if (format_version < kSnapshotMinFormatVersion ||
      format_version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "cannot encode snapshot format version " +
        std::to_string(format_version) + " — this binary writes versions " +
        std::to_string(kSnapshotMinFormatVersion) + ".." +
        std::to_string(kSnapshotFormatVersion));
  }
  return EncodeSnapshotAt(prepared, format_version);
}

Result<PreparedRepository> DecodeSnapshot(
    std::string_view bytes, const schema::SchemaRepository& repo,
    const sim::NameSimilarityOptions& name_options, size_t num_threads) {
  if (bytes.size() < kHeaderSize) {
    return Status::ParseError(
        "snapshot truncated: " + std::to_string(bytes.size()) +
        " byte(s), but the header alone is " + std::to_string(kHeaderSize) +
        " — rebuild the snapshot");
  }
  io::BinaryReader r(bytes);
  std::string magic = r.ReadBytes(kSnapshotMagic.size(), "magic").value();
  if (magic != kSnapshotMagic) {
    return Status::ParseError(
        "not a matchbounds index snapshot (magic bytes mismatch)");
  }
  uint32_t version = r.ReadU32("version").value();
  if (version < kSnapshotMinFormatVersion ||
      version > kSnapshotFormatVersion) {
    return Status::FailedPrecondition(
        "snapshot has format version " + std::to_string(version) +
        " but this binary reads versions " +
        std::to_string(kSnapshotMinFormatVersion) + ".." +
        std::to_string(kSnapshotFormatVersion) + " — rebuild the snapshot");
  }
  uint64_t options_fp = r.ReadU64("options fingerprint").value();
  uint64_t repo_fp = r.ReadU64("repository fingerprint").value();
  uint64_t body_size = r.ReadU64("body size").value();
  uint64_t body_checksum = r.ReadU64("body checksum").value();

  if (r.remaining() < body_size) {
    return Status::ParseError(
        "snapshot truncated: body declares " + std::to_string(body_size) +
        " byte(s) but only " + std::to_string(r.remaining()) +
        " follow the header — rebuild the snapshot");
  }
  if (r.remaining() > body_size) {
    return Status::ParseError(
        "snapshot has " + std::to_string(r.remaining() - body_size) +
        " trailing byte(s) after the declared body — file corrupted");
  }

  std::string_view body = bytes.substr(kHeaderSize);
  if (io::Checksum64(body) != body_checksum) {
    return Status::ParseError(
        "snapshot body checksum mismatch — file corrupted, rebuild the "
        "snapshot");
  }

  // Content checks only after integrity checks, so a bit flip inside a
  // fingerprint field reads as corruption, not as a misleading "different
  // options" claim.
  if (options_fp != match::FingerprintNameOptions(name_options)) {
    return Status::FailedPrecondition(
        "snapshot was built with different scorer options (weights, case "
        "folding, synonym table or synonym score differ) — rebuild the "
        "snapshot with the current options");
  }
  if (repo_fp != match::FingerprintRepository(repo)) {
    return Status::FailedPrecondition(
        "snapshot was built over a different repository (schema names, "
        "types or structure differ) — rebuild the snapshot from the "
        "current repository");
  }

  return SnapshotCodec::DecodeBody(body, version, repo, name_options,
                                   num_threads);
}

Status SaveSnapshot(const PreparedRepository& prepared,
                    const std::string& path) {
  // Temp + fsync + atomic rename: a crash mid-save must never leave a
  // truncated file at `path` — the fail-closed loader would reject it
  // forever instead of falling back to a rebuild (only a *missing* file
  // does that). The previous snapshot survives as `path.bak` so even a
  // crash between the two renames degrades to the backup, not an outage.
  return io::WriteBinaryFileAtomic(path, EncodeSnapshot(prepared),
                                   /*keep_backup=*/true)
      .WithContext("while saving index snapshot");
}

Result<PreparedRepository> LoadSnapshot(
    const std::string& path, const schema::SchemaRepository& repo,
    const sim::NameSimilarityOptions& name_options, size_t num_threads,
    SnapshotLoadReport* report) {
  if (report != nullptr) *report = SnapshotLoadReport{};
  Status primary_error = Status::OK();
  Result<std::string> bytes = io::ReadBinaryFile(path);
  if (bytes.ok()) {
    Result<PreparedRepository> loaded =
        DecodeSnapshot(*bytes, repo, name_options, num_threads);
    if (loaded.ok()) return loaded;
    primary_error = loaded.status().WithContext(
        "while loading index snapshot " + path);
  } else if (bytes.status().code() == StatusCode::kNotFound) {
    // Missing primary with a surviving backup is the crash window between
    // SaveSnapshot's two renames (old → .bak, tmp → path) — fall through
    // to the backup. With no backup either, kNotFound propagates: "safe
    // to build instead".
    primary_error = bytes.status();
  } else {
    primary_error =
        bytes.status().WithContext("while loading index snapshot " + path);
  }

  // Primary missing/unreadable/corrupt — try the sibling backup that
  // SaveSnapshot leaves behind. Announce the degradation via `report`; the
  // backup must decode cleanly (and fingerprint-match) or the primary's
  // error stands.
  const std::string backup_path = path + ".bak";
  Result<std::string> backup_bytes = io::ReadBinaryFile(backup_path);
  if (backup_bytes.ok()) {
    Result<PreparedRepository> backup =
        DecodeSnapshot(*backup_bytes, repo, name_options, num_threads);
    if (backup.ok()) {
      if (report != nullptr) {
        report->used_backup = true;
        report->warning = "primary snapshot unusable (" +
                          primary_error.ToString() +
                          "); loaded backup " + backup_path;
      }
      return backup;
    }
  }
  return primary_error;
}

}  // namespace smb::index
