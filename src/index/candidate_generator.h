#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "index/prepared_repository.h"
#include "match/objective.h"
#include "schema/schema.h"

/// \file candidate_generator.h
/// \brief Sparse candidate generation: top-C targets per query element with
/// an admissible cost bound for everything skipped — at a fixed C, or
/// adaptively grown per cell until the bound certifies a completeness
/// target (`AdaptiveCandidatePolicy`).
///
/// For each (query position, repository schema) cell the generator
/// retrieves elements through the `PreparedRepository` postings (tokens,
/// synonym groups, exact/synonym name buckets, trigrams), scores the
/// retrieved set with the *exact* objective node cost (`ComputeNodeCost`
/// over prepared names — bit-identical to the dense pool), and keeps the C
/// cheapest. Cells short of C are padded with unretrieved elements (same
/// declared type first, then node order) so every cell offers
/// min(C, |schema|) candidates; with C ≥ |schema| every cell is complete
/// and matchers reproduce the dense answers exactly.
///
/// The skip-bound per cell is the minimum over three tiers (see
/// prepared_repository.h for the admissibility argument):
///  * scored-but-truncated elements: their exact minimum cost;
///  * retrieved-but-unscored elements: `(w_t/Σw)·(1 − D)` from their exact
///    trigram Dice D;
///  * never-retrieved elements: `(w_t/Σw)` (their Dice is 0).
///
/// **Bound as controller.** The skip-bound is not only telemetry: a cell is
/// *certified complete* at a Δ threshold when any mapping through one of
/// its skipped elements provably exceeds the threshold
/// (`QueryCandidates::CellProvablyComplete`). `GenerateAdaptive` uses that
/// certificate to drive the budget — each cell starts small and grows
/// geometrically only until it certifies (or a cap is hit), so easy cells
/// stay cheap and the hard ones get the candidates. The certification
/// margin is strictly wider than the matchers' pruning epsilon, so a
/// certified cell can never change an answer (every matcher discards
/// assignments whose cost exceeds `delta·normalizer + 1e-12`, and
/// certification requires the skipped cost to exceed that by ≥ 1e-9 in
/// normalized Δ units).

namespace smb::index {

/// \brief Per-query candidate lists — the sparse `match::CandidateProvider`
/// handed to matchers. Immutable, safe for concurrent reads, and
/// independent of any other query, so many queries can share one
/// `PreparedRepository` while each holds its own `QueryCandidates`.
class QueryCandidates : public match::CandidateProvider {
 public:
  const std::vector<match::CandidateEntry>* CandidatesFor(
      size_t pos, int32_t schema_index) const override {
    return &cells_[pos * schema_count_ + static_cast<size_t>(schema_index)]
                .entries;
  }

  double SkipLowerBound(size_t pos, int32_t schema_index) const override {
    return cells_[pos * schema_count_ + static_cast<size_t>(schema_index)]
        .skip_bound;
  }

  /// Query pre-order positions covered.
  size_t positions() const { return positions_; }
  size_t schema_count() const { return schema_count_; }
  /// The cutoff C the lists were generated with (for adaptive generation:
  /// the largest per-cell limit any cell ended at).
  size_t limit() const { return limit_; }

  /// Σ list sizes — candidate entries the index produced.
  uint64_t candidates_generated() const { return generated_; }
  /// Σ (|schema| − list size) — repository nodes never handed to matchers.
  uint64_t candidates_skipped() const { return skipped_; }

  /// \brief The cell's skip-bound translated to Δ units: an admissible
  /// lower bound on the Δ of any mapping that assigns this query position
  /// to a target *not* in the cell's candidate list
  /// (`weight_name · skip_bound / normalizer`). +infinity when the list
  /// covers the whole schema.
  double CellDeltaBound(size_t pos, int32_t schema_index) const {
    const Cell& cell =
        cells_[pos * schema_count_ + static_cast<size_t>(schema_index)];
    return weight_name_ * cell.skip_bound / normalizer_;
  }

  /// \brief True when the cell's skip-bound *certifies* that no mapping
  /// with Δ ≤ `delta_threshold` passes through a skipped element of the
  /// cell. The margin (1e-9 in Δ units) strictly dominates the matchers'
  /// pruning epsilon (1e-12 on the un-normalized cost scale), so matching
  /// over a certified cell is provably answer-identical to matching over
  /// the full node set of that cell.
  bool CellProvablyComplete(size_t pos, int32_t schema_index,
                            double delta_threshold) const;

  /// \brief Fraction of (position, schema) cells certified complete at
  /// `delta_threshold` (`CellProvablyComplete`) — the measurable
  /// completeness knob: at 1.0 the sparse answers are certified identical
  /// to the dense ones.
  double ProvablyCompleteFraction(double delta_threshold) const;

 private:
  friend class CandidateGenerator;

  struct Cell {
    std::vector<match::CandidateEntry> entries;
    /// Admissible lower bound on the node cost of any unlisted target;
    /// +infinity when the list covers the whole schema.
    double skip_bound = 0.0;
  };

  std::vector<Cell> cells_;
  size_t positions_ = 0;
  size_t schema_count_ = 0;
  size_t limit_ = 0;
  uint64_t generated_ = 0;
  uint64_t skipped_ = 0;
  /// Objective shape for the Δ-unit bound: Δ of a mapping through a
  /// skipped node is at least `weight_name_ · skip_bound / normalizer_`.
  double weight_name_ = 0.0;
  double normalizer_ = 1.0;
};

/// \brief Bound-driven budget policy for `GenerateAdaptive`: grow each
/// cell's candidate list geometrically until its skip-bound certifies
/// completeness, stopping globally once the target fraction of cells is
/// certified.
struct AdaptiveCandidatePolicy {
  /// Per-query completeness target in [0, 1]: escalation stops as soon as
  /// `ProvablyCompleteFraction(delta) ≥` this. 1.0 demands every cell be
  /// certified — with an unbounded cap the answers are then byte-identical
  /// to the dense path for every matcher; 0.0 never escalates (every cell
  /// stays at `initial_limit`, exactly `Generate(query, initial_limit)`).
  double min_provable_completeness = 1.0;
  /// Candidate list size every cell starts at (round 0).
  size_t initial_limit = 4;
  /// Per-escalation multiplier of a cell's limit (≥ 2).
  size_t growth_factor = 2;
  /// Hard per-cell cap on the limit; 0 = unbounded (a cell may grow until
  /// it covers its whole schema, which always certifies). With a finite
  /// cap the target may be unreachable — generation still succeeds and the
  /// achieved fraction is reported in `AdaptiveGenerationStats`.
  size_t max_limit = 0;
};

/// \brief What one `GenerateAdaptive` run spent and achieved — the
/// bound-as-scheduler telemetry (budget, escalations, achieved bound
/// distribution).
struct AdaptiveGenerationStats {
  /// Escalation rounds after the initial one (0 = round 0 already met the
  /// target).
  size_t rounds = 0;
  size_t cells_total = 0;
  /// Cells certified complete at the run's Δ threshold when generation
  /// stopped.
  size_t cells_certified = 0;
  /// Cells whose list was regenerated at a larger limit at least once.
  size_t cells_escalated = 0;
  /// Cells that hit `max_limit` (or full schema coverage) without
  /// certifying.
  size_t cells_at_cap = 0;
  /// Candidates *scored* across all rounds, including re-scoring on
  /// escalation — the generation cost this policy actually paid.
  uint64_t budget_spent = 0;
  /// `ProvablyCompleteFraction(delta_threshold)` of the final lists — the
  /// certified per-query bound.
  double achieved_completeness = 1.0;
  /// Achieved budget distribution: (final per-cell limit, cell count),
  /// ascending by limit. Shows where the bound spent the budget — easy
  /// cells stay at `initial_limit`, hard ones climb.
  std::vector<std::pair<size_t, uint64_t>> final_limit_distribution;
};

/// \brief Turns a `PreparedRepository` into per-query candidate lists.
class CandidateGenerator {
 public:
  /// `prepared` must outlive the generator. `objective` must use the same
  /// name options the index was built with (checked in Generate).
  CandidateGenerator(const PreparedRepository* prepared,
                     match::ObjectiveOptions objective);

  /// \brief Generates the top-`limit` candidate lists for every
  /// (query pre-order position, repository schema) cell.
  Result<QueryCandidates> Generate(const schema::Schema& query,
                                   size_t limit) const;

  /// \brief Bound-driven generation: every cell starts at
  /// `policy.initial_limit` and uncertified cells are regenerated at
  /// geometrically growing limits until the fraction of cells certified
  /// complete at `delta_threshold` reaches
  /// `policy.min_provable_completeness`, or every uncertified cell has hit
  /// its cap. Retrieval runs once per query position and is reused across
  /// rounds; scoring reuses the same max-heap/cutoff machinery as
  /// `Generate`, so kept candidate costs stay bit-identical to the dense
  /// pool's. `stats`, when non-null, receives the spent budget and the
  /// achieved bound.
  Result<QueryCandidates> GenerateAdaptive(
      const schema::Schema& query, const AdaptiveCandidatePolicy& policy,
      double delta_threshold, AdaptiveGenerationStats* stats = nullptr) const;

  /// \brief Toggles threshold-aware scoring (on by default): once a cell's
  /// list is full, the current C-th cost feeds
  /// `match::ComputeNodeCostWithCutoff` so provably-worse candidates stop
  /// early instead of being scored in full. Pruning never changes the
  /// selected entries or their costs (tests disable it to prove that);
  /// pruned candidates contribute admissible lower bounds to the
  /// skip-bound's truncation tier.
  void set_cutoff_enabled(bool enabled) { cutoff_enabled_ = enabled; }

  /// \brief Toggles block-max postings traversal (on by default). When
  /// enabled, retrieval skips the full trigram postings walk and each cell
  /// selects its trigram candidates with a WAND-style traversal over the
  /// `PreparedRepository`'s per-block score upper bounds, skipping posting
  /// blocks that provably cannot beat the cell's current C-th-best Dice.
  /// The selected candidate set — and therefore every entry and its cost —
  /// is identical to the classic retrieve-everything path (tests compare
  /// the two); only the skip-bound may differ, downward, and it stays
  /// admissible. Disable to use the classic path as the oracle.
  void set_block_max_enabled(bool enabled) { block_max_enabled_ = enabled; }

 private:
  Status ValidateQuery(const schema::Schema& query) const;
  void InitOutput(const schema::Schema& query, QueryCandidates* out) const;
  /// Recomputes generated/skipped totals from the final cells (the
  /// adaptive path re-scores cells, so accumulating during generation
  /// would double-count).
  void FinalizeCounts(QueryCandidates* out) const;

  const PreparedRepository* prepared_;
  match::ObjectiveOptions objective_;
  /// w_t / Σw — the trigram share of the composite measure, the analytic
  /// floor of the skip-bound.
  double trigram_weight_share_ = 0.0;
  bool cutoff_enabled_ = true;
  bool block_max_enabled_ = true;
};

}  // namespace smb::index
