#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "index/prepared_repository.h"
#include "match/objective.h"
#include "schema/schema.h"

/// \file candidate_generator.h
/// \brief Sparse candidate generation: top-C targets per query element with
/// an admissible cost bound for everything skipped.
///
/// For each (query position, repository schema) cell the generator
/// retrieves elements through the `PreparedRepository` postings (tokens,
/// synonym groups, exact/synonym name buckets, trigrams), scores the
/// retrieved set with the *exact* objective node cost (`ComputeNodeCost`
/// over prepared names — bit-identical to the dense pool), and keeps the C
/// cheapest. Cells short of C are padded with unretrieved elements (same
/// declared type first, then node order) so every cell offers
/// min(C, |schema|) candidates; with C ≥ |schema| every cell is complete
/// and matchers reproduce the dense answers exactly.
///
/// The skip-bound per cell is the minimum over three tiers (see
/// prepared_repository.h for the admissibility argument):
///  * scored-but-truncated elements: their exact minimum cost;
///  * retrieved-but-unscored elements: `(w_t/Σw)·(1 − D)` from their exact
///    trigram Dice D;
///  * never-retrieved elements: `(w_t/Σw)` (their Dice is 0).

namespace smb::index {

/// \brief Per-query candidate lists — the sparse `match::CandidateProvider`
/// handed to matchers. Immutable, safe for concurrent reads, and
/// independent of any other query, so many queries can share one
/// `PreparedRepository` while each holds its own `QueryCandidates`.
class QueryCandidates : public match::CandidateProvider {
 public:
  const std::vector<match::CandidateEntry>* CandidatesFor(
      size_t pos, int32_t schema_index) const override {
    return &cells_[pos * schema_count_ + static_cast<size_t>(schema_index)]
                .entries;
  }

  double SkipLowerBound(size_t pos, int32_t schema_index) const override {
    return cells_[pos * schema_count_ + static_cast<size_t>(schema_index)]
        .skip_bound;
  }

  /// Query pre-order positions covered.
  size_t positions() const { return positions_; }
  size_t schema_count() const { return schema_count_; }
  /// The cutoff C the lists were generated with.
  size_t limit() const { return limit_; }

  /// Σ list sizes — candidate entries the index produced.
  uint64_t candidates_generated() const { return generated_; }
  /// Σ (|schema| − list size) — repository nodes never handed to matchers.
  uint64_t candidates_skipped() const { return skipped_; }

  /// \brief Fraction of (position, schema) cells whose skip-bound proves
  /// that no mapping with Δ ≤ `delta_threshold` passes through a skipped
  /// element of that cell — the measurable completeness knob: at 1.0 the
  /// sparse answers are certified identical to the dense ones.
  double ProvablyCompleteFraction(double delta_threshold) const;

 private:
  friend class CandidateGenerator;

  struct Cell {
    std::vector<match::CandidateEntry> entries;
    /// Admissible lower bound on the node cost of any unlisted target;
    /// +infinity when the list covers the whole schema.
    double skip_bound = 0.0;
  };

  std::vector<Cell> cells_;
  size_t positions_ = 0;
  size_t schema_count_ = 0;
  size_t limit_ = 0;
  uint64_t generated_ = 0;
  uint64_t skipped_ = 0;
  /// Objective shape for ProvablyCompleteFraction: Δ of a mapping through
  /// a skipped node is at least `weight_name_ · skip_bound / normalizer_`.
  double weight_name_ = 0.0;
  double normalizer_ = 1.0;
};

/// \brief Turns a `PreparedRepository` into per-query candidate lists.
class CandidateGenerator {
 public:
  /// `prepared` must outlive the generator. `objective` must use the same
  /// name options the index was built with (checked in Generate).
  CandidateGenerator(const PreparedRepository* prepared,
                     match::ObjectiveOptions objective);

  /// \brief Generates the top-`limit` candidate lists for every
  /// (query pre-order position, repository schema) cell.
  Result<QueryCandidates> Generate(const schema::Schema& query,
                                   size_t limit) const;

  /// \brief Toggles threshold-aware scoring (on by default): once a cell's
  /// list is full, the current C-th cost feeds
  /// `match::ComputeNodeCostWithCutoff` so provably-worse candidates stop
  /// early instead of being scored in full. Pruning never changes the
  /// selected entries or their costs (tests disable it to prove that);
  /// pruned candidates contribute admissible lower bounds to the
  /// skip-bound's truncation tier.
  void set_cutoff_enabled(bool enabled) { cutoff_enabled_ = enabled; }

 private:
  const PreparedRepository* prepared_;
  match::ObjectiveOptions objective_;
  /// w_t / Σw — the trigram share of the composite measure, the analytic
  /// floor of the skip-bound.
  double trigram_weight_share_ = 0.0;
  bool cutoff_enabled_ = true;
};

}  // namespace smb::index
