#include "index/candidate_generator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "sim/prepared_kernel.h"
#include "sim/synonyms.h"

namespace smb::index {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One retrieved element of the current (position, schema) cell.
struct Retrieved {
  uint32_t ordinal = 0;
  /// Exact trigram Dice against the query name (0 for strong-only hits).
  double dice = 0.0;
  /// Token / synonym / name-bucket evidence — always scored exactly (the
  /// synonym tiers are required for the skip-bound to stay admissible).
  bool strong = false;
};

}  // namespace

double QueryCandidates::ProvablyCompleteFraction(
    double delta_threshold) const {
  if (cells_.empty()) return 1.0;
  size_t complete = 0;
  for (const Cell& cell : cells_) {
    if (cell.skip_bound == kInf ||
        weight_name_ * cell.skip_bound / normalizer_ >
            delta_threshold + 1e-12) {
      ++complete;
    }
  }
  return static_cast<double>(complete) / static_cast<double>(cells_.size());
}

CandidateGenerator::CandidateGenerator(const PreparedRepository* prepared,
                                       match::ObjectiveOptions objective)
    : prepared_(prepared), objective_(std::move(objective)) {
  assert(prepared_ != nullptr);
  // Mirror ScoreFolded's weight clamping: negative weights count as 0.
  const sim::NameSimilarityOptions& name = objective_.name;
  double wl = std::max(0.0, name.weight_levenshtein);
  double wj = std::max(0.0, name.weight_jaro_winkler);
  double wt = std::max(0.0, name.weight_trigram);
  double wk = std::max(0.0, name.weight_token);
  double wsum = wl + wj + wt + wk;
  trigram_weight_share_ = wsum > 0.0 ? wt / wsum : 0.0;
}

Result<QueryCandidates> CandidateGenerator::Generate(
    const schema::Schema& query, size_t limit) const {
  if (limit == 0) {
    return Status::InvalidArgument("candidate limit must be positive");
  }
  if (query.empty()) {
    return Status::InvalidArgument("query schema is empty");
  }
  SMB_RETURN_IF_ERROR(query.Validate());
  const sim::NameSimilarityOptions& index_name = prepared_->name_options();
  if (index_name.case_insensitive != objective_.name.case_insensitive ||
      index_name.synonyms != objective_.name.synonyms) {
    return Status::InvalidArgument(
        "candidate generation requires the objective's name options "
        "(folding, synonyms) to match the ones the index was built with");
  }

  const schema::SchemaRepository& repo = prepared_->repo();
  const std::vector<schema::NodeId> preorder = query.PreOrder();
  const size_t m = preorder.size();
  const size_t schema_count = repo.schema_count();
  const size_t element_count = prepared_->element_count();

  QueryCandidates out;
  out.cells_.resize(m * schema_count);
  out.positions_ = m;
  out.schema_count_ = schema_count;
  out.limit_ = limit;
  out.weight_name_ = objective_.weight_name;
  out.normalizer_ = objective_.weight_name * static_cast<double>(m);
  if (m > 1) {
    out.normalizer_ +=
        objective_.weight_structure * static_cast<double>(m - 1);
  }
  if (out.normalizer_ <= 0.0) out.normalizer_ = 1.0;

  // Per-element evidence accumulators, reset between uses by walking the
  // touched/scored lists (never the full arrays).
  std::vector<uint32_t> shared(element_count, 0);
  std::vector<uint8_t> strong(element_count, 0);
  std::vector<uint32_t> touched;
  std::vector<Retrieved> cell_hits;
  size_t max_schema_size = 0;
  for (const schema::Schema& s : repo.schemas()) {
    max_schema_size = std::max(max_schema_size, s.size());
  }
  // Per-schema scratch, nodes already chosen for the current cell.
  std::vector<uint8_t> in_list(max_schema_size, 0);
  std::vector<uint32_t> scored_ordinals;
  std::vector<match::CandidateEntry> entries;
  // Deduplicated (token id, synonym group) pairs of the current position.
  std::vector<std::pair<uint32_t, int32_t>> query_tokens;

  for (size_t pos = 0; pos < m; ++pos) {
    const schema::SchemaNode& qnode = query.node(preorder[pos]);
    // Lookup-only preparation against the index's shared interner: query
    // token ids agree with element token ids, the index stays immutable.
    const sim::PreparedName qp = sim::PrepareName(
        qnode.name, objective_.name, prepared_->token_table());
    // One scorer per query position: query-side setup (weights, PEQ
    // bitmask scatter) loads once and every candidate of every schema
    // scores through it.
    sim::BlockScorer scorer(qp, objective_.name);
    const auto& qgram_ids = qp.gram_ids;
    const double qa = static_cast<double>(qgram_ids.size());

    touched.clear();
    auto touch = [&](uint32_t ordinal) {
      if (shared[ordinal] == 0 && strong[ordinal] == 0) {
        touched.push_back(ordinal);
      }
    };

    // Trigram evidence with multiplicities: Σ_g min(mult_q, mult_e) is the
    // exact Dice numerator of every element sharing a gram. Gram ids are
    // sorted, so runs of equal ids give the query-side multiplicity.
    for (size_t g = 0; g < qgram_ids.size();) {
      size_t end = g + 1;
      while (end < qgram_ids.size() && qgram_ids[end] == qgram_ids[g]) ++end;
      const auto query_mult = static_cast<uint32_t>(end - g);
      for (const TrigramPosting& posting :
           prepared_->TrigramPostings(qgram_ids[g])) {
        touch(posting.ordinal);
        shared[posting.ordinal] +=
            std::min(query_mult, static_cast<uint32_t>(posting.count));
      }
      g = end;
    }

    // Strong evidence: shared tokens, shared token synonym groups, equal
    // folded names, whole-name synonym groups.
    auto mark_strong = [&](std::span<const uint32_t> postings) {
      for (uint32_t ordinal : postings) {
        touch(ordinal);
        strong[ordinal] = 1;
      }
    };
    auto mark_strong_bucket = [&](const std::vector<uint32_t>* postings) {
      if (postings != nullptr) mark_strong(*postings);
    };
    // Token ids and synonym groups were already resolved by the
    // lookup-only PrepareName above — the same dedup the index build posts
    // under, so retrieval can never disagree with the postings. Unknown
    // ids (tokens no repository element contains) post nothing, but their
    // synonym group may still retrieve aliases.
    AppendUniqueTokenGroupPairs(qp, &query_tokens);
    for (const auto& [token_id, group] : query_tokens) {
      if (token_id != sim::kUnknownTokenId) {
        mark_strong(prepared_->TokenPostings(token_id));
      }
      if (group >= 0) {
        mark_strong_bucket(prepared_->TokenGroupPostings(group));
      }
    }
    mark_strong_bucket(prepared_->NameBucket(qp.folded));
    if (qp.name_group >= 0) {
      mark_strong_bucket(prepared_->NameGroupBucket(qp.name_group));
    }

    // Ordinals are (schema, node)-ordered, so one sorted walk groups the
    // retrieved elements by schema.
    std::sort(touched.begin(), touched.end());

    const std::vector<uint32_t>* type_bucket =
        qnode.type.empty() ? nullptr : prepared_->TypeBucket(qnode.type);

    size_t ti = 0;
    for (size_t si = 0; si < schema_count; ++si) {
      const auto schema_index = static_cast<int32_t>(si);
      const schema::Schema& schema = repo.schema(schema_index);
      const size_t schema_size = schema.size();
      const uint32_t first = prepared_->first_ordinal(schema_index);
      const uint32_t end = first + static_cast<uint32_t>(schema_size);

      cell_hits.clear();
      for (; ti < touched.size() && touched[ti] < end; ++ti) {
        const uint32_t ordinal = touched[ti];
        Retrieved hit;
        hit.ordinal = ordinal;
        hit.strong = strong[ordinal] != 0;
        const double denom =
            qa + static_cast<double>(prepared_->element(ordinal)
                                         .trigram_count);
        hit.dice = denom > 0.0
                       ? 2.0 * static_cast<double>(shared[ordinal]) / denom
                       : 0.0;
        cell_hits.push_back(hit);
      }

      // Scoring set: every strong hit (required for admissibility of the
      // synonym tiers, and they are the high-precision candidates anyway),
      // then trigram-only hits by descending Dice until `limit` entries.
      auto weak_begin =
          std::stable_partition(cell_hits.begin(), cell_hits.end(),
                                [](const Retrieved& r) { return r.strong; });
      std::sort(weak_begin, cell_hits.end(),
                [](const Retrieved& a, const Retrieved& b) {
                  if (a.dice != b.dice) return a.dice > b.dice;
                  return a.ordinal < b.ordinal;
                });
      const size_t strong_count =
          static_cast<size_t>(weak_begin - cell_hits.begin());
      const size_t weak_count = cell_hits.size() - strong_count;
      const size_t weak_scored =
          strong_count >= limit ? 0
                                : std::min(weak_count, limit - strong_count);

      scored_ordinals.clear();
      for (size_t i = 0; i < strong_count + weak_scored; ++i) {
        scored_ordinals.push_back(cell_hits[i].ordinal);
        in_list[cell_hits[i].ordinal - first] = 1;
      }

      // Pad to C with unretrieved elements: same declared type first, then
      // node order — deterministic and query-independent.
      if (scored_ordinals.size() < limit && type_bucket != nullptr) {
        auto it = std::lower_bound(type_bucket->begin(), type_bucket->end(),
                                   first);
        for (; it != type_bucket->end() && *it < end &&
               scored_ordinals.size() < limit;
             ++it) {
          if (in_list[*it - first] == 0) {
            scored_ordinals.push_back(*it);
            in_list[*it - first] = 1;
          }
        }
      }
      for (uint32_t ordinal = first;
           ordinal < end && scored_ordinals.size() < limit; ++ordinal) {
        if (in_list[ordinal - first] == 0) {
          scored_ordinals.push_back(ordinal);
          in_list[ordinal - first] = 1;
        }
      }

      // Exact scoring — the same ComputeNodeCost over prepared names the
      // dense pool runs, so kept candidate costs are bit-identical to its.
      // The loop maintains the C cheapest (cost, node) in a max-heap; once
      // the list is full, the current C-th cost feeds the threshold-aware
      // kernel, which drops provably-worse candidates after its cheap
      // admissible bounds instead of scoring them in full. Dropped and
      // pruned candidates both contribute to the truncation tier of the
      // skip-bound: an exact cost when fully scored, an admissible lower
      // bound (> the C-th cost) when pruned — so the bound stays
      // admissible and, without pruning, bit-identical to sorting
      // everything and reading the (C+1)-th cost.
      entries.clear();
      double truncation_bound = kInf;
      auto heap_before = [](const match::CandidateEntry& a,
                            const match::CandidateEntry& b) {
        if (a.cost != b.cost) return a.cost < b.cost;
        return a.node < b.node;  // max-heap on (cost, node)
      };
      for (uint32_t ordinal : scored_ordinals) {
        const PreparedElement& element = prepared_->element(ordinal);
        const schema::SchemaNode& tnode = schema.node(element.node);
        if (entries.size() < limit) {
          match::CandidateEntry entry;
          entry.node = element.node;
          entry.cost = match::ComputeNodeCost(scorer, qnode, tnode,
                                              element.name, objective_);
          entries.push_back(entry);
          std::push_heap(entries.begin(), entries.end(), heap_before);
          continue;
        }
        const match::CandidateEntry& top = entries.front();
        double cost;
        // Cost ties at 1.0 break on node order through the min(1, ·) cap,
        // which the similarity-space cutoff cannot see — score those in
        // full.
        if (cutoff_enabled_ && top.cost < 1.0) {
          match::NodeCostCutoff scored = match::ComputeNodeCostWithCutoff(
              scorer, qnode, tnode, element.name, objective_, top.cost);
          if (!scored.exact) {  // provably > C-th cost: cannot enter
            truncation_bound = std::min(truncation_bound, scored.cost);
            continue;
          }
          cost = scored.cost;
        } else {
          cost = match::ComputeNodeCost(scorer, qnode, tnode, element.name,
                                        objective_);
        }
        if (cost < top.cost || (cost == top.cost && element.node < top.node)) {
          truncation_bound = std::min(truncation_bound, top.cost);
          std::pop_heap(entries.begin(), entries.end(), heap_before);
          entries.back().node = element.node;
          entries.back().cost = cost;
          std::push_heap(entries.begin(), entries.end(), heap_before);
        } else {
          truncation_bound = std::min(truncation_bound, cost);
        }
      }
      std::sort(entries.begin(), entries.end(),
                [](const match::CandidateEntry& a,
                   const match::CandidateEntry& b) {
                  if (a.cost != b.cost) return a.cost < b.cost;
                  return a.node < b.node;
                });

      QueryCandidates::Cell& cell =
          out.cells_[pos * schema_count + si];
      const size_t scored_total = scored_ordinals.size();
      double bound = truncation_bound;  // kInf when nothing was dropped
      if (weak_scored < weak_count) {
        // Retrieved but unscored: their exact Dice caps the trigram term.
        bound = std::min(
            bound, trigram_weight_share_ *
                       (1.0 - cell_hits[strong_count + weak_scored].dice));
      }
      if (scored_total + (weak_count - weak_scored) < schema_size) {
        // Never-retrieved elements share no trigram with the query: D = 0.
        bound = std::min(bound, trigram_weight_share_);
      }
      cell.entries = entries;
      cell.skip_bound = bound;
      out.generated_ += cell.entries.size();
      out.skipped_ += schema_size - cell.entries.size();
      // in_list was set exactly for the scored ordinals — reset only those.
      for (uint32_t ordinal : scored_ordinals) {
        in_list[ordinal - first] = 0;
      }
    }

    for (uint32_t ordinal : touched) {
      shared[ordinal] = 0;
      strong[ordinal] = 0;
    }
  }

  return out;
}

}  // namespace smb::index
