#include "index/candidate_generator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <utility>

#include "sim/prepared_kernel.h"
#include "sim/synonyms.h"

/// \file candidate_generator.cc
/// \brief Fixed-C and bound-driven (adaptive) candidate generation.
///
/// Both entry points share one engine: a per-position *retrieval* pass
/// (postings → retrieved elements with exact trigram Dice and
/// strong-evidence flags) and a per-cell *scoring* pass (max-heap of the C
/// cheapest exact node costs with threshold-aware pruning, emitting the
/// admissible skip-bound). `Generate` runs retrieval + one scoring pass per
/// cell; `GenerateAdaptive` keeps the retrieval state alive and re-scores
/// only the cells whose bound has not yet certified the caller's
/// completeness target, at geometrically growing limits.

namespace smb::index {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Certification margin in Δ units. Every matcher discards assignments
/// whose accumulated cost exceeds `delta·normalizer + 1e-12` (and the
/// unpruned exhaustive path filters emitted mappings at `Δ ≤ delta +
/// 1e-12`), so a skipped element whose Δ-unit bound exceeds the threshold
/// by this much strictly cannot contribute an answer.
constexpr double kCertifyMargin = 1e-9;

/// One retrieved element of the current query position.
struct Retrieved {
  uint32_t ordinal = 0;
  /// Exact trigram Dice against the query name (0 for strong-only hits).
  double dice = 0.0;
  /// Token / synonym / name-bucket evidence — always scored exactly (the
  /// synonym tiers are required for the skip-bound to stay admissible).
  bool strong = false;
};

/// One distinct query trigram for the block-max traversal: its posting
/// list in the index plus the query-side multiplicity.
struct WandTerm {
  int32_t list = -1;
  uint32_t qmult = 0;
  /// Resume hint: where the previous cell's range ended in this term's
  /// list. Cells are scored in ascending ordinal order within a position,
  /// so the hint is usually exactly the next cell's lower bound; it is
  /// validated in O(1) and falls back to a binary search when stale
  /// (adaptive escalation rounds revisit cells out of order).
  const TrigramPosting* hint = nullptr;
};

/// Retrieval results of one query position, valid for every schema and —
/// in adaptive generation — every escalation round.
struct PositionRetrieval {
  /// Lookup-only preparation against the index's shared interner.
  sim::PreparedName prepared;
  /// Retrieved elements, ascending by ordinal (= grouped by schema). With
  /// block-max traversal enabled these are the strong hits only — trigram
  /// candidates are selected per cell by the WAND pass instead.
  std::vector<Retrieved> hits;
  /// `hits` index range of schema `si` is
  /// [hit_offsets[si], hit_offsets[si + 1]).
  std::vector<uint32_t> hit_offsets;
  /// Distinct query grams present in the index (block-max mode only).
  std::vector<WandTerm> wand_terms;
  const std::vector<uint32_t>* type_bucket = nullptr;
};

/// One posting-list cursor of the per-cell WAND traversal, restricted to
/// the cell's ordinal range [first, end).
struct WandCursor {
  const TrigramPosting* pos = nullptr;       // current posting
  const TrigramPosting* range_end = nullptr;  // end of the in-range span
  const TrigramPosting* list_begin = nullptr;  // whole list, for block math
  const uint32_t* block_last = nullptr;  // list-global block metadata
  const uint16_t* block_max = nullptr;
  uint32_t qmult = 0;
  /// min(qmult, max posting count over the blocks overlapping the range):
  /// the cursor's admissible cap on any element's Dice numerator.
  double range_ub = 0.0;
};

/// Top-k heap entry of the WAND traversal.
struct WandHit {
  double dice = 0.0;
  uint32_t ordinal = 0;
};

bool CellComplete(double skip_bound, double weight_name, double normalizer,
                  double delta_threshold) {
  return skip_bound == kInf ||
         weight_name * skip_bound / normalizer >
             delta_threshold + kCertifyMargin;
}

/// The shared generation machinery: retrieval scratch plus the max-heap /
/// cutoff cell scorer. One instance per Generate/GenerateAdaptive call;
/// not thread-safe (the scratch is reused across cells).
class GenerationEngine {
 public:
  GenerationEngine(const PreparedRepository* prepared,
                   const match::ObjectiveOptions* objective,
                   double trigram_weight_share, bool cutoff_enabled,
                   bool block_max_enabled)
      : prepared_(prepared),
        objective_(objective),
        trigram_weight_share_(trigram_weight_share),
        cutoff_enabled_(cutoff_enabled),
        block_max_(block_max_enabled) {
    const size_t element_count = prepared_->element_count();
    shared_.assign(element_count, 0);
    strong_.assign(element_count, 0);
    size_t max_schema_size = 0;
    for (const schema::Schema& s : prepared_->repo().schemas()) {
      max_schema_size = std::max(max_schema_size, s.size());
    }
    in_list_.assign(max_schema_size, 0);
  }

  /// \brief Runs the retrieval pass for one query node: trigram postings
  /// with multiplicities (exact Dice numerators), strong evidence (shared
  /// tokens, token synonym groups, equal folded names, whole-name synonym
  /// groups), grouped by schema.
  void Retrieve(const schema::SchemaNode& qnode, PositionRetrieval* out) {
    out->prepared = sim::PrepareName(qnode.name, objective_->name,
                                     prepared_->token_table());
    out->hits.clear();
    out->type_bucket =
        qnode.type.empty() ? nullptr : prepared_->TypeBucket(qnode.type);

    touched_.clear();
    auto touch = [&](uint32_t ordinal) {
      if (shared_[ordinal] == 0 && strong_[ordinal] == 0) {
        touched_.push_back(ordinal);
      }
    };

    // Trigram evidence with multiplicities: Σ_g min(mult_q, mult_e) is the
    // exact Dice numerator of every element sharing a gram. Gram ids are
    // sorted, so runs of equal ids give the query-side multiplicity. With
    // block-max traversal the full postings walk is skipped — this pass
    // only resolves each distinct gram to its posting list, and the
    // per-cell WAND pass (`SelectWandCandidates`) touches just the
    // postings it cannot prove irrelevant.
    out->wand_terms.clear();
    const auto& qgram_ids = out->prepared.gram_ids;
    for (size_t g = 0; g < qgram_ids.size();) {
      size_t end = g + 1;
      while (end < qgram_ids.size() && qgram_ids[end] == qgram_ids[g]) ++end;
      const auto query_mult = static_cast<uint32_t>(end - g);
      if (block_max_) {
        const int32_t list = prepared_->TrigramListIndex(qgram_ids[g]);
        if (list >= 0) out->wand_terms.push_back({list, query_mult});
      } else {
        for (const TrigramPosting& posting :
             prepared_->TrigramPostings(qgram_ids[g])) {
          touch(posting.ordinal);
          shared_[posting.ordinal] +=
              std::min(query_mult, static_cast<uint32_t>(posting.count));
        }
      }
      g = end;
    }

    // Strong evidence: shared tokens, shared token synonym groups, equal
    // folded names, whole-name synonym groups.
    auto mark_strong = [&](std::span<const uint32_t> postings) {
      for (uint32_t ordinal : postings) {
        touch(ordinal);
        strong_[ordinal] = 1;
      }
    };
    auto mark_strong_bucket = [&](const std::vector<uint32_t>* postings) {
      if (postings != nullptr) mark_strong(*postings);
    };
    // Token ids and synonym groups were already resolved by the
    // lookup-only PrepareName above — the same dedup the index build posts
    // under, so retrieval can never disagree with the postings. Unknown
    // ids (tokens no repository element contains) post nothing, but their
    // synonym group may still retrieve aliases.
    AppendUniqueTokenGroupPairs(out->prepared, &query_tokens_);
    for (const auto& [token_id, group] : query_tokens_) {
      if (token_id != sim::kUnknownTokenId) {
        mark_strong(prepared_->TokenPostings(token_id));
      }
      if (group >= 0) {
        mark_strong_bucket(prepared_->TokenGroupPostings(group));
      }
    }
    mark_strong_bucket(prepared_->NameBucket(out->prepared.folded));
    if (out->prepared.name_group >= 0) {
      mark_strong_bucket(prepared_->NameGroupBucket(out->prepared.name_group));
    }

    // Ordinals are (schema, node)-ordered, so one sorted walk groups the
    // retrieved elements by schema.
    std::sort(touched_.begin(), touched_.end());
    const double qa = static_cast<double>(qgram_ids.size());
    out->hits.reserve(touched_.size());
    for (uint32_t ordinal : touched_) {
      Retrieved hit;
      hit.ordinal = ordinal;
      hit.strong = strong_[ordinal] != 0;
      const double denom =
          qa + static_cast<double>(prepared_->element(ordinal).trigram_count);
      hit.dice = denom > 0.0
                     ? 2.0 * static_cast<double>(shared_[ordinal]) / denom
                     : 0.0;
      out->hits.push_back(hit);
    }

    const size_t schema_count = prepared_->repo().schema_count();
    out->hit_offsets.assign(schema_count + 1, 0);
    size_t ti = 0;
    for (size_t si = 0; si < schema_count; ++si) {
      out->hit_offsets[si] = static_cast<uint32_t>(ti);
      const uint32_t end =
          prepared_->first_ordinal(static_cast<int32_t>(si)) +
          static_cast<uint32_t>(
              prepared_->repo().schema(static_cast<int32_t>(si)).size());
      while (ti < out->hits.size() && out->hits[ti].ordinal < end) ++ti;
    }
    out->hit_offsets[schema_count] = static_cast<uint32_t>(ti);

    // Reset the per-element accumulators by walking only the touched list.
    for (uint32_t ordinal : touched_) {
      shared_[ordinal] = 0;
      strong_[ordinal] = 0;
    }
  }

  /// \brief Scores one (position, schema) cell at `limit` and writes its
  /// entries and skip-bound. Idempotent and limit-monotone (a larger limit
  /// keeps a superset of candidates with a no-smaller bound); re-invoked by
  /// the adaptive path on escalation. Returns the number of candidates
  /// scored — the budget this call spent.
  size_t ScoreCell(PositionRetrieval& retrieval,
                   sim::BlockScorer& scorer, const schema::SchemaNode& qnode,
                   int32_t schema_index, size_t limit,
                   std::vector<match::CandidateEntry>* cell_entries,
                   double* cell_skip_bound) {
    const schema::Schema& schema = prepared_->repo().schema(schema_index);
    const size_t schema_size = schema.size();
    const uint32_t first = prepared_->first_ordinal(schema_index);
    const uint32_t end = first + static_cast<uint32_t>(schema_size);
    const auto si = static_cast<size_t>(schema_index);

    cell_hits_.assign(
        retrieval.hits.begin() + retrieval.hit_offsets[si],
        retrieval.hits.begin() + retrieval.hit_offsets[si + 1]);

    // Scoring set: every strong hit (required for admissibility of the
    // synonym tiers, and they are the high-precision candidates anyway),
    // then trigram-only hits by descending Dice until `limit` entries.
    auto weak_begin =
        std::stable_partition(cell_hits_.begin(), cell_hits_.end(),
                              [](const Retrieved& r) { return r.strong; });
    std::sort(weak_begin, cell_hits_.end(),
              [](const Retrieved& a, const Retrieved& b) {
                if (a.dice != b.dice) return a.dice > b.dice;
                return a.ordinal < b.ordinal;
              });
    const size_t strong_count =
        static_cast<size_t>(weak_begin - cell_hits_.begin());
    const size_t weak_count = cell_hits_.size() - strong_count;
    const size_t weak_scored =
        strong_count >= limit ? 0 : std::min(weak_count, limit - strong_count);

    scored_ordinals_.clear();
    for (size_t i = 0; i < strong_count + weak_scored; ++i) {
      scored_ordinals_.push_back(cell_hits_[i].ordinal);
      in_list_[cell_hits_[i].ordinal - first] = 1;
    }

    // Block-max mode: retrieval never walked the trigram postings
    // (weak_count is 0 above), so the weak candidates are selected here by
    // the WAND traversal, which appends to scored_ordinals_/in_list_ and
    // returns the admissible Dice cap of every trigram-sharing element it
    // skipped. A skip implies the selection heap was full, so the cell is
    // already at `limit` and the padding below never re-adds a skipped
    // element.
    double wand_dice_cap = 0.0;
    if (block_max_) {
      const size_t wand_target =
          strong_count >= limit ? 0 : limit - strong_count;
      wand_dice_cap = SelectWandCandidates(retrieval, first, end, wand_target);
    }

    // Pad to C with unretrieved elements: same declared type first, then
    // node order — deterministic and query-independent.
    if (scored_ordinals_.size() < limit && retrieval.type_bucket != nullptr) {
      auto it = std::lower_bound(retrieval.type_bucket->begin(),
                                 retrieval.type_bucket->end(), first);
      for (; it != retrieval.type_bucket->end() && *it < end &&
             scored_ordinals_.size() < limit;
           ++it) {
        if (in_list_[*it - first] == 0) {
          scored_ordinals_.push_back(*it);
          in_list_[*it - first] = 1;
        }
      }
    }
    for (uint32_t ordinal = first;
         ordinal < end && scored_ordinals_.size() < limit; ++ordinal) {
      if (in_list_[ordinal - first] == 0) {
        scored_ordinals_.push_back(ordinal);
        in_list_[ordinal - first] = 1;
      }
    }

    // Exact scoring — the same ComputeNodeCost over prepared names the
    // dense pool runs, so kept candidate costs are bit-identical to its.
    // The loop maintains the C cheapest (cost, node) in a max-heap; once
    // the list is full, the current C-th cost feeds the threshold-aware
    // kernel, which drops provably-worse candidates after its cheap
    // admissible bounds instead of scoring them in full. Dropped and
    // pruned candidates both contribute to the truncation tier of the
    // skip-bound: an exact cost when fully scored, an admissible lower
    // bound (> the C-th cost) when pruned — so the bound stays
    // admissible and, without pruning, bit-identical to sorting
    // everything and reading the (C+1)-th cost.
    entries_.clear();
    double truncation_bound = kInf;
    auto heap_before = [](const match::CandidateEntry& a,
                          const match::CandidateEntry& b) {
      if (a.cost != b.cost) return a.cost < b.cost;
      return a.node < b.node;  // max-heap on (cost, node)
    };
    for (uint32_t ordinal : scored_ordinals_) {
      const PreparedElement& element = prepared_->element(ordinal);
      const schema::SchemaNode& tnode = schema.node(element.node);
      if (entries_.size() < limit) {
        match::CandidateEntry entry;
        entry.node = element.node;
        entry.cost = match::ComputeNodeCost(scorer, qnode, tnode,
                                            element.name, *objective_);
        entries_.push_back(entry);
        std::push_heap(entries_.begin(), entries_.end(), heap_before);
        continue;
      }
      const match::CandidateEntry& top = entries_.front();
      double cost;
      // Cost ties at 1.0 break on node order through the min(1, ·) cap,
      // which the similarity-space cutoff cannot see — score those in
      // full.
      if (cutoff_enabled_ && top.cost < 1.0) {
        match::NodeCostCutoff scored = match::ComputeNodeCostWithCutoff(
            scorer, qnode, tnode, element.name, *objective_, top.cost);
        if (!scored.exact) {  // provably > C-th cost: cannot enter
          truncation_bound = std::min(truncation_bound, scored.cost);
          continue;
        }
        cost = scored.cost;
      } else {
        cost = match::ComputeNodeCost(scorer, qnode, tnode, element.name,
                                      *objective_);
      }
      if (cost < top.cost || (cost == top.cost && element.node < top.node)) {
        truncation_bound = std::min(truncation_bound, top.cost);
        std::pop_heap(entries_.begin(), entries_.end(), heap_before);
        entries_.back().node = element.node;
        entries_.back().cost = cost;
        std::push_heap(entries_.begin(), entries_.end(), heap_before);
      } else {
        truncation_bound = std::min(truncation_bound, cost);
      }
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const match::CandidateEntry& a,
                 const match::CandidateEntry& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.node < b.node;
              });

    const size_t scored_total = scored_ordinals_.size();
    double bound = truncation_bound;  // kInf when nothing was dropped
    if (block_max_) {
      // One tier covers every unscored element: the WAND traversal's
      // skipped elements have Dice ≤ wand_dice_cap, and elements sharing
      // no trigram with the query have Dice 0 ≤ wand_dice_cap. With cap 0
      // (nothing skipped) this is exactly the classic never-retrieved
      // tier. The classic tiers must NOT apply here — `bound = share`
      // would be inadmissible for a skipped element whose Dice is
      // positive.
      if (scored_total < schema_size) {
        bound =
            std::min(bound, trigram_weight_share_ * (1.0 - wand_dice_cap));
      }
    } else {
      if (weak_scored < weak_count) {
        // Retrieved but unscored: their exact Dice caps the trigram term.
        bound = std::min(
            bound, trigram_weight_share_ *
                       (1.0 - cell_hits_[strong_count + weak_scored].dice));
      }
      if (scored_total + (weak_count - weak_scored) < schema_size) {
        // Never-retrieved elements share no trigram with the query: D = 0.
        bound = std::min(bound, trigram_weight_share_);
      }
    }
    *cell_entries = entries_;
    *cell_skip_bound = bound;
    // in_list_ was set exactly for the scored ordinals — reset only those.
    for (uint32_t ordinal : scored_ordinals_) {
      in_list_[ordinal - first] = 0;
    }
    return scored_total;
  }

 private:
  /// Advances the cursor to the first in-range posting with ordinal ≥
  /// `target`, skipping whole blocks through the per-block last-ordinal
  /// fence (the point of the block metadata: a skipped block's postings
  /// are never touched).
  static void AdvanceCursor(WandCursor* c, uint32_t target) {
    size_t block =
        static_cast<size_t>(c->pos - c->list_begin) / kTrigramBlockSize;
    while (c->block_last[block] < target) {
      const TrigramPosting* next =
          c->list_begin + (block + 1) * kTrigramBlockSize;
      if (next >= c->range_end) {
        c->pos = c->range_end;
        return;
      }
      c->pos = next;
      ++block;
    }
    while (c->pos != c->range_end && c->pos->ordinal < target) ++c->pos;
  }

  /// \brief Block-max WAND selection of one cell's trigram candidates.
  ///
  /// Walks the cell's posting ranges document-at-a-time, keeps the
  /// `k_target` best exact Dice scores, and skips posting spans whose
  /// upper bound provably cannot beat the current k-th best. Selected
  /// ordinals are appended to `scored_ordinals_` (descending Dice,
  /// ascending ordinal on ties — the classic weak order) and marked in
  /// `in_list_`; elements already marked (strong hits) are evaluated but
  /// never selected or counted as skipped, exactly like the classic weak
  /// pool. Returns an admissible Dice cap for every trigram-sharing
  /// element of the cell that was *not* selected (0 when none exists).
  ///
  /// Admissibility of the skip decisions: an element's Dice is
  ///   2·num / (qa + tc),  num = Σ_g min(qmult_g, count_g) ≤ acc,
  /// and tc ≥ num as well as tc ≥ the floor of any block containing one
  /// of its postings, so
  ///   Dice ≤ 2·acc / (qa + max(acc, tc_floor)) = dice_ub(acc),
  /// which is monotone increasing in acc. Prefix sums of per-cursor caps
  /// therefore bound whole cursor prefixes (pivoting), and per-block
  /// maxima bound the aligned span up to the earliest block fence
  /// (block-max skipping). Skips additionally require the bound to fall
  /// short of the k-th best by 1e-12 — far coarser than the spacing of
  /// the exact Dice quotients — so the selected set is identical to the
  /// classic retrieve-everything top-k (tests compare the two paths
  /// bit-for-bit).
  double SelectWandCandidates(PositionRetrieval& retrieval, uint32_t first,
                              uint32_t end, size_t k_target) {
    auto below = [](const TrigramPosting& p, uint32_t ordinal) {
      return p.ordinal < ordinal;
    };
    // Resolves the first in-range posting: the term's resume hint when it
    // is exactly the lower bound of `first` (the common case — cells are
    // visited in ascending ordinal order, so each list is swept linearly
    // across a position's cells), else a binary search.
    auto resolve_lo = [&](const WandTerm& term,
                          const std::span<const TrigramPosting>& list) {
      const TrigramPosting* const begin = list.data();
      const TrigramPosting* const lend = begin + list.size();
      const TrigramPosting* lo = term.hint;
      if (lo == nullptr || (lo != lend && lo->ordinal < first) ||
          (lo != begin && (lo - 1)->ordinal >= first)) {
        lo = std::lower_bound(begin, lend, first, below);
      }
      return lo;
    };
    const double qa = static_cast<double>(retrieval.prepared.gram_ids.size());

    // Worst-on-top heap ordering: lowest Dice, ties on *higher* ordinal.
    // Insertion is strict (`dice > top`), and both selection paths visit
    // ordinals ascending, so an equal-Dice later element never displaces
    // an earlier one — reproducing the classic (Dice desc, ordinal asc)
    // top-k exactly.
    auto worse_on_top = [](const WandHit& a, const WandHit& b) {
      if (a.dice != b.dice) return a.dice > b.dice;
      return a.ordinal < b.ordinal;
    };

    // Dense fast path for small cells. Pivoting can only skip whole block
    // spans, so a cell whose ordinal range fits within ~a block has
    // nothing to skip and would pay the cursor-ordering machinery for
    // free: evaluate every trigram-sharing element instead, exactly as
    // the classic path would (same Dice expression, ascending-ordinal
    // visit order, strict heap insertion), but still without the
    // repository-wide postings walk or any block metadata.
    if (k_target > 0 && end - first <= kTrigramBlockSize) {
      const uint32_t width = end - first;
      wand_dense_.assign(width, 0u);
      for (WandTerm& term : retrieval.wand_terms) {
        const std::span<const TrigramPosting> list =
            prepared_->TrigramListPostings(term.list);
        const TrigramPosting* const lend = list.data() + list.size();
        const TrigramPosting* p = resolve_lo(term, list);
        for (; p != lend && p->ordinal < end; ++p) {
          wand_dense_[p->ordinal - first] +=
              std::min(term.qmult, static_cast<uint32_t>(p->count));
        }
        term.hint = p;
      }
      wand_heap_.clear();
      bool excluded_any = false;
      for (uint32_t off = 0; off < width; ++off) {
        const uint32_t num = wand_dense_[off];
        if (num == 0) continue;        // shares no trigram with the query
        if (in_list_[off] != 0) continue;  // already a strong hit
        const uint32_t ordinal = first + off;
        const double denom =
            qa + static_cast<double>(prepared_->element(ordinal).trigram_count);
        const double dice =
            denom > 0.0 ? 2.0 * static_cast<double>(num) / denom : 0.0;
        if (wand_heap_.size() < k_target) {
          wand_heap_.push_back({dice, ordinal});
          std::push_heap(wand_heap_.begin(), wand_heap_.end(), worse_on_top);
        } else if (dice > wand_heap_.front().dice) {
          excluded_any = true;
          std::pop_heap(wand_heap_.begin(), wand_heap_.end(), worse_on_top);
          wand_heap_.back() = {dice, ordinal};
          std::push_heap(wand_heap_.begin(), wand_heap_.end(), worse_on_top);
        } else {
          excluded_any = true;
        }
      }
      return EmitWandSelection(first, excluded_any);
    }

    wand_cursors_.clear();
    uint32_t cell_tc_floor = std::numeric_limits<uint32_t>::max();
    for (WandTerm& term : retrieval.wand_terms) {
      const std::span<const TrigramPosting> list =
          prepared_->TrigramListPostings(term.list);
      const TrigramPosting* lo = resolve_lo(term, list);
      const TrigramPosting* hi =
          std::lower_bound(lo, list.data() + list.size(), end, below);
      term.hint = hi;
      if (lo == hi) continue;
      const TrigramBlockSpans blocks = prepared_->TrigramBlocks(term.list);
      WandCursor cursor;
      cursor.pos = lo;
      cursor.range_end = hi;
      cursor.list_begin = list.data();
      cursor.block_last = blocks.last_ordinals.data();
      cursor.block_max = blocks.max_counts.data();
      cursor.qmult = term.qmult;
      uint16_t range_max = 0;
      const size_t first_block =
          static_cast<size_t>(lo - list.data()) / kTrigramBlockSize;
      const size_t last_block =
          static_cast<size_t>(hi - 1 - list.data()) / kTrigramBlockSize;
      for (size_t b = first_block; b <= last_block; ++b) {
        range_max = std::max(range_max, blocks.max_counts[b]);
        cell_tc_floor = std::min(cell_tc_floor, blocks.tc_floors[b]);
      }
      cursor.range_ub = std::min<double>(term.qmult, range_max);
      wand_cursors_.push_back(cursor);
    }
    if (wand_cursors_.empty()) return 0.0;

    const double tc_floor = static_cast<double>(cell_tc_floor);
    auto dice_ub = [&](double acc) {
      return 2.0 * acc / (qa + std::max(acc, tc_floor));
    };

    if (k_target == 0) {
      // Nothing to select (the strong hits already fill the cell): every
      // trigram-sharing element is skipped; cap all of them at the
      // range-level upper bound.
      double acc = 0.0;
      for (const WandCursor& c : wand_cursors_) acc += c.range_ub;
      return std::min(1.0, dice_ub(acc));
    }

    constexpr double kSkipSlack = 1e-12;
    wand_heap_.clear();
    bool skipped_any = false;

    wand_order_.clear();
    for (size_t i = 0; i < wand_cursors_.size(); ++i) {
      wand_order_.push_back(static_cast<uint32_t>(i));
    }
    while (!wand_order_.empty()) {
      // Drop exhausted cursors and order the rest by current ordinal.
      wand_order_.erase(
          std::remove_if(wand_order_.begin(), wand_order_.end(),
                         [&](uint32_t i) {
                           return wand_cursors_[i].pos ==
                                  wand_cursors_[i].range_end;
                         }),
          wand_order_.end());
      if (wand_order_.empty()) break;
      std::sort(wand_order_.begin(), wand_order_.end(),
                [&](uint32_t a, uint32_t b) {
                  return wand_cursors_[a].pos->ordinal <
                         wand_cursors_[b].pos->ordinal;
                });
      const double theta =
          wand_heap_.size() >= k_target ? wand_heap_.front().dice : -kInf;
      // Pivot: the first cursor prefix whose combined range-level bound
      // could still beat the k-th best. An element below the pivot's
      // ordinal is covered only by cursors currently at or before it — a
      // strict sub-prefix — so it is provably out.
      double acc = 0.0;
      size_t pivot = wand_order_.size();
      for (size_t i = 0; i < wand_order_.size(); ++i) {
        acc += wand_cursors_[wand_order_[i]].range_ub;
        if (dice_ub(acc) > theta - kSkipSlack) {
          pivot = i;
          break;
        }
      }
      if (pivot == wand_order_.size()) {
        // Even all cursors combined cannot beat the k-th best: every
        // remaining element is provably out.
        skipped_any = true;
        break;
      }
      const uint32_t pivot_ordinal =
          wand_cursors_[wand_order_[pivot]].pos->ordinal;
      if (wand_cursors_[wand_order_[0]].pos->ordinal != pivot_ordinal) {
        // Skip the pre-pivot cursors forward to the pivot; the elements
        // they pass over are provably out (see above).
        for (size_t i = 0; i < pivot; ++i) {
          AdvanceCursor(&wand_cursors_[wand_order_[i]], pivot_ordinal);
        }
        skipped_any = true;
        continue;
      }
      // Every contributing cursor sits on the pivot. Refine with the
      // metadata of the blocks actually containing it: if even the
      // block-level bound cannot beat θ, the whole aligned span up to the
      // earliest block fence (or the first non-aligned cursor) is out.
      double block_acc = 0.0;
      uint32_t span_last = end - 1;
      size_t at_pivot = 0;
      for (size_t i = 0; i < wand_order_.size(); ++i) {
        const WandCursor& c = wand_cursors_[wand_order_[i]];
        if (c.pos->ordinal != pivot_ordinal) {
          // Sorted, so this first non-aligned cursor bounds the span: it
          // could contribute from its current ordinal on.
          span_last = std::min(span_last, c.pos->ordinal - 1);
          break;
        }
        const size_t block =
            static_cast<size_t>(c.pos - c.list_begin) / kTrigramBlockSize;
        block_acc += std::min<double>(c.qmult, c.block_max[block]);
        span_last = std::min(span_last, c.block_last[block]);
        ++at_pivot;
      }
      if (dice_ub(block_acc) <= theta - kSkipSlack) {
        for (size_t i = 0; i < at_pivot; ++i) {
          AdvanceCursor(&wand_cursors_[wand_order_[i]], span_last + 1);
        }
        skipped_any = true;
        continue;
      }
      // Evaluate the pivot element exactly — the same Dice expression the
      // classic retrieval computes, bit for bit.
      uint32_t num = 0;
      for (size_t i = 0; i < at_pivot; ++i) {
        WandCursor& c = wand_cursors_[wand_order_[i]];
        num += std::min(c.qmult, static_cast<uint32_t>(c.pos->count));
        ++c.pos;
      }
      if (in_list_[pivot_ordinal - first] != 0) {
        continue;  // already selected as a strong hit — not a weak candidate
      }
      const double denom =
          qa +
          static_cast<double>(prepared_->element(pivot_ordinal).trigram_count);
      const double dice =
          denom > 0.0 ? 2.0 * static_cast<double>(num) / denom : 0.0;
      if (wand_heap_.size() < k_target) {
        wand_heap_.push_back({dice, pivot_ordinal});
        std::push_heap(wand_heap_.begin(), wand_heap_.end(), worse_on_top);
      } else if (dice > wand_heap_.front().dice) {
        skipped_any = true;  // the evicted element ends up unselected
        std::pop_heap(wand_heap_.begin(), wand_heap_.end(), worse_on_top);
        wand_heap_.back() = {dice, pivot_ordinal};
        std::push_heap(wand_heap_.begin(), wand_heap_.end(), worse_on_top);
      } else {
        skipped_any = true;
      }
    }

    return EmitWandSelection(first, skipped_any);
  }

  /// Appends the heap's selection to `scored_ordinals_` in the classic
  /// weak order and returns the skip-cap: 0 when nothing was excluded,
  /// else the final k-th best Dice (skipping/eviction requires a full
  /// heap, so it caps every excluded element's Dice).
  double EmitWandSelection(uint32_t first, bool skipped_any) {
    std::sort(wand_heap_.begin(), wand_heap_.end(),
              [](const WandHit& a, const WandHit& b) {
                if (a.dice != b.dice) return a.dice > b.dice;
                return a.ordinal < b.ordinal;
              });
    for (const WandHit& hit : wand_heap_) {
      scored_ordinals_.push_back(hit.ordinal);
      in_list_[hit.ordinal - first] = 1;
    }
    if (!skipped_any) return 0.0;
    return std::min(1.0, wand_heap_.back().dice);
  }

  const PreparedRepository* prepared_;
  const match::ObjectiveOptions* objective_;
  double trigram_weight_share_;
  bool cutoff_enabled_;
  bool block_max_;

  // Per-element evidence accumulators, reset between positions by walking
  // the touched list (never the full arrays).
  std::vector<uint32_t> shared_;
  std::vector<uint8_t> strong_;
  std::vector<uint32_t> touched_;
  // Deduplicated (token id, synonym group) pairs of the current position.
  std::vector<std::pair<uint32_t, int32_t>> query_tokens_;
  // Per-cell scoring scratch.
  std::vector<Retrieved> cell_hits_;
  std::vector<uint8_t> in_list_;
  std::vector<uint32_t> scored_ordinals_;
  std::vector<match::CandidateEntry> entries_;
  // Block-max WAND scratch.
  std::vector<WandCursor> wand_cursors_;
  std::vector<uint32_t> wand_order_;
  std::vector<WandHit> wand_heap_;
  std::vector<uint32_t> wand_dense_;
};

}  // namespace

bool QueryCandidates::CellProvablyComplete(size_t pos, int32_t schema_index,
                                           double delta_threshold) const {
  const Cell& cell =
      cells_[pos * schema_count_ + static_cast<size_t>(schema_index)];
  return CellComplete(cell.skip_bound, weight_name_, normalizer_,
                      delta_threshold);
}

double QueryCandidates::ProvablyCompleteFraction(
    double delta_threshold) const {
  if (cells_.empty()) return 1.0;
  size_t complete = 0;
  for (const Cell& cell : cells_) {
    if (CellComplete(cell.skip_bound, weight_name_, normalizer_,
                     delta_threshold)) {
      ++complete;
    }
  }
  return static_cast<double>(complete) / static_cast<double>(cells_.size());
}

CandidateGenerator::CandidateGenerator(const PreparedRepository* prepared,
                                       match::ObjectiveOptions objective)
    : prepared_(prepared), objective_(std::move(objective)) {
  assert(prepared_ != nullptr);
  // Mirror ScoreFolded's weight clamping: negative weights count as 0.
  const sim::NameSimilarityOptions& name = objective_.name;
  double wl = std::max(0.0, name.weight_levenshtein);
  double wj = std::max(0.0, name.weight_jaro_winkler);
  double wt = std::max(0.0, name.weight_trigram);
  double wk = std::max(0.0, name.weight_token);
  double wsum = wl + wj + wt + wk;
  trigram_weight_share_ = wsum > 0.0 ? wt / wsum : 0.0;
}

Status CandidateGenerator::ValidateQuery(const schema::Schema& query) const {
  if (query.empty()) {
    return Status::InvalidArgument("query schema is empty");
  }
  SMB_RETURN_IF_ERROR(query.Validate());
  const sim::NameSimilarityOptions& index_name = prepared_->name_options();
  if (index_name.case_insensitive != objective_.name.case_insensitive ||
      index_name.synonyms != objective_.name.synonyms) {
    return Status::InvalidArgument(
        "candidate generation requires the objective's name options "
        "(folding, synonyms) to match the ones the index was built with");
  }
  return Status::OK();
}

void CandidateGenerator::FinalizeCounts(QueryCandidates* out) const {
  const schema::SchemaRepository& repo = prepared_->repo();
  out->generated_ = 0;
  out->skipped_ = 0;
  for (size_t pos = 0; pos < out->positions_; ++pos) {
    for (size_t si = 0; si < out->schema_count_; ++si) {
      const size_t listed =
          out->cells_[pos * out->schema_count_ + si].entries.size();
      out->generated_ += listed;
      out->skipped_ += repo.schema(static_cast<int32_t>(si)).size() - listed;
    }
  }
}

void CandidateGenerator::InitOutput(const schema::Schema& query,
                                    QueryCandidates* out) const {
  const size_t m = query.PreOrder().size();
  const size_t schema_count = prepared_->repo().schema_count();
  out->cells_.clear();
  out->cells_.resize(m * schema_count);
  out->positions_ = m;
  out->schema_count_ = schema_count;
  out->weight_name_ = objective_.weight_name;
  out->normalizer_ = objective_.weight_name * static_cast<double>(m);
  if (m > 1) {
    out->normalizer_ +=
        objective_.weight_structure * static_cast<double>(m - 1);
  }
  if (out->normalizer_ <= 0.0) out->normalizer_ = 1.0;
}

Result<QueryCandidates> CandidateGenerator::Generate(
    const schema::Schema& query, size_t limit) const {
  if (limit == 0) {
    return Status::InvalidArgument("candidate limit must be positive");
  }
  SMB_RETURN_IF_ERROR(ValidateQuery(query));

  const std::vector<schema::NodeId> preorder = query.PreOrder();
  const size_t m = preorder.size();
  const size_t schema_count = prepared_->repo().schema_count();

  QueryCandidates out;
  InitOutput(query, &out);
  out.limit_ = limit;

  GenerationEngine engine(prepared_, &objective_, trigram_weight_share_,
                          cutoff_enabled_, block_max_enabled_);
  PositionRetrieval retrieval;
  for (size_t pos = 0; pos < m; ++pos) {
    const schema::SchemaNode& qnode = query.node(preorder[pos]);
    engine.Retrieve(qnode, &retrieval);
    // One scorer per query position: query-side setup (weights, PEQ
    // bitmask scatter) loads once and every candidate of every schema
    // scores through it.
    sim::BlockScorer scorer(retrieval.prepared, objective_.name);
    for (size_t si = 0; si < schema_count; ++si) {
      QueryCandidates::Cell& cell = out.cells_[pos * schema_count + si];
      engine.ScoreCell(retrieval, scorer, qnode, static_cast<int32_t>(si),
                       limit, &cell.entries, &cell.skip_bound);
    }
  }
  FinalizeCounts(&out);
  return out;
}

Result<QueryCandidates> CandidateGenerator::GenerateAdaptive(
    const schema::Schema& query, const AdaptiveCandidatePolicy& policy,
    double delta_threshold, AdaptiveGenerationStats* stats) const {
  if (policy.min_provable_completeness < 0.0 ||
      policy.min_provable_completeness > 1.0) {
    return Status::InvalidArgument(
        "min_provable_completeness must be in [0, 1]");
  }
  if (policy.initial_limit == 0) {
    return Status::InvalidArgument("initial_limit must be positive");
  }
  if (policy.growth_factor < 2) {
    return Status::InvalidArgument("growth_factor must be at least 2");
  }
  if (policy.max_limit != 0 && policy.max_limit < policy.initial_limit) {
    return Status::InvalidArgument(
        "max_limit must be 0 (unbounded) or at least initial_limit");
  }
  SMB_RETURN_IF_ERROR(ValidateQuery(query));

  const schema::SchemaRepository& repo = prepared_->repo();
  const std::vector<schema::NodeId> preorder = query.PreOrder();
  const size_t m = preorder.size();
  const size_t schema_count = repo.schema_count();
  const size_t total_cells = m * schema_count;

  QueryCandidates out;
  InitOutput(query, &out);

  AdaptiveGenerationStats local;
  local.cells_total = total_cells;
  if (total_cells == 0) {
    out.limit_ = policy.initial_limit;
    if (stats != nullptr) *stats = local;
    return out;
  }

  // Growing a cell past its schema size is pointless: the list already
  // covers every node (skip-bound +inf, always certified).
  auto cap_for = [&](size_t si) {
    const size_t schema_size = repo.schema(static_cast<int32_t>(si)).size();
    return policy.max_limit > 0 ? std::min(policy.max_limit, schema_size)
                                : schema_size;
  };

  GenerationEngine engine(prepared_, &objective_, trigram_weight_share_,
                          cutoff_enabled_, block_max_enabled_);

  // Retrieval state is kept per position so escalation rounds only re-run
  // the (cheap, cutoff-pruned) scoring of the cells that need more budget.
  std::vector<PositionRetrieval> retrievals(m);
  std::vector<size_t> limits(total_cells, 0);
  std::vector<uint8_t> certified(total_cells, 0);
  std::vector<uint8_t> escalated(total_cells, 0);

  size_t certified_count = 0;
  auto note_certified = [&](size_t cell_index) {
    if (certified[cell_index] == 0 &&
        CellComplete(out.cells_[cell_index].skip_bound, out.weight_name_,
                     out.normalizer_, delta_threshold)) {
      certified[cell_index] = 1;
      ++certified_count;
    }
  };
  auto target_met = [&] {
    return static_cast<double>(certified_count) /
                   static_cast<double>(total_cells) +
               1e-12 >=
           policy.min_provable_completeness;
  };

  // Round 0: every cell at the initial limit.
  for (size_t pos = 0; pos < m; ++pos) {
    const schema::SchemaNode& qnode = query.node(preorder[pos]);
    engine.Retrieve(qnode, &retrievals[pos]);
    sim::BlockScorer scorer(retrievals[pos].prepared, objective_.name);
    for (size_t si = 0; si < schema_count; ++si) {
      const size_t cell_index = pos * schema_count + si;
      limits[cell_index] = policy.initial_limit;
      QueryCandidates::Cell& cell = out.cells_[cell_index];
      local.budget_spent += engine.ScoreCell(
          retrievals[pos], scorer, qnode, static_cast<int32_t>(si),
          policy.initial_limit, &cell.entries, &cell.skip_bound);
      note_certified(cell_index);
    }
  }

  // Escalation rounds: regenerate every uncertified, still-growable cell
  // at `growth_factor ×` its limit; stop as soon as the certified fraction
  // reaches the target (deterministic (position, schema) order) or no cell
  // can grow further. Terminates: every escalation strictly grows a limit
  // toward its finite cap.
  while (!target_met()) {
    bool any_escalated = false;
    for (size_t pos = 0; pos < m && !target_met(); ++pos) {
      bool row_has_work = false;
      for (size_t si = 0; si < schema_count; ++si) {
        const size_t cell_index = pos * schema_count + si;
        if (certified[cell_index] == 0 && limits[cell_index] < cap_for(si)) {
          row_has_work = true;
          break;
        }
      }
      if (!row_has_work) continue;
      const schema::SchemaNode& qnode = query.node(preorder[pos]);
      sim::BlockScorer scorer(retrievals[pos].prepared, objective_.name);
      for (size_t si = 0; si < schema_count && !target_met(); ++si) {
        const size_t cell_index = pos * schema_count + si;
        const size_t cap = cap_for(si);
        if (certified[cell_index] != 0 || limits[cell_index] >= cap) {
          continue;
        }
        const size_t next_limit =
            std::min(cap, limits[cell_index] * policy.growth_factor);
        QueryCandidates::Cell& cell = out.cells_[cell_index];
        local.budget_spent += engine.ScoreCell(
            retrievals[pos], scorer, qnode, static_cast<int32_t>(si),
            next_limit, &cell.entries, &cell.skip_bound);
        limits[cell_index] = next_limit;
        escalated[cell_index] = 1;
        any_escalated = true;
        note_certified(cell_index);
      }
    }
    if (!any_escalated) break;  // every uncertified cell is at its cap
    ++local.rounds;
  }

  std::map<size_t, uint64_t> distribution;
  size_t max_limit_used = 0;
  for (size_t cell_index = 0; cell_index < total_cells; ++cell_index) {
    max_limit_used = std::max(max_limit_used, limits[cell_index]);
    ++distribution[limits[cell_index]];
    if (escalated[cell_index] != 0) ++local.cells_escalated;
    if (certified[cell_index] == 0 &&
        limits[cell_index] >= cap_for(cell_index % schema_count)) {
      ++local.cells_at_cap;
    }
  }
  local.cells_certified = certified_count;
  local.achieved_completeness = static_cast<double>(certified_count) /
                                static_cast<double>(total_cells);
  local.final_limit_distribution.assign(distribution.begin(),
                                        distribution.end());

  out.limit_ = max_limit_used;
  FinalizeCounts(&out);
  if (stats != nullptr) *stats = std::move(local);
  return out;
}

}  // namespace smb::index
