#include "index/candidate_generator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <utility>

#include "sim/prepared_kernel.h"
#include "sim/synonyms.h"

/// \file candidate_generator.cc
/// \brief Fixed-C and bound-driven (adaptive) candidate generation.
///
/// Both entry points share one engine: a per-position *retrieval* pass
/// (postings → retrieved elements with exact trigram Dice and
/// strong-evidence flags) and a per-cell *scoring* pass (max-heap of the C
/// cheapest exact node costs with threshold-aware pruning, emitting the
/// admissible skip-bound). `Generate` runs retrieval + one scoring pass per
/// cell; `GenerateAdaptive` keeps the retrieval state alive and re-scores
/// only the cells whose bound has not yet certified the caller's
/// completeness target, at geometrically growing limits.

namespace smb::index {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Certification margin in Δ units. Every matcher discards assignments
/// whose accumulated cost exceeds `delta·normalizer + 1e-12` (and the
/// unpruned exhaustive path filters emitted mappings at `Δ ≤ delta +
/// 1e-12`), so a skipped element whose Δ-unit bound exceeds the threshold
/// by this much strictly cannot contribute an answer.
constexpr double kCertifyMargin = 1e-9;

/// One retrieved element of the current query position.
struct Retrieved {
  uint32_t ordinal = 0;
  /// Exact trigram Dice against the query name (0 for strong-only hits).
  double dice = 0.0;
  /// Token / synonym / name-bucket evidence — always scored exactly (the
  /// synonym tiers are required for the skip-bound to stay admissible).
  bool strong = false;
};

/// Retrieval results of one query position, valid for every schema and —
/// in adaptive generation — every escalation round.
struct PositionRetrieval {
  /// Lookup-only preparation against the index's shared interner.
  sim::PreparedName prepared;
  /// Retrieved elements, ascending by ordinal (= grouped by schema).
  std::vector<Retrieved> hits;
  /// `hits` index range of schema `si` is
  /// [hit_offsets[si], hit_offsets[si + 1]).
  std::vector<uint32_t> hit_offsets;
  const std::vector<uint32_t>* type_bucket = nullptr;
};

bool CellComplete(double skip_bound, double weight_name, double normalizer,
                  double delta_threshold) {
  return skip_bound == kInf ||
         weight_name * skip_bound / normalizer >
             delta_threshold + kCertifyMargin;
}

/// The shared generation machinery: retrieval scratch plus the max-heap /
/// cutoff cell scorer. One instance per Generate/GenerateAdaptive call;
/// not thread-safe (the scratch is reused across cells).
class GenerationEngine {
 public:
  GenerationEngine(const PreparedRepository* prepared,
                   const match::ObjectiveOptions* objective,
                   double trigram_weight_share, bool cutoff_enabled)
      : prepared_(prepared),
        objective_(objective),
        trigram_weight_share_(trigram_weight_share),
        cutoff_enabled_(cutoff_enabled) {
    const size_t element_count = prepared_->element_count();
    shared_.assign(element_count, 0);
    strong_.assign(element_count, 0);
    size_t max_schema_size = 0;
    for (const schema::Schema& s : prepared_->repo().schemas()) {
      max_schema_size = std::max(max_schema_size, s.size());
    }
    in_list_.assign(max_schema_size, 0);
  }

  /// \brief Runs the retrieval pass for one query node: trigram postings
  /// with multiplicities (exact Dice numerators), strong evidence (shared
  /// tokens, token synonym groups, equal folded names, whole-name synonym
  /// groups), grouped by schema.
  void Retrieve(const schema::SchemaNode& qnode, PositionRetrieval* out) {
    out->prepared = sim::PrepareName(qnode.name, objective_->name,
                                     prepared_->token_table());
    out->hits.clear();
    out->type_bucket =
        qnode.type.empty() ? nullptr : prepared_->TypeBucket(qnode.type);

    touched_.clear();
    auto touch = [&](uint32_t ordinal) {
      if (shared_[ordinal] == 0 && strong_[ordinal] == 0) {
        touched_.push_back(ordinal);
      }
    };

    // Trigram evidence with multiplicities: Σ_g min(mult_q, mult_e) is the
    // exact Dice numerator of every element sharing a gram. Gram ids are
    // sorted, so runs of equal ids give the query-side multiplicity.
    const auto& qgram_ids = out->prepared.gram_ids;
    for (size_t g = 0; g < qgram_ids.size();) {
      size_t end = g + 1;
      while (end < qgram_ids.size() && qgram_ids[end] == qgram_ids[g]) ++end;
      const auto query_mult = static_cast<uint32_t>(end - g);
      for (const TrigramPosting& posting :
           prepared_->TrigramPostings(qgram_ids[g])) {
        touch(posting.ordinal);
        shared_[posting.ordinal] +=
            std::min(query_mult, static_cast<uint32_t>(posting.count));
      }
      g = end;
    }

    // Strong evidence: shared tokens, shared token synonym groups, equal
    // folded names, whole-name synonym groups.
    auto mark_strong = [&](std::span<const uint32_t> postings) {
      for (uint32_t ordinal : postings) {
        touch(ordinal);
        strong_[ordinal] = 1;
      }
    };
    auto mark_strong_bucket = [&](const std::vector<uint32_t>* postings) {
      if (postings != nullptr) mark_strong(*postings);
    };
    // Token ids and synonym groups were already resolved by the
    // lookup-only PrepareName above — the same dedup the index build posts
    // under, so retrieval can never disagree with the postings. Unknown
    // ids (tokens no repository element contains) post nothing, but their
    // synonym group may still retrieve aliases.
    AppendUniqueTokenGroupPairs(out->prepared, &query_tokens_);
    for (const auto& [token_id, group] : query_tokens_) {
      if (token_id != sim::kUnknownTokenId) {
        mark_strong(prepared_->TokenPostings(token_id));
      }
      if (group >= 0) {
        mark_strong_bucket(prepared_->TokenGroupPostings(group));
      }
    }
    mark_strong_bucket(prepared_->NameBucket(out->prepared.folded));
    if (out->prepared.name_group >= 0) {
      mark_strong_bucket(prepared_->NameGroupBucket(out->prepared.name_group));
    }

    // Ordinals are (schema, node)-ordered, so one sorted walk groups the
    // retrieved elements by schema.
    std::sort(touched_.begin(), touched_.end());
    const double qa = static_cast<double>(qgram_ids.size());
    out->hits.reserve(touched_.size());
    for (uint32_t ordinal : touched_) {
      Retrieved hit;
      hit.ordinal = ordinal;
      hit.strong = strong_[ordinal] != 0;
      const double denom =
          qa + static_cast<double>(prepared_->element(ordinal).trigram_count);
      hit.dice = denom > 0.0
                     ? 2.0 * static_cast<double>(shared_[ordinal]) / denom
                     : 0.0;
      out->hits.push_back(hit);
    }

    const size_t schema_count = prepared_->repo().schema_count();
    out->hit_offsets.assign(schema_count + 1, 0);
    size_t ti = 0;
    for (size_t si = 0; si < schema_count; ++si) {
      out->hit_offsets[si] = static_cast<uint32_t>(ti);
      const uint32_t end =
          prepared_->first_ordinal(static_cast<int32_t>(si)) +
          static_cast<uint32_t>(
              prepared_->repo().schema(static_cast<int32_t>(si)).size());
      while (ti < out->hits.size() && out->hits[ti].ordinal < end) ++ti;
    }
    out->hit_offsets[schema_count] = static_cast<uint32_t>(ti);

    // Reset the per-element accumulators by walking only the touched list.
    for (uint32_t ordinal : touched_) {
      shared_[ordinal] = 0;
      strong_[ordinal] = 0;
    }
  }

  /// \brief Scores one (position, schema) cell at `limit` and writes its
  /// entries and skip-bound. Idempotent and limit-monotone (a larger limit
  /// keeps a superset of candidates with a no-smaller bound); re-invoked by
  /// the adaptive path on escalation. Returns the number of candidates
  /// scored — the budget this call spent.
  size_t ScoreCell(const PositionRetrieval& retrieval,
                   sim::BlockScorer& scorer, const schema::SchemaNode& qnode,
                   int32_t schema_index, size_t limit,
                   std::vector<match::CandidateEntry>* cell_entries,
                   double* cell_skip_bound) {
    const schema::Schema& schema = prepared_->repo().schema(schema_index);
    const size_t schema_size = schema.size();
    const uint32_t first = prepared_->first_ordinal(schema_index);
    const uint32_t end = first + static_cast<uint32_t>(schema_size);
    const auto si = static_cast<size_t>(schema_index);

    cell_hits_.assign(
        retrieval.hits.begin() + retrieval.hit_offsets[si],
        retrieval.hits.begin() + retrieval.hit_offsets[si + 1]);

    // Scoring set: every strong hit (required for admissibility of the
    // synonym tiers, and they are the high-precision candidates anyway),
    // then trigram-only hits by descending Dice until `limit` entries.
    auto weak_begin =
        std::stable_partition(cell_hits_.begin(), cell_hits_.end(),
                              [](const Retrieved& r) { return r.strong; });
    std::sort(weak_begin, cell_hits_.end(),
              [](const Retrieved& a, const Retrieved& b) {
                if (a.dice != b.dice) return a.dice > b.dice;
                return a.ordinal < b.ordinal;
              });
    const size_t strong_count =
        static_cast<size_t>(weak_begin - cell_hits_.begin());
    const size_t weak_count = cell_hits_.size() - strong_count;
    const size_t weak_scored =
        strong_count >= limit ? 0 : std::min(weak_count, limit - strong_count);

    scored_ordinals_.clear();
    for (size_t i = 0; i < strong_count + weak_scored; ++i) {
      scored_ordinals_.push_back(cell_hits_[i].ordinal);
      in_list_[cell_hits_[i].ordinal - first] = 1;
    }

    // Pad to C with unretrieved elements: same declared type first, then
    // node order — deterministic and query-independent.
    if (scored_ordinals_.size() < limit && retrieval.type_bucket != nullptr) {
      auto it = std::lower_bound(retrieval.type_bucket->begin(),
                                 retrieval.type_bucket->end(), first);
      for (; it != retrieval.type_bucket->end() && *it < end &&
             scored_ordinals_.size() < limit;
           ++it) {
        if (in_list_[*it - first] == 0) {
          scored_ordinals_.push_back(*it);
          in_list_[*it - first] = 1;
        }
      }
    }
    for (uint32_t ordinal = first;
         ordinal < end && scored_ordinals_.size() < limit; ++ordinal) {
      if (in_list_[ordinal - first] == 0) {
        scored_ordinals_.push_back(ordinal);
        in_list_[ordinal - first] = 1;
      }
    }

    // Exact scoring — the same ComputeNodeCost over prepared names the
    // dense pool runs, so kept candidate costs are bit-identical to its.
    // The loop maintains the C cheapest (cost, node) in a max-heap; once
    // the list is full, the current C-th cost feeds the threshold-aware
    // kernel, which drops provably-worse candidates after its cheap
    // admissible bounds instead of scoring them in full. Dropped and
    // pruned candidates both contribute to the truncation tier of the
    // skip-bound: an exact cost when fully scored, an admissible lower
    // bound (> the C-th cost) when pruned — so the bound stays
    // admissible and, without pruning, bit-identical to sorting
    // everything and reading the (C+1)-th cost.
    entries_.clear();
    double truncation_bound = kInf;
    auto heap_before = [](const match::CandidateEntry& a,
                          const match::CandidateEntry& b) {
      if (a.cost != b.cost) return a.cost < b.cost;
      return a.node < b.node;  // max-heap on (cost, node)
    };
    for (uint32_t ordinal : scored_ordinals_) {
      const PreparedElement& element = prepared_->element(ordinal);
      const schema::SchemaNode& tnode = schema.node(element.node);
      if (entries_.size() < limit) {
        match::CandidateEntry entry;
        entry.node = element.node;
        entry.cost = match::ComputeNodeCost(scorer, qnode, tnode,
                                            element.name, *objective_);
        entries_.push_back(entry);
        std::push_heap(entries_.begin(), entries_.end(), heap_before);
        continue;
      }
      const match::CandidateEntry& top = entries_.front();
      double cost;
      // Cost ties at 1.0 break on node order through the min(1, ·) cap,
      // which the similarity-space cutoff cannot see — score those in
      // full.
      if (cutoff_enabled_ && top.cost < 1.0) {
        match::NodeCostCutoff scored = match::ComputeNodeCostWithCutoff(
            scorer, qnode, tnode, element.name, *objective_, top.cost);
        if (!scored.exact) {  // provably > C-th cost: cannot enter
          truncation_bound = std::min(truncation_bound, scored.cost);
          continue;
        }
        cost = scored.cost;
      } else {
        cost = match::ComputeNodeCost(scorer, qnode, tnode, element.name,
                                      *objective_);
      }
      if (cost < top.cost || (cost == top.cost && element.node < top.node)) {
        truncation_bound = std::min(truncation_bound, top.cost);
        std::pop_heap(entries_.begin(), entries_.end(), heap_before);
        entries_.back().node = element.node;
        entries_.back().cost = cost;
        std::push_heap(entries_.begin(), entries_.end(), heap_before);
      } else {
        truncation_bound = std::min(truncation_bound, cost);
      }
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const match::CandidateEntry& a,
                 const match::CandidateEntry& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.node < b.node;
              });

    const size_t scored_total = scored_ordinals_.size();
    double bound = truncation_bound;  // kInf when nothing was dropped
    if (weak_scored < weak_count) {
      // Retrieved but unscored: their exact Dice caps the trigram term.
      bound = std::min(
          bound, trigram_weight_share_ *
                     (1.0 - cell_hits_[strong_count + weak_scored].dice));
    }
    if (scored_total + (weak_count - weak_scored) < schema_size) {
      // Never-retrieved elements share no trigram with the query: D = 0.
      bound = std::min(bound, trigram_weight_share_);
    }
    *cell_entries = entries_;
    *cell_skip_bound = bound;
    // in_list_ was set exactly for the scored ordinals — reset only those.
    for (uint32_t ordinal : scored_ordinals_) {
      in_list_[ordinal - first] = 0;
    }
    return scored_total;
  }

 private:
  const PreparedRepository* prepared_;
  const match::ObjectiveOptions* objective_;
  double trigram_weight_share_;
  bool cutoff_enabled_;

  // Per-element evidence accumulators, reset between positions by walking
  // the touched list (never the full arrays).
  std::vector<uint32_t> shared_;
  std::vector<uint8_t> strong_;
  std::vector<uint32_t> touched_;
  // Deduplicated (token id, synonym group) pairs of the current position.
  std::vector<std::pair<uint32_t, int32_t>> query_tokens_;
  // Per-cell scoring scratch.
  std::vector<Retrieved> cell_hits_;
  std::vector<uint8_t> in_list_;
  std::vector<uint32_t> scored_ordinals_;
  std::vector<match::CandidateEntry> entries_;
};

}  // namespace

bool QueryCandidates::CellProvablyComplete(size_t pos, int32_t schema_index,
                                           double delta_threshold) const {
  const Cell& cell =
      cells_[pos * schema_count_ + static_cast<size_t>(schema_index)];
  return CellComplete(cell.skip_bound, weight_name_, normalizer_,
                      delta_threshold);
}

double QueryCandidates::ProvablyCompleteFraction(
    double delta_threshold) const {
  if (cells_.empty()) return 1.0;
  size_t complete = 0;
  for (const Cell& cell : cells_) {
    if (CellComplete(cell.skip_bound, weight_name_, normalizer_,
                     delta_threshold)) {
      ++complete;
    }
  }
  return static_cast<double>(complete) / static_cast<double>(cells_.size());
}

CandidateGenerator::CandidateGenerator(const PreparedRepository* prepared,
                                       match::ObjectiveOptions objective)
    : prepared_(prepared), objective_(std::move(objective)) {
  assert(prepared_ != nullptr);
  // Mirror ScoreFolded's weight clamping: negative weights count as 0.
  const sim::NameSimilarityOptions& name = objective_.name;
  double wl = std::max(0.0, name.weight_levenshtein);
  double wj = std::max(0.0, name.weight_jaro_winkler);
  double wt = std::max(0.0, name.weight_trigram);
  double wk = std::max(0.0, name.weight_token);
  double wsum = wl + wj + wt + wk;
  trigram_weight_share_ = wsum > 0.0 ? wt / wsum : 0.0;
}

Status CandidateGenerator::ValidateQuery(const schema::Schema& query) const {
  if (query.empty()) {
    return Status::InvalidArgument("query schema is empty");
  }
  SMB_RETURN_IF_ERROR(query.Validate());
  const sim::NameSimilarityOptions& index_name = prepared_->name_options();
  if (index_name.case_insensitive != objective_.name.case_insensitive ||
      index_name.synonyms != objective_.name.synonyms) {
    return Status::InvalidArgument(
        "candidate generation requires the objective's name options "
        "(folding, synonyms) to match the ones the index was built with");
  }
  return Status::OK();
}

void CandidateGenerator::FinalizeCounts(QueryCandidates* out) const {
  const schema::SchemaRepository& repo = prepared_->repo();
  out->generated_ = 0;
  out->skipped_ = 0;
  for (size_t pos = 0; pos < out->positions_; ++pos) {
    for (size_t si = 0; si < out->schema_count_; ++si) {
      const size_t listed =
          out->cells_[pos * out->schema_count_ + si].entries.size();
      out->generated_ += listed;
      out->skipped_ += repo.schema(static_cast<int32_t>(si)).size() - listed;
    }
  }
}

void CandidateGenerator::InitOutput(const schema::Schema& query,
                                    QueryCandidates* out) const {
  const size_t m = query.PreOrder().size();
  const size_t schema_count = prepared_->repo().schema_count();
  out->cells_.clear();
  out->cells_.resize(m * schema_count);
  out->positions_ = m;
  out->schema_count_ = schema_count;
  out->weight_name_ = objective_.weight_name;
  out->normalizer_ = objective_.weight_name * static_cast<double>(m);
  if (m > 1) {
    out->normalizer_ +=
        objective_.weight_structure * static_cast<double>(m - 1);
  }
  if (out->normalizer_ <= 0.0) out->normalizer_ = 1.0;
}

Result<QueryCandidates> CandidateGenerator::Generate(
    const schema::Schema& query, size_t limit) const {
  if (limit == 0) {
    return Status::InvalidArgument("candidate limit must be positive");
  }
  SMB_RETURN_IF_ERROR(ValidateQuery(query));

  const std::vector<schema::NodeId> preorder = query.PreOrder();
  const size_t m = preorder.size();
  const size_t schema_count = prepared_->repo().schema_count();

  QueryCandidates out;
  InitOutput(query, &out);
  out.limit_ = limit;

  GenerationEngine engine(prepared_, &objective_, trigram_weight_share_,
                          cutoff_enabled_);
  PositionRetrieval retrieval;
  for (size_t pos = 0; pos < m; ++pos) {
    const schema::SchemaNode& qnode = query.node(preorder[pos]);
    engine.Retrieve(qnode, &retrieval);
    // One scorer per query position: query-side setup (weights, PEQ
    // bitmask scatter) loads once and every candidate of every schema
    // scores through it.
    sim::BlockScorer scorer(retrieval.prepared, objective_.name);
    for (size_t si = 0; si < schema_count; ++si) {
      QueryCandidates::Cell& cell = out.cells_[pos * schema_count + si];
      engine.ScoreCell(retrieval, scorer, qnode, static_cast<int32_t>(si),
                       limit, &cell.entries, &cell.skip_bound);
    }
  }
  FinalizeCounts(&out);
  return out;
}

Result<QueryCandidates> CandidateGenerator::GenerateAdaptive(
    const schema::Schema& query, const AdaptiveCandidatePolicy& policy,
    double delta_threshold, AdaptiveGenerationStats* stats) const {
  if (policy.min_provable_completeness < 0.0 ||
      policy.min_provable_completeness > 1.0) {
    return Status::InvalidArgument(
        "min_provable_completeness must be in [0, 1]");
  }
  if (policy.initial_limit == 0) {
    return Status::InvalidArgument("initial_limit must be positive");
  }
  if (policy.growth_factor < 2) {
    return Status::InvalidArgument("growth_factor must be at least 2");
  }
  if (policy.max_limit != 0 && policy.max_limit < policy.initial_limit) {
    return Status::InvalidArgument(
        "max_limit must be 0 (unbounded) or at least initial_limit");
  }
  SMB_RETURN_IF_ERROR(ValidateQuery(query));

  const schema::SchemaRepository& repo = prepared_->repo();
  const std::vector<schema::NodeId> preorder = query.PreOrder();
  const size_t m = preorder.size();
  const size_t schema_count = repo.schema_count();
  const size_t total_cells = m * schema_count;

  QueryCandidates out;
  InitOutput(query, &out);

  AdaptiveGenerationStats local;
  local.cells_total = total_cells;
  if (total_cells == 0) {
    out.limit_ = policy.initial_limit;
    if (stats != nullptr) *stats = local;
    return out;
  }

  // Growing a cell past its schema size is pointless: the list already
  // covers every node (skip-bound +inf, always certified).
  auto cap_for = [&](size_t si) {
    const size_t schema_size = repo.schema(static_cast<int32_t>(si)).size();
    return policy.max_limit > 0 ? std::min(policy.max_limit, schema_size)
                                : schema_size;
  };

  GenerationEngine engine(prepared_, &objective_, trigram_weight_share_,
                          cutoff_enabled_);

  // Retrieval state is kept per position so escalation rounds only re-run
  // the (cheap, cutoff-pruned) scoring of the cells that need more budget.
  std::vector<PositionRetrieval> retrievals(m);
  std::vector<size_t> limits(total_cells, 0);
  std::vector<uint8_t> certified(total_cells, 0);
  std::vector<uint8_t> escalated(total_cells, 0);

  size_t certified_count = 0;
  auto note_certified = [&](size_t cell_index) {
    if (certified[cell_index] == 0 &&
        CellComplete(out.cells_[cell_index].skip_bound, out.weight_name_,
                     out.normalizer_, delta_threshold)) {
      certified[cell_index] = 1;
      ++certified_count;
    }
  };
  auto target_met = [&] {
    return static_cast<double>(certified_count) /
                   static_cast<double>(total_cells) +
               1e-12 >=
           policy.min_provable_completeness;
  };

  // Round 0: every cell at the initial limit.
  for (size_t pos = 0; pos < m; ++pos) {
    const schema::SchemaNode& qnode = query.node(preorder[pos]);
    engine.Retrieve(qnode, &retrievals[pos]);
    sim::BlockScorer scorer(retrievals[pos].prepared, objective_.name);
    for (size_t si = 0; si < schema_count; ++si) {
      const size_t cell_index = pos * schema_count + si;
      limits[cell_index] = policy.initial_limit;
      QueryCandidates::Cell& cell = out.cells_[cell_index];
      local.budget_spent += engine.ScoreCell(
          retrievals[pos], scorer, qnode, static_cast<int32_t>(si),
          policy.initial_limit, &cell.entries, &cell.skip_bound);
      note_certified(cell_index);
    }
  }

  // Escalation rounds: regenerate every uncertified, still-growable cell
  // at `growth_factor ×` its limit; stop as soon as the certified fraction
  // reaches the target (deterministic (position, schema) order) or no cell
  // can grow further. Terminates: every escalation strictly grows a limit
  // toward its finite cap.
  while (!target_met()) {
    bool any_escalated = false;
    for (size_t pos = 0; pos < m && !target_met(); ++pos) {
      bool row_has_work = false;
      for (size_t si = 0; si < schema_count; ++si) {
        const size_t cell_index = pos * schema_count + si;
        if (certified[cell_index] == 0 && limits[cell_index] < cap_for(si)) {
          row_has_work = true;
          break;
        }
      }
      if (!row_has_work) continue;
      const schema::SchemaNode& qnode = query.node(preorder[pos]);
      sim::BlockScorer scorer(retrievals[pos].prepared, objective_.name);
      for (size_t si = 0; si < schema_count && !target_met(); ++si) {
        const size_t cell_index = pos * schema_count + si;
        const size_t cap = cap_for(si);
        if (certified[cell_index] != 0 || limits[cell_index] >= cap) {
          continue;
        }
        const size_t next_limit =
            std::min(cap, limits[cell_index] * policy.growth_factor);
        QueryCandidates::Cell& cell = out.cells_[cell_index];
        local.budget_spent += engine.ScoreCell(
            retrievals[pos], scorer, qnode, static_cast<int32_t>(si),
            next_limit, &cell.entries, &cell.skip_bound);
        limits[cell_index] = next_limit;
        escalated[cell_index] = 1;
        any_escalated = true;
        note_certified(cell_index);
      }
    }
    if (!any_escalated) break;  // every uncertified cell is at its cap
    ++local.rounds;
  }

  std::map<size_t, uint64_t> distribution;
  size_t max_limit_used = 0;
  for (size_t cell_index = 0; cell_index < total_cells; ++cell_index) {
    max_limit_used = std::max(max_limit_used, limits[cell_index]);
    ++distribution[limits[cell_index]];
    if (escalated[cell_index] != 0) ++local.cells_escalated;
    if (certified[cell_index] == 0 &&
        limits[cell_index] >= cap_for(cell_index % schema_count)) {
      ++local.cells_at_cap;
    }
  }
  local.cells_certified = certified_count;
  local.achieved_completeness = static_cast<double>(certified_count) /
                                static_cast<double>(total_cells);
  local.final_limit_distribution.assign(distribution.begin(),
                                        distribution.end());

  out.limit_ = max_limit_used;
  FinalizeCounts(&out);
  if (stats != nullptr) *stats = std::move(local);
  return out;
}

}  // namespace smb::index
