#include "index/prepared_repository.h"

#include <algorithm>
#include <utility>

#include "sim/ngram.h"
#include "sim/synonyms.h"

namespace smb::index {

void AppendUniqueTokenGroupPairs(
    const sim::PreparedName& name,
    std::vector<std::pair<uint32_t, int32_t>>* out) {
  out->clear();
  for (size_t t = 0; t < name.token_ids.size(); ++t) {
    out->emplace_back(name.token_ids[t],
                      name.token_groups.empty() ? -1 : name.token_groups[t]);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

Result<PreparedRepository> PreparedRepository::Build(
    const schema::SchemaRepository& repo,
    const sim::NameSimilarityOptions& name_options) {
  PreparedRepository prepared;
  prepared.repo_ = &repo;
  prepared.name_options_ = name_options;
  prepared.elements_.reserve(repo.total_elements());
  prepared.first_ordinal_.reserve(repo.schema_count());

  // (token id, synonym group) pairs of the current element, deduplicated.
  std::vector<std::pair<uint32_t, int32_t>> unique_tokens;
  for (size_t si = 0; si < repo.schema_count(); ++si) {
    const auto schema_index = static_cast<int32_t>(si);
    const schema::Schema& schema = repo.schema(schema_index);
    SMB_RETURN_IF_ERROR(schema.Validate());
    prepared.first_ordinal_.push_back(
        static_cast<uint32_t>(prepared.elements_.size()));
    for (size_t n = 0; n < schema.size(); ++n) {
      const auto node_id = static_cast<schema::NodeId>(n);
      const schema::SchemaNode& node = schema.node(node_id);
      const auto ordinal = static_cast<uint32_t>(prepared.elements_.size());

      PreparedElement element;
      element.schema_index = schema_index;
      element.node = node_id;
      // Interning against the shared table makes every element's token ids
      // comparable to every query's lookup-only ids.
      element.name =
          sim::PrepareName(node.name, name_options, prepared.token_table_.get());
      element.trigram_count =
          static_cast<uint32_t>(element.name.gram_ids.size());

      // Trigram postings with multiplicities: gram ids are sorted, so runs
      // of equal ids give the per-gram count directly.
      const std::vector<uint32_t>& gram_ids = element.name.gram_ids;
      for (size_t g = 0; g < gram_ids.size();) {
        size_t end = g + 1;
        while (end < gram_ids.size() && gram_ids[end] == gram_ids[g]) ++end;
        prepared.trigram_postings_[gram_ids[g]].push_back(
            TrigramPosting{ordinal, static_cast<uint16_t>(end - g)});
        prepared.stats_.trigram_posting_entries++;
        g = end;
      }

      // Token postings (deduplicated per element) plus synonym-group
      // postings so dictionary aliases retrieve each other. Every token of
      // the element was interned above, so its id indexes the dense table.
      AppendUniqueTokenGroupPairs(element.name, &unique_tokens);
      for (const auto& [token_id, group] : unique_tokens) {
        if (token_id >= prepared.token_postings_.size()) {
          prepared.token_postings_.resize(token_id + 1);
        }
        prepared.token_postings_[token_id].push_back(ordinal);
        prepared.stats_.token_posting_entries++;
        if (group >= 0) {
          auto& postings = prepared.token_group_postings_[group];
          if (postings.empty() || postings.back() != ordinal) {
            postings.push_back(ordinal);
          }
        }
      }

      prepared.name_buckets_[element.name.folded].push_back(ordinal);
      if (element.name.name_group >= 0) {
        prepared.name_group_buckets_[element.name.name_group].push_back(
            ordinal);
      }
      prepared.type_buckets_[node.type].push_back(ordinal);

      prepared.elements_.push_back(std::move(element));
    }
  }
  prepared.stats_.element_count = prepared.elements_.size();
  prepared.stats_.distinct_tokens = prepared.token_table_->size();
  prepared.stats_.distinct_trigrams = prepared.trigram_postings_.size();
  prepared.stats_.distinct_types = prepared.type_buckets_.size();
  return prepared;
}

const std::vector<uint32_t>* PreparedRepository::TokenPostings(
    std::string_view token) const {
  return TokenPostings(token_table_->Lookup(token));
}

const std::vector<uint32_t>* PreparedRepository::TokenPostings(
    uint32_t token_id) const {
  if (token_id >= token_postings_.size()) return nullptr;
  const std::vector<uint32_t>& postings = token_postings_[token_id];
  return postings.empty() ? nullptr : &postings;
}

const std::vector<uint32_t>* PreparedRepository::TokenGroupPostings(
    int group) const {
  auto it = token_group_postings_.find(group);
  return it == token_group_postings_.end() ? nullptr : &it->second;
}

const std::vector<TrigramPosting>* PreparedRepository::TrigramPostings(
    std::string_view gram) const {
  if (gram.size() != 3) return nullptr;
  return TrigramPostings(sim::GramTable::Pack(gram));
}

const std::vector<TrigramPosting>* PreparedRepository::TrigramPostings(
    uint32_t gram_id) const {
  auto it = trigram_postings_.find(gram_id);
  return it == trigram_postings_.end() ? nullptr : &it->second;
}

const std::vector<uint32_t>* PreparedRepository::NameBucket(
    std::string_view folded) const {
  return Find(name_buckets_, std::string(folded));
}

const std::vector<uint32_t>* PreparedRepository::NameGroupBucket(
    int group) const {
  auto it = name_group_buckets_.find(group);
  return it == name_group_buckets_.end() ? nullptr : &it->second;
}

const std::vector<uint32_t>* PreparedRepository::TypeBucket(
    std::string_view type) const {
  return Find(type_buckets_, std::string(type));
}

}  // namespace smb::index
