#include "index/prepared_repository.h"

#include <algorithm>

#include "sim/ngram.h"
#include "sim/synonyms.h"

namespace smb::index {

std::vector<std::string> UniqueSortedTokens(
    const std::vector<std::string>& tokens) {
  std::vector<std::string> unique = tokens;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  return unique;
}

Result<PreparedRepository> PreparedRepository::Build(
    const schema::SchemaRepository& repo,
    const sim::NameSimilarityOptions& name_options) {
  PreparedRepository prepared;
  prepared.repo_ = &repo;
  prepared.name_options_ = name_options;
  prepared.elements_.reserve(repo.total_elements());
  prepared.first_ordinal_.reserve(repo.schema_count());

  const sim::SynonymTable* synonyms = name_options.synonyms;
  for (size_t si = 0; si < repo.schema_count(); ++si) {
    const auto schema_index = static_cast<int32_t>(si);
    const schema::Schema& schema = repo.schema(schema_index);
    SMB_RETURN_IF_ERROR(schema.Validate());
    prepared.first_ordinal_.push_back(
        static_cast<uint32_t>(prepared.elements_.size()));
    for (size_t n = 0; n < schema.size(); ++n) {
      const auto node_id = static_cast<schema::NodeId>(n);
      const schema::SchemaNode& node = schema.node(node_id);
      const auto ordinal = static_cast<uint32_t>(prepared.elements_.size());

      PreparedElement element;
      element.schema_index = schema_index;
      element.node = node_id;
      element.name = sim::PrepareName(node.name, name_options);

      // Trigram postings with multiplicities: grams come back sorted, so
      // runs of equal grams give the per-gram count directly.
      std::vector<std::string> grams =
          sim::ExtractNgrams(element.name.folded, 3);
      element.trigram_count = static_cast<uint32_t>(grams.size());
      for (size_t g = 0; g < grams.size();) {
        size_t end = g + 1;
        while (end < grams.size() && grams[end] == grams[g]) ++end;
        prepared.trigram_postings_[grams[g]].push_back(
            TrigramPosting{ordinal, static_cast<uint16_t>(end - g)});
        prepared.stats_.trigram_posting_entries++;
        g = end;
      }

      // Token postings (deduplicated per element) plus synonym-group
      // postings so dictionary aliases retrieve each other.
      for (const std::string& token : UniqueSortedTokens(element.name.tokens)) {
        prepared.token_postings_[token].push_back(ordinal);
        prepared.stats_.token_posting_entries++;
        if (synonyms != nullptr) {
          int group = synonyms->GroupOf(token);
          if (group >= 0) {
            auto& postings = prepared.token_group_postings_[group];
            if (postings.empty() || postings.back() != ordinal) {
              postings.push_back(ordinal);
            }
          }
        }
      }

      prepared.name_buckets_[element.name.folded].push_back(ordinal);
      if (synonyms != nullptr) {
        int group = synonyms->GroupOf(element.name.folded);
        if (group >= 0) {
          prepared.name_group_buckets_[group].push_back(ordinal);
        }
      }
      prepared.type_buckets_[node.type].push_back(ordinal);

      prepared.elements_.push_back(std::move(element));
    }
  }

  prepared.stats_.element_count = prepared.elements_.size();
  prepared.stats_.distinct_tokens = prepared.token_postings_.size();
  prepared.stats_.distinct_trigrams = prepared.trigram_postings_.size();
  prepared.stats_.distinct_types = prepared.type_buckets_.size();
  return prepared;
}

const std::vector<uint32_t>* PreparedRepository::TokenPostings(
    std::string_view token) const {
  return Find(token_postings_, std::string(token));
}

const std::vector<uint32_t>* PreparedRepository::TokenGroupPostings(
    int group) const {
  auto it = token_group_postings_.find(group);
  return it == token_group_postings_.end() ? nullptr : &it->second;
}

const std::vector<TrigramPosting>* PreparedRepository::TrigramPostings(
    std::string_view gram) const {
  return Find(trigram_postings_, std::string(gram));
}

const std::vector<uint32_t>* PreparedRepository::NameBucket(
    std::string_view folded) const {
  return Find(name_buckets_, std::string(folded));
}

const std::vector<uint32_t>* PreparedRepository::NameGroupBucket(
    int group) const {
  auto it = name_group_buckets_.find(group);
  return it == name_group_buckets_.end() ? nullptr : &it->second;
}

const std::vector<uint32_t>* PreparedRepository::TypeBucket(
    std::string_view type) const {
  return Find(type_buckets_, std::string(type));
}

}  // namespace smb::index
