#include "index/prepared_repository.h"

/// \file prepared_repository.cc
/// \brief One-pass index build: folds/tokenizes every element name into
/// the kernel form, posts tokens, synonym groups and multiset trigrams,
/// and freezes the postings into CSR arrays (see prepared_repository.h
/// for the retrieval model and the admissibility argument).

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/ngram.h"
#include "sim/synonyms.h"

namespace smb::index {

void AppendUniqueTokenGroupPairs(
    const sim::PreparedName& name,
    std::vector<std::pair<uint32_t, int32_t>>* out) {
  out->clear();
  for (size_t t = 0; t < name.token_ids.size(); ++t) {
    out->emplace_back(name.token_ids[t],
                      name.token_groups.empty() ? -1 : name.token_groups[t]);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

Result<PreparedRepository> PreparedRepository::Build(
    const schema::SchemaRepository& repo,
    const sim::NameSimilarityOptions& name_options) {
  PreparedRepository prepared;
  prepared.repo_ = &repo;
  prepared.name_options_ = name_options;
  prepared.elements_.reserve(repo.total_elements());
  prepared.first_ordinal_.reserve(repo.schema_count());

  // Postings accumulate into growable per-key containers and are flattened
  // into the CSR arrays once every element is known.
  std::vector<std::vector<uint32_t>> token_postings;
  std::unordered_map<uint32_t, std::vector<TrigramPosting>> trigram_postings;

  // (token id, synonym group) pairs of the current element, deduplicated.
  std::vector<std::pair<uint32_t, int32_t>> unique_tokens;
  for (size_t si = 0; si < repo.schema_count(); ++si) {
    const auto schema_index = static_cast<int32_t>(si);
    const schema::Schema& schema = repo.schema(schema_index);
    SMB_RETURN_IF_ERROR(schema.Validate());
    prepared.first_ordinal_.push_back(
        static_cast<uint32_t>(prepared.elements_.size()));
    for (size_t n = 0; n < schema.size(); ++n) {
      const auto node_id = static_cast<schema::NodeId>(n);
      const schema::SchemaNode& node = schema.node(node_id);
      const auto ordinal = static_cast<uint32_t>(prepared.elements_.size());

      PreparedElement element;
      element.schema_index = schema_index;
      element.node = node_id;
      // Interning against the shared table makes every element's token ids
      // comparable to every query's lookup-only ids.
      element.name =
          sim::PrepareName(node.name, name_options, prepared.token_table_.get());
      element.trigram_count =
          static_cast<uint32_t>(element.name.gram_ids.size());

      // Trigram postings with multiplicities: gram ids are sorted, so runs
      // of equal ids give the per-gram count directly.
      const auto& gram_ids = element.name.gram_ids;
      for (size_t g = 0; g < gram_ids.size();) {
        size_t end = g + 1;
        while (end < gram_ids.size() && gram_ids[end] == gram_ids[g]) ++end;
        trigram_postings[gram_ids[g]].push_back(
            TrigramPosting{ordinal, static_cast<uint16_t>(end - g)});
        prepared.stats_.trigram_posting_entries++;
        g = end;
      }

      // Token postings (deduplicated per element) plus synonym-group
      // postings so dictionary aliases retrieve each other. Every token of
      // the element was interned above, so its id indexes the dense table.
      AppendUniqueTokenGroupPairs(element.name, &unique_tokens);
      for (const auto& [token_id, group] : unique_tokens) {
        if (token_id >= token_postings.size()) {
          token_postings.resize(token_id + 1);
        }
        token_postings[token_id].push_back(ordinal);
        prepared.stats_.token_posting_entries++;
        if (group >= 0) {
          auto& postings = prepared.token_group_postings_[group];
          if (postings.empty() || postings.back() != ordinal) {
            postings.push_back(ordinal);
          }
        }
      }

      prepared.name_buckets_[element.name.folded].push_back(ordinal);
      if (element.name.name_group >= 0) {
        prepared.name_group_buckets_[element.name.name_group].push_back(
            ordinal);
      }
      prepared.type_buckets_[node.type].push_back(ordinal);

      prepared.elements_.push_back(std::move(element));
    }
  }
  // Flatten the accumulated postings into the CSR arrays. The trigram
  // keys are collected from the hash map and sorted explicitly — the
  // binary-search lookup requires ascending keys.
  prepared.token_posting_offsets_.reserve(token_postings.size() + 1);
  prepared.token_posting_entries_.reserve(
      prepared.stats_.token_posting_entries);
  prepared.token_posting_offsets_.push_back(0);
  for (const std::vector<uint32_t>& postings : token_postings) {
    prepared.token_posting_entries_.insert(
        prepared.token_posting_entries_.end(), postings.begin(),
        postings.end());
    prepared.token_posting_offsets_.push_back(
        static_cast<uint32_t>(prepared.token_posting_entries_.size()));
  }
  prepared.trigram_keys_.reserve(trigram_postings.size());
  for (const auto& [gram_id, postings] : trigram_postings) {
    prepared.trigram_keys_.push_back(gram_id);
  }
  std::sort(prepared.trigram_keys_.begin(), prepared.trigram_keys_.end());
  prepared.trigram_offsets_.reserve(trigram_postings.size() + 1);
  prepared.trigram_entries_.reserve(prepared.stats_.trigram_posting_entries);
  prepared.trigram_offsets_.push_back(0);
  for (uint32_t gram_id : prepared.trigram_keys_) {
    const std::vector<TrigramPosting>& postings =
        trigram_postings.at(gram_id);
    prepared.trigram_entries_.insert(prepared.trigram_entries_.end(),
                                     postings.begin(), postings.end());
    prepared.trigram_offsets_.push_back(
        static_cast<uint32_t>(prepared.trigram_entries_.size()));
  }

  prepared.stats_.element_count = prepared.elements_.size();
  prepared.stats_.distinct_tokens = prepared.token_table_->size();
  prepared.stats_.distinct_trigrams = prepared.trigram_keys_.size();
  prepared.stats_.distinct_types = prepared.type_buckets_.size();
  prepared.BuildTrigramBlocks();
  return prepared;
}

void PreparedRepository::BuildTrigramBlocks() {
  const size_t list_count = trigram_keys_.size();
  trigram_block_offsets_.clear();
  trigram_block_last_ordinals_.clear();
  trigram_block_max_counts_.clear();
  trigram_block_tc_floors_.clear();
  trigram_block_offsets_.reserve(list_count + 1);
  trigram_block_offsets_.push_back(0);
  for (size_t li = 0; li < list_count; ++li) {
    const size_t begin = trigram_offsets_[li];
    const size_t end = trigram_offsets_[li + 1];
    for (size_t b = begin; b < end; b += kTrigramBlockSize) {
      const size_t block_end = std::min(end, b + kTrigramBlockSize);
      uint16_t max_count = 0;
      uint32_t tc_floor = std::numeric_limits<uint32_t>::max();
      for (size_t e = b; e < block_end; ++e) {
        const TrigramPosting& posting = trigram_entries_[e];
        max_count = std::max(max_count, posting.count);
        tc_floor =
            std::min(tc_floor, elements_[posting.ordinal].trigram_count);
      }
      trigram_block_last_ordinals_.push_back(
          trigram_entries_[block_end - 1].ordinal);
      trigram_block_max_counts_.push_back(max_count);
      trigram_block_tc_floors_.push_back(tc_floor);
    }
    trigram_block_offsets_.push_back(
        static_cast<uint32_t>(trigram_block_last_ordinals_.size()));
  }
}

std::span<const uint32_t> PreparedRepository::TokenPostings(
    std::string_view token) const {
  return TokenPostings(token_table_->Lookup(token));
}

std::span<const uint32_t> PreparedRepository::TokenPostings(
    uint32_t token_id) const {
  // 64-bit compare: kUnknownTokenId + 1 must not wrap into a valid slot.
  if (size_t{token_id} + 1 >= token_posting_offsets_.size()) return {};
  return {token_posting_entries_.data() + token_posting_offsets_[token_id],
          token_posting_entries_.data() + token_posting_offsets_[token_id + 1]};
}

const std::vector<uint32_t>* PreparedRepository::TokenGroupPostings(
    int group) const {
  auto it = token_group_postings_.find(group);
  return it == token_group_postings_.end() ? nullptr : &it->second;
}

std::span<const TrigramPosting> PreparedRepository::TrigramPostings(
    std::string_view gram) const {
  if (gram.size() != 3) return {};
  return TrigramPostings(sim::GramTable::Pack(gram));
}

std::span<const TrigramPosting> PreparedRepository::TrigramPostings(
    uint32_t gram_id) const {
  const int32_t slot = TrigramListIndex(gram_id);
  return slot < 0 ? std::span<const TrigramPosting>{}
                  : TrigramListPostings(slot);
}

int32_t PreparedRepository::TrigramListIndex(uint32_t gram_id) const {
  auto it =
      std::lower_bound(trigram_keys_.begin(), trigram_keys_.end(), gram_id);
  if (it == trigram_keys_.end() || *it != gram_id) return -1;
  return static_cast<int32_t>(it - trigram_keys_.begin());
}

std::span<const TrigramPosting> PreparedRepository::TrigramListPostings(
    int32_t list_index) const {
  const auto slot = static_cast<size_t>(list_index);
  return {trigram_entries_.data() + trigram_offsets_[slot],
          trigram_entries_.data() + trigram_offsets_[slot + 1]};
}

TrigramBlockSpans PreparedRepository::TrigramBlocks(
    int32_t list_index) const {
  const auto slot = static_cast<size_t>(list_index);
  const size_t begin = trigram_block_offsets_[slot];
  const size_t end = trigram_block_offsets_[slot + 1];
  return {
      std::span(trigram_block_last_ordinals_).subspan(begin, end - begin),
      std::span(trigram_block_max_counts_).subspan(begin, end - begin),
      std::span(trigram_block_tc_floors_).subspan(begin, end - begin),
  };
}

const std::vector<uint32_t>* PreparedRepository::NameBucket(
    std::string_view folded) const {
  return Find(name_buckets_, std::string(folded));
}

const std::vector<uint32_t>* PreparedRepository::NameGroupBucket(
    int group) const {
  auto it = name_group_buckets_.find(group);
  return it == name_group_buckets_.end() ? nullptr : &it->second;
}

const std::vector<uint32_t>* PreparedRepository::TypeBucket(
    std::string_view type) const {
  return Find(type_buckets_, std::string(type));
}

}  // namespace smb::index
