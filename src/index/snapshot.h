#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "index/prepared_repository.h"
#include "schema/repository.h"
#include "sim/name_similarity.h"

/// \file snapshot.h
/// \brief Versioned binary persistence for `PreparedRepository`.
///
/// The index is query-independent, so the "prepare once, serve many" story
/// only completes when the prepared form survives the process: a snapshot
/// saves everything `PreparedRepository::Build` computes — prepared names
/// (folded form, interned gram/token ids, synonym groups, PEQ bitmasks),
/// the shared `TokenTable`, every posting list and bucket, and the build
/// stats — so a later process loads in one pass instead of re-deriving it
/// all from the schemas.
///
/// **Guarantees.**
///  * *Bit-identity*: a loaded index contains byte-for-byte the same
///    prepared names and postings as the freshly built one, so every score,
///    candidate list and match answer derived from it is bit-identical to
///    the in-memory path (the snapshot stores no floating-point state at
///    all — scores are recomputed from integer/string payloads by the same
///    kernel).
///  * *Fail-closed loading*: the fixed-size header carries a magic tag, a
///    format version, a fingerprint of the scorer options the index was
///    built with, a fingerprint of the source repository, and an FNV-1a
///    checksum of the body. A snapshot that is truncated, corrupted,
///    version-skewed, built under different options (folding, weights,
///    synonym-table content) or over different schemas is rejected with an
///    actionable error — it can never load into a silently wrong index.
///
/// File layout (all integers little-endian, see io/binary_io.h):
///
/// \code
/// magic "SMBIDX1\n" | u32 version | u64 options_fp | u64 repo_fp
///   | u64 body_size | u64 body_checksum | body (body_size bytes)
/// \endcode
///
/// The body is written with sorted map keys, so saving the same index twice
/// produces identical files (and save → load → save is byte-stable).

namespace smb::index {

/// Format version this binary writes (v2: v1 plus the block-max trigram
/// posting metadata the WAND traversal skips against).
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// Oldest format version this binary still reads. v1 files lack the
/// block-max arrays; the loader rebuilds them from the postings, so a v1
/// load is bit-identical to a v2 load of the same index.
inline constexpr uint32_t kSnapshotMinFormatVersion = 1;

/// 8-byte magic prefix of every snapshot file.
inline constexpr std::string_view kSnapshotMagic = "SMBIDX1\n";

/// \brief Serializes `prepared` to the snapshot wire format (header+body)
/// at the current `kSnapshotFormatVersion`.
std::string EncodeSnapshot(const PreparedRepository& prepared);

/// \brief `EncodeSnapshot` at an explicit format version in
/// [`kSnapshotMinFormatVersion`, `kSnapshotFormatVersion`] — the
/// back-compat hook (old-version files for loader tests, or writing for a
/// reader that has not been updated yet). Rejects versions this binary
/// does not write.
Result<std::string> EncodeSnapshotForVersion(
    const PreparedRepository& prepared, uint32_t format_version);

/// \brief Decodes a snapshot against the repository and scorer options the
/// caller is about to match with. Rejects (with `kParseError` /
/// `kFailedPrecondition`) anything that is not a well-formed snapshot of
/// exactly this repository under exactly these options; the returned index
/// references `repo` and `name_options.synonyms`, which must outlive it.
///
/// The element payload is chunked on the wire, so `num_threads > 1`
/// decodes chunks on a worker pool (0 = hardware concurrency). The result
/// is identical for every thread count.
Result<PreparedRepository> DecodeSnapshot(
    std::string_view bytes, const schema::SchemaRepository& repo,
    const sim::NameSimilarityOptions& name_options, size_t num_threads = 1);

/// \brief `EncodeSnapshot` to a file, crash-safely: temp file + fsync +
/// atomic rename (io::WriteBinaryFileAtomic). A previous snapshot at
/// `path` is preserved as `path + ".bak"` — a crash or I/O failure at any
/// point leaves either the old snapshot (at `path` or `path.bak`) or the
/// complete new one visible, never a torn file.
Status SaveSnapshot(const PreparedRepository& prepared,
                    const std::string& path);

/// \brief What `LoadSnapshot` actually did, for callers that surface
/// degraded-mode warnings (the serve CLI logs `report.warning`).
struct SnapshotLoadReport {
  /// True when `path` was missing/corrupt and `path + ".bak"` loaded.
  bool used_backup = false;
  /// Human-readable degradation note, empty on a clean primary load.
  std::string warning;
};

/// \brief `DecodeSnapshot` from a file. A missing file (with no backup)
/// yields `kNotFound` (so callers can fall back to Build-then-Save). When
/// `path` is missing or fails to load (crash window between SaveSnapshot's
/// renames, torn write, corruption, I/O error) and a sibling
/// `path + ".bak"` loads cleanly, the backup is returned with
/// `report->used_backup` set and the primary's error in `report->warning`
/// — stale-but-valid data is never returned unannounced. With no usable
/// backup every non-missing failure is a hard rejection.
Result<PreparedRepository> LoadSnapshot(
    const std::string& path, const schema::SchemaRepository& repo,
    const sim::NameSimilarityOptions& name_options, size_t num_threads = 1,
    SnapshotLoadReport* report = nullptr);

}  // namespace smb::index
