#include "eval/answer_set_io.h"

#include "common/strings.h"
#include "io/csv.h"

/// \file answer_set_io.cc
/// \brief CSV reader/writer for answer sets and ground-truth judgments.

namespace smb::eval {

namespace {

std::string TargetsToField(const std::vector<schema::NodeId>& targets) {
  std::string out;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(targets[i]);
  }
  return out;
}

Result<std::vector<schema::NodeId>> FieldToTargets(std::string_view field) {
  std::vector<schema::NodeId> targets;
  for (const std::string& part : Split(field, ';')) {
    SMB_ASSIGN_OR_RETURN(uint64_t value, io::ParseUint(part));
    if (value > static_cast<uint64_t>(INT32_MAX)) {
      return Status::ParseError("target id out of range: " + part);
    }
    targets.push_back(static_cast<schema::NodeId>(value));
  }
  if (targets.empty()) {
    return Status::ParseError("empty targets field");
  }
  return targets;
}

}  // namespace

std::string WriteAnswerSetCsv(const match::AnswerSet& answers) {
  io::CsvDocument doc;
  doc.metadata.emplace_back("matchbounds", "answer_set");
  doc.metadata.emplace_back("count", std::to_string(answers.size()));
  doc.header = {"schema_index", "targets", "delta"};
  for (const auto& m : answers.mappings()) {
    doc.rows.push_back({std::to_string(m.schema_index),
                        TargetsToField(m.targets),
                        StrFormat("%.17g", m.delta)});
  }
  return io::WriteCsv(doc);
}

Result<match::AnswerSet> ReadAnswerSetCsv(std::string_view text) {
  SMB_ASSIGN_OR_RETURN(io::CsvDocument doc, io::ParseCsv(text));
  if (doc.GetMeta("matchbounds") != "answer_set") {
    return Status::InvalidArgument(
        "not an answer set file (missing '#matchbounds=answer_set')");
  }
  int schema_col = doc.ColumnIndex("schema_index");
  int targets_col = doc.ColumnIndex("targets");
  int delta_col = doc.ColumnIndex("delta");
  if (schema_col < 0 || targets_col < 0 || delta_col < 0) {
    return Status::ParseError(
        "answer set CSV must have schema_index, targets and delta columns");
  }
  match::AnswerSet answers;
  for (size_t r = 0; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    match::Mapping m;
    SMB_ASSIGN_OR_RETURN(
        uint64_t schema_index,
        io::ParseUint(row[static_cast<size_t>(schema_col)]));
    m.schema_index = static_cast<int32_t>(schema_index);
    SMB_ASSIGN_OR_RETURN(m.targets,
                         FieldToTargets(row[static_cast<size_t>(targets_col)]));
    SMB_ASSIGN_OR_RETURN(m.delta,
                         io::ParseDouble(row[static_cast<size_t>(delta_col)]));
    if (m.delta < 0.0) {
      return Status::ParseError(StrFormat("row %zu: negative delta", r + 1));
    }
    answers.Add(std::move(m));
  }
  answers.Finalize();
  return answers;
}

std::string WriteGroundTruthCsv(const eval::GroundTruth& truth,
                                const std::vector<match::Mapping::Key>& keys) {
  io::CsvDocument doc;
  doc.metadata.emplace_back("matchbounds", "ground_truth");
  doc.metadata.emplace_back("count", std::to_string(truth.size()));
  doc.header = {"schema_index", "targets"};
  for (const auto& key : keys) {
    if (!truth.Contains(key)) continue;  // keys must describe the truth
    doc.rows.push_back(
        {std::to_string(key.schema_index), TargetsToField(key.targets)});
  }
  return io::WriteCsv(doc);
}

Result<eval::GroundTruth> ReadGroundTruthCsv(std::string_view text) {
  SMB_ASSIGN_OR_RETURN(io::CsvDocument doc, io::ParseCsv(text));
  if (doc.GetMeta("matchbounds") != "ground_truth") {
    return Status::InvalidArgument(
        "not a ground truth file (missing '#matchbounds=ground_truth')");
  }
  int schema_col = doc.ColumnIndex("schema_index");
  int targets_col = doc.ColumnIndex("targets");
  if (schema_col < 0 || targets_col < 0) {
    return Status::ParseError(
        "ground truth CSV must have schema_index and targets columns");
  }
  eval::GroundTruth truth;
  for (const auto& row : doc.rows) {
    match::Mapping::Key key;
    SMB_ASSIGN_OR_RETURN(
        uint64_t schema_index,
        io::ParseUint(row[static_cast<size_t>(schema_col)]));
    key.schema_index = static_cast<int32_t>(schema_index);
    SMB_ASSIGN_OR_RETURN(key.targets,
                         FieldToTargets(row[static_cast<size_t>(targets_col)]));
    truth.AddCorrect(std::move(key));
  }
  return truth;
}

Status WriteAnswerSetFile(const std::string& path,
                          const match::AnswerSet& answers) {
  return io::WriteTextFile(path, WriteAnswerSetCsv(answers));
}

Result<match::AnswerSet> ReadAnswerSetFile(const std::string& path) {
  SMB_ASSIGN_OR_RETURN(std::string content, io::ReadTextFile(path));
  auto result = ReadAnswerSetCsv(content);
  if (!result.ok()) return result.status().WithContext("in " + path);
  return result;
}

}  // namespace smb::eval
