#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "eval/ground_truth.h"
#include "match/answer_set.h"

/// \file answer_set_io.h
/// \brief CSV persistence for answer sets and ground truth.
///
/// Enables the decoupled workflow of the paper: run the matchers where the
/// data lives, dump the ranked answers, and compute effectiveness bounds
/// elsewhere (the bounds need only these files).
///
/// Answer set format:
/// \code
/// #matchbounds=answer_set
/// schema_index,targets,delta
/// 12,3;7;8,0.125
/// \endcode
/// Ground truth format: the same without the delta column
/// (`#matchbounds=ground_truth`).

namespace smb::eval {

/// Serializes a finalized answer set.
std::string WriteAnswerSetCsv(const match::AnswerSet& answers);

/// Parses an answer set (finalizes it; re-ranks by Δ).
Result<match::AnswerSet> ReadAnswerSetCsv(std::string_view text);

/// Serializes a ground truth.
std::string WriteGroundTruthCsv(const eval::GroundTruth& truth,
                                const std::vector<match::Mapping::Key>& keys);

/// Parses a ground truth.
Result<eval::GroundTruth> ReadGroundTruthCsv(std::string_view text);

/// \name File variants.
/// @{
Status WriteAnswerSetFile(const std::string& path,
                          const match::AnswerSet& answers);
Result<match::AnswerSet> ReadAnswerSetFile(const std::string& path);
/// @}

}  // namespace smb::eval
