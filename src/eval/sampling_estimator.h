#pragma once

#include <functional>

#include "common/result.h"
#include "common/rng.h"
#include "match/answer_set.h"

/// \file sampling_estimator.h
/// \brief Precision estimation from a judged random sample.
///
/// The conventional alternative to the bounds technique: pay a small human
/// budget to judge a uniform sample of the improved system's answers and
/// *estimate* its precision with a confidence interval. The paper positions
/// its bounds as complementary — use case (3) in §1 is "assess the accuracy
/// of an effectiveness estimate acquired using other validation
/// techniques". `bench/ablation_estimate_vs_bounds` puts the two side by
/// side.

namespace smb::eval {

/// \brief A sampled precision estimate with a Wilson score interval.
struct PrecisionEstimate {
  /// Answers actually judged (≤ requested budget).
  size_t sample_size = 0;
  /// Correct among the judged.
  size_t sample_correct = 0;
  /// Point estimate `sample_correct / sample_size`.
  double precision = 0.0;
  /// Wilson score interval at the requested confidence.
  double ci_low = 0.0;
  double ci_high = 1.0;
};

/// \brief Judges a uniform random sample of `answers` (up to `budget`
/// judgments) with `oracle` and estimates the precision of the whole set.
///
/// `z` is the normal quantile for the interval (1.96 ≈ 95%). Fails on an
/// empty answer set, a zero budget, or a missing oracle/rng.
Result<PrecisionEstimate> EstimatePrecisionBySampling(
    const match::AnswerSet& answers,
    const std::function<bool(const match::Mapping&)>& oracle, size_t budget,
    Rng* rng, double z = 1.96);

/// \brief Same, restricted to the answers with Δ ≤ `threshold`.
Result<PrecisionEstimate> EstimatePrecisionBySampling(
    const match::AnswerSet& answers,
    const std::function<bool(const match::Mapping&)>& oracle,
    double threshold, size_t budget, Rng* rng, double z = 1.96);

}  // namespace smb::eval
