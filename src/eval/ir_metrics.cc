#include "eval/ir_metrics.h"

#include <algorithm>

/// \file ir_metrics.cc
/// \brief Precision/recall/F at k over judged answer lists.

namespace smb::eval {

double AveragePrecision(const match::AnswerSet& answers,
                        const GroundTruth& truth) {
  if (truth.empty()) return 0.0;
  size_t correct_so_far = 0;
  double sum = 0.0;
  for (size_t rank = 0; rank < answers.size(); ++rank) {
    if (truth.Contains(answers.mappings()[rank])) {
      ++correct_so_far;
      sum += static_cast<double>(correct_so_far) /
             static_cast<double>(rank + 1);
    }
  }
  return sum / static_cast<double>(truth.size());
}

double PrecisionAtN(const match::AnswerSet& answers, const GroundTruth& truth,
                    size_t n) {
  n = std::min(n, answers.size());
  if (n == 0) return 1.0;
  size_t correct = 0;
  for (size_t rank = 0; rank < n; ++rank) {
    if (truth.Contains(answers.mappings()[rank])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double RPrecision(const match::AnswerSet& answers, const GroundTruth& truth) {
  if (truth.empty()) return 1.0;
  return PrecisionAtN(answers, truth, truth.size());
}

double BPref(const match::AnswerSet& answers, const GroundTruth& truth,
             const GroundTruth& judged_wrong) {
  if (truth.empty()) return 0.0;
  const double h = static_cast<double>(truth.size());
  const double w = static_cast<double>(judged_wrong.size());
  const double denom = std::min(h, w);
  double sum = 0.0;
  size_t wrong_above = 0;
  for (const auto& m : answers.mappings()) {
    if (truth.Contains(m)) {
      if (denom <= 0.0) {
        sum += 1.0;  // no judged-wrong answers: nothing can rank above
      } else {
        sum += 1.0 - std::min(static_cast<double>(wrong_above), denom) / denom;
      }
    } else if (judged_wrong.Contains(m)) {
      ++wrong_above;
    }
    // Unjudged answers are ignored entirely (the point of bpref).
  }
  return sum / h;
}

double BreakEvenPoint(const match::AnswerSet& answers,
                      const GroundTruth& truth) {
  if (truth.empty()) return 0.0;
  double best = 0.0;
  size_t correct = 0;
  for (size_t rank = 0; rank < answers.size(); ++rank) {
    if (truth.Contains(answers.mappings()[rank])) ++correct;
    double p = static_cast<double>(correct) / static_cast<double>(rank + 1);
    double r = static_cast<double>(correct) / static_cast<double>(truth.size());
    if (p >= r && correct > 0) best = p;
  }
  // The largest precision at which P >= R still held; at the crossing rank
  // this is the break-even value (P == R when |A| == |H| exactly).
  return best;
}

}  // namespace smb::eval
