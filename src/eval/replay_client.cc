#include "eval/replay_client.h"

#include <thread>
#include <utility>

#include "serve/protocol.h"
#include "serve/socket_io.h"

/// \file replay_client.cc
/// \brief Round-robin fan-out of a request file over N connections.

namespace smb::eval {

namespace {

/// One connection's share of the replay: the request indices it owns, the
/// responses it collected, and how it ended.
struct ConnectionTask {
  std::vector<size_t> indices;
  Status status = Status::OK();
};

/// Runs one connection synchronously: send a line, read its response,
/// repeat. Writes responses straight into the shared, pre-sized response
/// vector — each task owns disjoint indices, so no locking is needed.
void RunConnection(const ReplayClientOptions& options,
                   const std::vector<std::string>& request_lines,
                   ConnectionTask* task,
                   std::vector<std::string>* responses) {
  auto socket = serve::ConnectTo(options.host, options.port);
  if (!socket.ok()) {
    task->status = socket.status();
    return;
  }
  serve::LineReader reader(&*socket);
  for (size_t index : task->indices) {
    if (Status st = serve::WriteAll(*socket, request_lines[index] + "\n");
        !st.ok()) {
      task->status = st;
      return;
    }
    std::string line;
    Result<bool> more = reader.ReadLine(&line);
    if (!more.ok()) {
      task->status = more.status();
      return;
    }
    if (!*more) {
      task->status = Status::IOError(
          "server closed the connection before responding to '" +
          request_lines[index] + "'");
      return;
    }
    (*responses)[index] = std::move(line);
  }
}

}  // namespace

Result<ReplayOutcome> ReplayRequests(
    const ReplayClientOptions& options,
    const std::vector<std::string>& request_lines) {
  const size_t connections =
      options.connections == 0 ? 1 : options.connections;
  std::vector<ConnectionTask> tasks(connections);
  for (size_t i = 0; i < request_lines.size(); ++i) {
    tasks[i % connections].indices.push_back(i);
  }
  ReplayOutcome outcome;
  outcome.responses.resize(request_lines.size());
  std::vector<std::thread> threads;
  threads.reserve(tasks.size());
  for (ConnectionTask& task : tasks) {
    threads.emplace_back([&options, &request_lines, &task, &outcome] {
      RunConnection(options, request_lines, &task, &outcome.responses);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const ConnectionTask& task : tasks) {
    if (!task.status.ok()) return task.status;
  }
  for (const std::string& line : outcome.responses) {
    if (line.rfind("ok ", 0) == 0) {
      ++outcome.ok_count;
      Result<serve::MatchResponse> parsed = serve::ParseMatchResponse(line);
      if (parsed.ok() && parsed->shed) ++outcome.shed_count;
    } else if (line.rfind("err ", 0) == 0) {
      ++outcome.err_count;
    }
    // stats/bye lines are neither served answers nor failures.
  }
  return outcome;
}

}  // namespace smb::eval
