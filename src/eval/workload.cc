#include "eval/workload.h"

#include <optional>
#include <unordered_set>
#include <utility>

#include "common/timing.h"
#include "index/prepared_repository.h"
#include "index/snapshot.h"

/// \file workload.cc
/// \brief Workload runner: repository + query batch through a matcher to
/// answer sets.

namespace smb::eval {

namespace {

using Clock = SteadyClock;

}  // namespace

Result<WorkloadResult> RunWorkload(const match::Matcher& matcher,
                                   const std::vector<MatchingProblem>& problems,
                                   const schema::SchemaRepository& repo,
                                   const match::MatchOptions& options,
                                   const std::vector<double>& thresholds) {
  if (problems.empty()) {
    return Status::InvalidArgument("workload has no matching problems");
  }
  WorkloadResult result;
  result.system_name = matcher.name();
  result.answers.reserve(problems.size());
  for (const MatchingProblem& problem : problems) {
    auto answers = matcher.Match(problem.query, repo, options, &result.stats);
    if (!answers.ok()) {
      return answers.status().WithContext("while matching problem '" +
                                          problem.name + "'");
    }
    result.answers.push_back(std::move(answers).value());
  }
  std::vector<const match::AnswerSet*> answer_ptrs;
  std::vector<const GroundTruth*> truth_ptrs;
  for (size_t i = 0; i < problems.size(); ++i) {
    answer_ptrs.push_back(&result.answers[i]);
    truth_ptrs.push_back(&problems[i].truth);
  }
  SMB_ASSIGN_OR_RETURN(
      result.pooled_curve,
      PrCurve::MeasurePooled(answer_ptrs, truth_ptrs, thresholds));
  return result;
}

Result<IndexedWorkloadResult> RunIndexedWorkload(
    const match::Matcher& matcher,
    const std::vector<MatchingProblem>& problems,
    const schema::SchemaRepository& repo, const match::MatchOptions& options,
    const std::vector<double>& thresholds,
    const IndexedWorkloadOptions& workload_options) {
  if (problems.empty()) {
    return Status::InvalidArgument("workload has no matching problems");
  }
  if (!workload_options.adaptive.has_value() &&
      workload_options.candidate_limit == 0) {
    return Status::InvalidArgument(
        "candidate_limit must be positive (or set `adaptive` for the "
        "bound-driven mode)");
  }

  IndexedWorkloadResult result;
  result.system_name = matcher.name();

  // Prepare once: the query-independent index every query shares. In
  // snapshot mode a previous run's prepared form is loaded from disk;
  // only a *missing* file falls back to build-then-save — a snapshot that
  // exists but fails to load (corruption, option or repository mismatch)
  // is a hard error, so results can never silently come from a different
  // index than the caller asked for.
  std::optional<index::PreparedRepository> prepared_storage;
  if (!workload_options.snapshot_path.empty()) {
    Clock::time_point load_start = Clock::now();
    auto loaded = index::LoadSnapshot(workload_options.snapshot_path, repo,
                                      options.objective.name,
                                      workload_options.num_threads);
    if (loaded.ok()) {
      result.index_load_seconds = SecondsSince(load_start);
      result.loaded_from_snapshot = true;
      prepared_storage = std::move(loaded).value();
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }
  if (!prepared_storage.has_value()) {
    Clock::time_point build_start = Clock::now();
    SMB_ASSIGN_OR_RETURN(
        prepared_storage,
        index::PreparedRepository::Build(repo, options.objective.name));
    result.index_build_seconds = SecondsSince(build_start);
    if (!workload_options.snapshot_path.empty()) {
      Clock::time_point save_start = Clock::now();
      SMB_RETURN_IF_ERROR(index::SaveSnapshot(
          *prepared_storage, workload_options.snapshot_path));
      result.snapshot_save_seconds = SecondsSince(save_start);
    }
  }
  index::PreparedRepository& prepared = *prepared_storage;

  engine::BatchMatchOptions sparse_opts;
  sparse_opts.num_threads = workload_options.num_threads;
  sparse_opts.shard_size = workload_options.shard_size;
  sparse_opts.global_top_k = workload_options.global_top_k;
  sparse_opts.candidate_limit = workload_options.candidate_limit;
  sparse_opts.adaptive = workload_options.adaptive;
  sparse_opts.prepared_repository = &prepared;
  engine::BatchMatchEngine sparse_engine(sparse_opts);

  engine::BatchMatchOptions dense_opts = sparse_opts;
  dense_opts.candidate_limit = 0;
  dense_opts.adaptive.reset();
  dense_opts.prepared_repository = nullptr;
  engine::BatchMatchEngine dense_engine(dense_opts);

  result.answers.reserve(problems.size());
  result.reports.reserve(problems.size());
  size_t top_retained = 0;
  double recall_sum = 0.0;
  for (const MatchingProblem& problem : problems) {
    QueryRunReport report;
    report.name = problem.name;

    engine::BatchMatchStats sparse_stats;
    Clock::time_point start = Clock::now();
    auto sparse = sparse_engine.Run(matcher, problem.query, repo, options,
                                    &sparse_stats);
    report.sparse_seconds = SecondsSince(start);
    if (!sparse.ok()) {
      return sparse.status().WithContext("while matching problem '" +
                                         problem.name + "'");
    }
    report.sparse_answers = sparse->size();
    report.index_seconds = sparse_stats.index_seconds;
    report.provably_complete_fraction =
        sparse_stats.provably_complete_fraction;
    if (sparse_stats.adaptive_mode) {
      report.budget_spent = sparse_stats.adaptive.budget_spent;
      report.cells_escalated = sparse_stats.adaptive.cells_escalated;
      report.adaptive_rounds = sparse_stats.adaptive.rounds;
      result.total_budget_spent += report.budget_spent;
    }
    result.stats += sparse_stats.match;

    if (workload_options.compare_dense) {
      start = Clock::now();
      auto dense = dense_engine.Run(matcher, problem.query, repo, options);
      report.dense_seconds = SecondsSince(start);
      if (!dense.ok()) {
        return dense.status().WithContext("while dense-matching problem '" +
                                          problem.name + "'");
      }
      report.dense_answers = dense->size();
      std::unordered_set<match::Mapping::Key, match::MappingKeyHash>
          sparse_keys;
      sparse_keys.reserve(sparse->size());
      for (const match::Mapping& mapping : sparse->mappings()) {
        sparse_keys.insert(mapping.key());
      }
      if (!dense->empty()) {
        size_t retained = 0;
        for (const match::Mapping& mapping : dense->mappings()) {
          if (sparse_keys.count(mapping.key()) > 0) ++retained;
        }
        report.answer_recall = static_cast<double>(retained) /
                               static_cast<double>(dense->size());
        report.top_answer_retained =
            sparse_keys.count(dense->mappings().front().key()) > 0;
      }
      result.dense_answers.push_back(std::move(dense).value());
    }
    recall_sum += report.answer_recall;
    if (report.top_answer_retained) ++top_retained;
    result.answers.push_back(std::move(sparse).value());
    result.reports.push_back(std::move(report));
  }
  result.mean_answer_recall =
      recall_sum / static_cast<double>(problems.size());
  result.top_answer_recall = static_cast<double>(top_retained) /
                             static_cast<double>(problems.size());
  double completeness_sum = 0.0;
  for (const QueryRunReport& report : result.reports) {
    completeness_sum += report.provably_complete_fraction;
  }
  result.mean_provable_completeness =
      completeness_sum / static_cast<double>(result.reports.size());

  // The pooled measured curve needs judged problems; workloads without
  // ground truth still get latency and recall-vs-dense.
  bool any_truth = false;
  for (const MatchingProblem& problem : problems) {
    if (!problem.truth.empty()) any_truth = true;
  }
  if (any_truth && !thresholds.empty()) {
    std::vector<const match::AnswerSet*> answer_ptrs;
    std::vector<const GroundTruth*> truth_ptrs;
    for (size_t i = 0; i < problems.size(); ++i) {
      answer_ptrs.push_back(&result.answers[i]);
      truth_ptrs.push_back(&problems[i].truth);
    }
    SMB_ASSIGN_OR_RETURN(
        result.pooled_curve,
        PrCurve::MeasurePooled(answer_ptrs, truth_ptrs, thresholds));
    result.has_curve = true;
  }
  return result;
}

std::vector<size_t> PooledSizes(const WorkloadResult& result,
                                const std::vector<double>& thresholds) {
  std::vector<size_t> sizes(thresholds.size(), 0);
  for (const match::AnswerSet& answers : result.answers) {
    for (size_t i = 0; i < thresholds.size(); ++i) {
      sizes[i] += answers.CountAtThreshold(thresholds[i]);
    }
  }
  return sizes;
}

}  // namespace smb::eval
