#include "eval/workload.h"

namespace smb::eval {

Result<WorkloadResult> RunWorkload(const match::Matcher& matcher,
                                   const std::vector<MatchingProblem>& problems,
                                   const schema::SchemaRepository& repo,
                                   const match::MatchOptions& options,
                                   const std::vector<double>& thresholds) {
  if (problems.empty()) {
    return Status::InvalidArgument("workload has no matching problems");
  }
  WorkloadResult result;
  result.system_name = matcher.name();
  result.answers.reserve(problems.size());
  for (const MatchingProblem& problem : problems) {
    auto answers = matcher.Match(problem.query, repo, options, &result.stats);
    if (!answers.ok()) {
      return answers.status().WithContext("while matching problem '" +
                                          problem.name + "'");
    }
    result.answers.push_back(std::move(answers).value());
  }
  std::vector<const match::AnswerSet*> answer_ptrs;
  std::vector<const GroundTruth*> truth_ptrs;
  for (size_t i = 0; i < problems.size(); ++i) {
    answer_ptrs.push_back(&result.answers[i]);
    truth_ptrs.push_back(&problems[i].truth);
  }
  SMB_ASSIGN_OR_RETURN(
      result.pooled_curve,
      PrCurve::MeasurePooled(answer_ptrs, truth_ptrs, thresholds));
  return result;
}

std::vector<size_t> PooledSizes(const WorkloadResult& result,
                                const std::vector<double>& thresholds) {
  std::vector<size_t> sizes(thresholds.size(), 0);
  for (const match::AnswerSet& answers : result.answers) {
    for (size_t i = 0; i < thresholds.size(); ++i) {
      sizes[i] += answers.CountAtThreshold(thresholds[i]);
    }
  }
  return sizes;
}

}  // namespace smb::eval
