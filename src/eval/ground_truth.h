#pragma once

#include <unordered_set>

#include "match/answer_set.h"
#include "match/mapping.h"

/// \file ground_truth.h
/// \brief The set H of correct mappings (§2.2).
///
/// In the paper H comes from human evaluators; building it for a large
/// collection is exactly the cost the bounds technique avoids. In this
/// reproduction H comes from the synthetic scenario generator (the planted
/// mappings are correct by construction — the Sayyadian et al. [14] route
/// the paper itself endorses for large judged collections).

namespace smb::eval {

/// \brief An immutable-ish set of correct mapping keys.
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Marks a mapping as correct. Duplicate inserts are ignored.
  void AddCorrect(match::Mapping::Key key);

  /// |H|.
  size_t size() const { return correct_.size(); }
  bool empty() const { return correct_.empty(); }

  /// True iff the mapping is in H.
  bool Contains(const match::Mapping::Key& key) const {
    return correct_.count(key) > 0;
  }
  bool Contains(const match::Mapping& mapping) const {
    return Contains(mapping.key());
  }

  /// \brief |T^δ| = |H ∩ A^δ|: correct answers within threshold δ.
  size_t CountTruePositives(const match::AnswerSet& answers,
                            double threshold) const;

  /// \brief |T| over the entire answer set.
  size_t CountTruePositives(const match::AnswerSet& answers) const;

  /// Merges another ground truth into this one (used by pooling).
  void Merge(const GroundTruth& other);

 private:
  std::unordered_set<match::Mapping::Key, match::MappingKeyHash> correct_;
};

}  // namespace smb::eval
