#include "eval/sampling_estimator.h"

#include <cmath>

/// \file sampling_estimator.cc
/// \brief Sampled-precision estimator with confidence intervals.

namespace smb::eval {

namespace {

/// Wilson score interval for a binomial proportion.
void WilsonInterval(size_t correct, size_t n, double z,
                    PrecisionEstimate* out) {
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(correct) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  out->precision = p;
  out->ci_low = std::max(0.0, center - half);
  out->ci_high = std::min(1.0, center + half);
}

}  // namespace

Result<PrecisionEstimate> EstimatePrecisionBySampling(
    const match::AnswerSet& answers,
    const std::function<bool(const match::Mapping&)>& oracle, size_t budget,
    Rng* rng, double z) {
  if (answers.empty()) {
    return Status::InvalidArgument("cannot sample an empty answer set");
  }
  if (budget == 0) {
    return Status::InvalidArgument("judgment budget must be positive");
  }
  if (!oracle) {
    return Status::InvalidArgument("oracle callback is empty");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  if (z <= 0.0) {
    return Status::InvalidArgument("z quantile must be positive");
  }
  std::vector<size_t> picks =
      rng->SampleWithoutReplacement(answers.size(), budget);
  PrecisionEstimate estimate;
  estimate.sample_size = picks.size();
  for (size_t idx : picks) {
    if (oracle(answers.mappings()[idx])) ++estimate.sample_correct;
  }
  WilsonInterval(estimate.sample_correct, estimate.sample_size, z, &estimate);
  return estimate;
}

Result<PrecisionEstimate> EstimatePrecisionBySampling(
    const match::AnswerSet& answers,
    const std::function<bool(const match::Mapping&)>& oracle,
    double threshold, size_t budget, Rng* rng, double z) {
  match::AnswerSet prefix = answers.FilterToThreshold(threshold);
  auto result = EstimatePrecisionBySampling(prefix, oracle, budget, rng, z);
  if (!result.ok()) {
    return result.status().WithContext(
        "sampling answers with Δ <= " + std::to_string(threshold));
  }
  return result;
}

}  // namespace smb::eval
