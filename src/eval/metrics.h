#pragma once

#include <cstddef>

#include "eval/ground_truth.h"
#include "match/answer_set.h"

/// \file metrics.h
/// \brief Precision and recall (Figure 2 of the paper).
///
/// `P = |T|/|A|`, `R = |T|/|H|` with `T = H ∩ A`. Conventions for the
/// degenerate denominators: an empty answer set has precision 1 (no wrong
/// answers were produced) and an empty H yields recall 1.

namespace smb::eval {

/// \brief Raw counts behind a P/R measurement.
struct ConfusionCounts {
  size_t answers = 0;         ///< |A^δ|
  size_t true_positives = 0;  ///< |T^δ|
  size_t total_correct = 0;   ///< |H|
};

/// `|T|/|A|`, 1 when |A| == 0.
double Precision(const ConfusionCounts& counts);

/// `|T|/|H|`, 1 when |H| == 0.
double Recall(const ConfusionCounts& counts);

/// Harmonic mean of precision and recall; 0 when both are 0.
double F1Score(const ConfusionCounts& counts);

/// Counts |A^δ| and |T^δ| for one answer set at one threshold.
ConfusionCounts Evaluate(const match::AnswerSet& answers,
                         const GroundTruth& truth, double threshold);

/// Counts over the full answer set (δ = ∞).
ConfusionCounts EvaluateAll(const match::AnswerSet& answers,
                            const GroundTruth& truth);

}  // namespace smb::eval
