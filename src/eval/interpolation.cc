#include "eval/interpolation.h"

/// \file interpolation.cc
/// \brief Monotone interpolation of recall curves (§3.2 step shapes).

namespace smb::eval {

double ElevenPointCurve::MeanPrecision() const {
  double sum = 0.0;
  for (double p : precision) sum += p;
  return sum / static_cast<double>(kLevels);
}

double InterpolatedPrecisionAt(const PrCurve& measured, double recall) {
  double best = 0.0;
  for (const PrPoint& p : measured.points()) {
    if (p.recall >= recall - 1e-12) best = std::max(best, p.precision);
  }
  return best;
}

Result<ElevenPointCurve> InterpolateElevenPoint(const PrCurve& measured) {
  if (measured.empty()) {
    return Status::InvalidArgument("cannot interpolate an empty curve");
  }
  SMB_RETURN_IF_ERROR(measured.Validate());
  ElevenPointCurve out;
  for (size_t i = 0; i < ElevenPointCurve::kLevels; ++i) {
    out.precision[i] =
        InterpolatedPrecisionAt(measured, ElevenPointCurve::RecallLevel(i));
  }
  return out;
}

}  // namespace smb::eval
