#include "eval/ground_truth.h"

/// \file ground_truth.cc
/// \brief Ground-truth table: judged pairs, relevance lookup.

namespace smb::eval {

void GroundTruth::AddCorrect(match::Mapping::Key key) {
  correct_.insert(std::move(key));
}

size_t GroundTruth::CountTruePositives(const match::AnswerSet& answers,
                                       double threshold) const {
  size_t n = answers.CountAtThreshold(threshold);
  size_t tp = 0;
  for (size_t i = 0; i < n; ++i) {
    if (Contains(answers.mappings()[i])) ++tp;
  }
  return tp;
}

size_t GroundTruth::CountTruePositives(const match::AnswerSet& answers) const {
  size_t tp = 0;
  for (const auto& m : answers.mappings()) {
    if (Contains(m)) ++tp;
  }
  return tp;
}

void GroundTruth::Merge(const GroundTruth& other) {
  for (const auto& key : other.correct_) correct_.insert(key);
}

}  // namespace smb::eval
