#pragma once

#include "eval/ground_truth.h"
#include "match/answer_set.h"

/// \file ir_metrics.h
/// \brief Rank-based IR metrics complementing the threshold-based P/R
/// harness: average precision, R-precision, precision@N and the P/R
/// break-even point. Useful for summarizing systems with one number when
/// comparing many parameter settings (the paper's use case 2).

namespace smb::eval {

/// \brief Average precision: mean of precision@rank over the ranks of the
/// correct answers, with unretrieved correct answers contributing 0.
/// 0 when H is empty.
double AveragePrecision(const match::AnswerSet& answers,
                        const GroundTruth& truth);

/// \brief Precision over the top-N ranked answers (N clamped to the answer
/// count; 1.0 for an empty prefix).
double PrecisionAtN(const match::AnswerSet& answers, const GroundTruth& truth,
                    size_t n);

/// \brief R-precision: precision at rank |H|.
double RPrecision(const match::AnswerSet& answers, const GroundTruth& truth);

/// \brief P/R break-even point: precision at the largest rank where
/// precision@rank >= recall@rank (they cross there); 0 when they never
/// meet above rank 0.
double BreakEvenPoint(const match::AnswerSet& answers,
                      const GroundTruth& truth);

/// \brief bpref (Buckley & Voorhees [3], cited in §1): rank metric robust
/// to incomplete judgments. Only *judged* answers count — `judged_wrong`
/// holds the answers a human inspected and rejected; everything else in the
/// ranking is treated as unjudged and ignored:
///
///   bpref = (1/|H|) Σ_{r ∈ retrieved ∩ H} (1 − |wrong ranked above r| / min(|H|, |W|))
///
/// where W is the judged-wrong set. 0 when H is empty; the
/// `|W| == 0` convention scores every retrieved correct answer 1.
double BPref(const match::AnswerSet& answers, const GroundTruth& truth,
             const GroundTruth& judged_wrong);

}  // namespace smb::eval
