#pragma once

#include <vector>

#include "common/result.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "match/answer_set.h"

/// \file pr_curve.h
/// \brief Measured P/R curves (§2.4).
///
/// A measured curve is obtained by sweeping the threshold δ and recording
/// `(δ, |A^δ|, |T^δ|, P, R)` at each step. It is the input the bounds
/// machinery consumes for the original system S1 — together with the |A|
/// counts it implicitly carries the threshold correspondence an interpolated
/// curve lacks (§4.1).

namespace smb::eval {

/// \brief One measured point.
struct PrPoint {
  double threshold = 0.0;
  size_t answers = 0;         ///< |A^δ|
  size_t true_positives = 0;  ///< |T^δ|
  double precision = 1.0;
  double recall = 0.0;
};

/// \brief A threshold-ordered measured P/R curve.
class PrCurve {
 public:
  PrCurve() = default;

  /// \brief Measures the curve of one answer set at the given thresholds
  /// (must be strictly increasing; H must be non-empty).
  static Result<PrCurve> Measure(const match::AnswerSet& answers,
                                 const GroundTruth& truth,
                                 const std::vector<double>& thresholds);

  /// \brief Micro-averaged curve over several matching problems: counts are
  /// summed across (answers, truth) pairs per threshold. This is how a
  /// multi-query test collection yields one system-level curve.
  static Result<PrCurve> MeasurePooled(
      const std::vector<const match::AnswerSet*>& answer_sets,
      const std::vector<const GroundTruth*>& truths,
      const std::vector<double>& thresholds);

  const std::vector<PrPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  /// |H| backing the recall values.
  size_t total_correct() const { return total_correct_; }

  /// \brief Structural invariants: thresholds strictly increasing, counts
  /// non-decreasing, `tp <= answers`, P/R consistent with the counts.
  Status Validate() const;

  /// \brief Builds a curve directly from points (for curves taken from
  /// literature rather than measured here). Validates.
  static Result<PrCurve> FromPoints(std::vector<PrPoint> points,
                                    size_t total_correct);

 private:
  std::vector<PrPoint> points_;
  size_t total_correct_ = 0;
};

/// \brief Evenly spaced thresholds `step, 2·step, …, max` (inclusive within
/// floating-point tolerance).
std::vector<double> UniformThresholds(double max, double step);

}  // namespace smb::eval
