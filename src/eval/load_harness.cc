#include "eval/load_harness.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "common/table.h"
#include "common/timing.h"

/// \file load_harness.cc
/// \brief Threaded open-loop replay and report aggregation.

namespace smb::eval {

namespace {

/// One replay thread's view: executes indices `t, t+N, t+2N, ...` in
/// trace order, sleeping until each request's (scaled) arrival instant in
/// open-loop mode. Writes only its own slots of `outcomes`/`wall_ms`, so
/// the workers share nothing but the executor.
void ReplayWorker(const WorkloadTrace& trace, TraceExecutor* executor,
                  const ReplayOptions& options, size_t thread_index,
                  SteadyClock::time_point start,
                  std::vector<TraceOutcome>* outcomes,
                  std::vector<double>* wall_ms) {
  const bool paced = options.open_loop && options.speed > 0.0;
  for (uint64_t i = thread_index; i < trace.requests.size();
       i += options.num_threads) {
    const TraceRequest& request = trace.requests[i];
    if (paced) {
      const auto arrival =
          start + std::chrono::microseconds(static_cast<uint64_t>(
                      static_cast<double>(request.arrival_us) /
                      options.speed));
      std::this_thread::sleep_until(arrival);
    }
    const SteadyClock::time_point dispatched = SteadyClock::now();
    (*outcomes)[i] = executor->Execute(i, request);
    (*wall_ms)[i] = SecondsSince(dispatched) * 1e3;
  }
}

}  // namespace

Result<LoadReplayReport> ReplayTrace(const WorkloadTrace& trace,
                                     TraceExecutor* executor,
                                     const ReplayOptions& options) {
  SMB_RETURN_IF_ERROR(ValidateTrace(trace));
  if (executor == nullptr) {
    return Status::InvalidArgument("replay needs an executor");
  }
  if (options.num_threads == 0) {
    return Status::InvalidArgument("replay needs num_threads > 0");
  }
  if (options.speed < 0.0) {
    return Status::InvalidArgument("replay speed must be >= 0");
  }

  const uint64_t n = trace.requests.size();
  std::vector<TraceOutcome> outcomes(n);
  std::vector<double> wall_ms(n, 0.0);
  const SteadyClock::time_point start = SteadyClock::now();
  {
    std::vector<std::thread> threads;
    const size_t num_threads =
        std::min<size_t>(options.num_threads, std::max<uint64_t>(n, 1));
    ReplayOptions effective = options;
    effective.num_threads = num_threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&trace, executor, effective, t, start,
                            &outcomes, &wall_ms] {
        ReplayWorker(trace, executor, effective, t, start, &outcomes,
                     &wall_ms);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double wall_seconds = SecondsSince(start);

  LoadReplayReport report;
  report.requests = n;
  report.wall_seconds = wall_seconds;

  std::vector<double> all_wall;
  std::vector<double> all_service;
  all_wall.reserve(n);
  all_service.reserve(n);
  // Keyed accumulation for the budget-vs-bound curve and per-class rows;
  // the map iterates in ascending target order, which is the curve order.
  std::map<double, TargetMixStats> by_target;
  struct ClassAccumulator {
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t shed = 0;
    std::vector<double> wall;
  };
  std::vector<ClassAccumulator> by_class(trace.classes.size());
  std::map<double, std::vector<double>> target_wall;

  for (uint64_t i = 0; i < n; ++i) {
    const TraceOutcome& outcome = outcomes[i];
    const TraceRequest& request = trace.requests[i];
    TargetMixStats& mix = by_target[request.target_bound];
    mix.target_bound = request.target_bound;
    ++mix.requests;
    ClassAccumulator& cls = by_class[request.class_index];
    ++cls.requests;
    if (!outcome.ok) {
      ++report.errors;
      continue;
    }
    ++report.ok;
    all_wall.push_back(wall_ms[i]);
    all_service.push_back(outcome.service_latency_ms);
    target_wall[request.target_bound].push_back(wall_ms[i]);
    cls.wall.push_back(wall_ms[i]);
    ++cls.ok;
    ++mix.ok;
    if (outcome.cache_hit) ++report.cache_hits;
    if (outcome.shed) {
      ++report.shed;
      ++mix.shed;
      ++cls.shed;
    }
    mix.mean_certified += outcome.certified;
    if (outcome.has_budget) {
      mix.mean_budget += static_cast<double>(outcome.budget);
      ++mix.budget_samples;
    }
  }

  report.throughput_rps =
      wall_seconds > 0.0
          ? static_cast<double>(report.ok + report.errors) / wall_seconds
          : 0.0;
  report.cache_hit_rate =
      report.ok > 0
          ? static_cast<double>(report.cache_hits) /
                static_cast<double>(report.ok)
          : 0.0;
  report.shed_fraction =
      report.ok > 0 ? static_cast<double>(report.shed) /
                          static_cast<double>(report.ok)
                    : 0.0;
  report.latency_ms = SummarizePercentiles(std::move(all_wall));
  report.service_latency_ms = SummarizePercentiles(std::move(all_service));

  for (auto& [target, mix] : by_target) {
    if (mix.ok > 0) mix.mean_certified /= static_cast<double>(mix.ok);
    if (mix.budget_samples > 0) {
      mix.mean_budget /= static_cast<double>(mix.budget_samples);
    }
    mix.latency_ms = SummarizePercentiles(std::move(target_wall[target]));
    report.per_target.push_back(std::move(mix));
  }
  for (size_t c = 0; c < trace.classes.size(); ++c) {
    ClassStats stats;
    stats.name = trace.classes[c];
    stats.requests = by_class[c].requests;
    stats.ok = by_class[c].ok;
    stats.shed = by_class[c].shed;
    stats.latency_ms = SummarizePercentiles(std::move(by_class[c].wall));
    report.per_class.push_back(std::move(stats));
  }
  report.outcomes = std::move(outcomes);
  return report;
}

void PrintReplayReport(std::ostream& os, const LoadReplayReport& report) {
  os << "replay requests=" << report.requests << " ok=" << report.ok
     << " errors=" << report.errors << " shed=" << report.shed
     << " cache_hits=" << report.cache_hits << "\n";
  os << "  wall_s=" << FormatDouble(report.wall_seconds, 3)
     << " throughput_rps=" << FormatDouble(report.throughput_rps, 1)
     << " cache_hit_rate=" << FormatDouble(report.cache_hit_rate, 3)
     << " shed_fraction=" << FormatDouble(report.shed_fraction, 3) << "\n";
  os << "  latency_ms p50=" << FormatDouble(report.latency_ms.p50, 3)
     << " p95=" << FormatDouble(report.latency_ms.p95, 3)
     << " p99=" << FormatDouble(report.latency_ms.p99, 3)
     << " max=" << FormatDouble(report.latency_ms.max, 3) << "\n";
  os << "  service_ms p50="
     << FormatDouble(report.service_latency_ms.p50, 3)
     << " p95=" << FormatDouble(report.service_latency_ms.p95, 3)
     << " p99=" << FormatDouble(report.service_latency_ms.p99, 3) << "\n";
  if (!report.per_target.empty()) {
    TextTable table({"target", "requests", "ok", "shed", "mean_certified",
                     "mean_budget", "p50_ms", "p95_ms", "p99_ms"});
    for (const TargetMixStats& mix : report.per_target) {
      table.AddRow({mix.target_bound == 0.0
                        ? std::string("default")
                        : FormatDouble(mix.target_bound, 2),
                    std::to_string(mix.requests), std::to_string(mix.ok),
                    std::to_string(mix.shed),
                    FormatDouble(mix.mean_certified, 4),
                    FormatDouble(mix.mean_budget, 1),
                    FormatDouble(mix.latency_ms.p50, 3),
                    FormatDouble(mix.latency_ms.p95, 3),
                    FormatDouble(mix.latency_ms.p99, 3)});
    }
    os << "  budget-vs-bound:\n";
    table.Print(os, 4);
  }
  if (report.per_class.size() > 1) {
    TextTable table(
        {"class", "requests", "ok", "shed", "p50_ms", "p95_ms", "p99_ms"});
    for (const ClassStats& cls : report.per_class) {
      table.AddRow({cls.name, std::to_string(cls.requests),
                    std::to_string(cls.ok), std::to_string(cls.shed),
                    FormatDouble(cls.latency_ms.p50, 3),
                    FormatDouble(cls.latency_ms.p95, 3),
                    FormatDouble(cls.latency_ms.p99, 3)});
    }
    os << "  per-class:\n";
    table.Print(os, 4);
  }
}

void WriteBudgetBoundCsv(std::ostream& os, const LoadReplayReport& report) {
  TextTable table({"target_bound", "requests", "ok", "shed",
                   "mean_certified", "mean_budget", "budget_samples",
                   "p50_ms", "p95_ms", "p99_ms"});
  for (const TargetMixStats& mix : report.per_target) {
    table.AddRow({FormatDouble(mix.target_bound, 4),
                  std::to_string(mix.requests), std::to_string(mix.ok),
                  std::to_string(mix.shed),
                  FormatDouble(mix.mean_certified, 6),
                  FormatDouble(mix.mean_budget, 2),
                  std::to_string(mix.budget_samples),
                  FormatDouble(mix.latency_ms.p50, 4),
                  FormatDouble(mix.latency_ms.p95, 4),
                  FormatDouble(mix.latency_ms.p99, 4)});
  }
  table.WriteCsv(os);
}

}  // namespace smb::eval
