#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/batch_match_engine.h"
#include "eval/ground_truth.h"
#include "eval/pr_curve.h"
#include "match/matcher.h"

/// \file workload.h
/// \brief Multi-query workloads.
///
/// A large-scale study runs *many* personal schemas against one repository
/// and reports one system-level curve (micro-averaged over the matching
/// problems, §2.2's P/R summed over counts). The workload runner executes a
/// matcher over every problem and aggregates.
///
/// `RunIndexedWorkload` is the prepare-once/serve-many variant: one
/// query-independent repository index is built up front and amortized over
/// every query, each served through the batch engine's sparse candidate
/// path. Per-query latency and — optionally — recall against the dense
/// (index-free) run of the same matcher are reported, so the candidate
/// cutoff C becomes a measurable S2 knob for the bounds pipeline.

namespace smb::eval {

/// \brief One matching problem: a query plus its judged correct mappings.
struct MatchingProblem {
  std::string name;
  schema::Schema query;
  GroundTruth truth;
};

/// \brief Per-problem and aggregated results of one system over a workload.
struct WorkloadResult {
  std::string system_name;
  /// Ranked answers per problem (same order as the workload's problems).
  std::vector<match::AnswerSet> answers;
  /// Work counters summed over all problems.
  match::MatchStats stats;
  /// Micro-averaged measured curve over all problems.
  PrCurve pooled_curve;
};

/// \brief Runs `matcher` on every problem against `repo` and micro-averages
/// the measured curves at `thresholds`.
///
/// Fails if any problem fails to match or if the pooled H is empty.
Result<WorkloadResult> RunWorkload(const match::Matcher& matcher,
                                   const std::vector<MatchingProblem>& problems,
                                   const schema::SchemaRepository& repo,
                                   const match::MatchOptions& options,
                                   const std::vector<double>& thresholds);

/// \brief Pooled answer sizes |A^δ| of a workload result at each threshold
/// (summed over problems) — the S2 size observations the bounds consume.
std::vector<size_t> PooledSizes(const WorkloadResult& result,
                                const std::vector<double>& thresholds);

/// \brief Configuration of an indexed (prepare-once/serve-many) workload.
struct IndexedWorkloadOptions {
  /// Candidates per (query element, schema) — the S2 selectivity knob C.
  /// Ignored (and allowed to stay 0) when `adaptive` is set.
  size_t candidate_limit = 16;
  /// Bound-driven mode: when set, every query's candidate lists grow per
  /// cell until the skip-bound certifies
  /// `adaptive->min_provable_completeness` at the run's Δ threshold (see
  /// `index::AdaptiveCandidatePolicy`); per-query budget and achieved
  /// bound are reported in `QueryRunReport`.
  std::optional<index::AdaptiveCandidatePolicy> adaptive;
  /// Worker threads per query (0 ⇒ hardware concurrency).
  size_t num_threads = 1;
  /// Schemas per shard (0 = heuristic).
  size_t shard_size = 0;
  /// Keep only the globally best k answers per query (0 = all).
  size_t global_top_k = 0;
  /// Also run each query through the dense path and report recall of the
  /// dense answers (and of the dense top-1) in the sparse answer set.
  bool compare_dense = false;
  /// Snapshot mode: when non-empty, the repository index is *loaded* from
  /// this file if it exists (a mismatched or corrupted snapshot is a hard
  /// error — never a silent rebuild with possibly different semantics),
  /// and otherwise built from the repository and saved here for the next
  /// run. The result then reports load-time vs build-time.
  std::string snapshot_path;
};

/// \brief What one query of an indexed workload did.
struct QueryRunReport {
  std::string name;
  double sparse_seconds = 0.0;
  size_t sparse_answers = 0;
  /// Of the sparse run's index work: candidate generation share.
  double index_seconds = 0.0;
  /// Filled only when `compare_dense`:
  double dense_seconds = 0.0;
  size_t dense_answers = 0;
  /// |sparse ∩ dense| / |dense| by mapping key (1.0 when dense is empty).
  double answer_recall = 1.0;
  /// True iff the dense run's rank-1 answer is in the sparse answers.
  bool top_answer_retained = true;
  /// Fraction of (position, schema) cells the skip-bound certifies
  /// complete at the run's Δ threshold. The empty/dense convention is
  /// **1.0** — "nothing was skipped" certifies completeness vacuously —
  /// matching `engine::BatchMatchStats::provably_complete_fraction` (the
  /// two used to disagree: 0.0 here vs 1.0 there; regression-tested in
  /// tests/eval/indexed_workload_test.cc).
  double provably_complete_fraction = 1.0;
  /// Adaptive mode only: candidates scored for this query (including
  /// escalation re-scoring), escalated cells, and escalation rounds.
  uint64_t budget_spent = 0;
  size_t cells_escalated = 0;
  size_t adaptive_rounds = 0;
};

/// \brief Results of `RunIndexedWorkload`.
struct IndexedWorkloadResult {
  std::string system_name;
  /// One-time cost of building the shared repository index (0 when it was
  /// loaded from a snapshot instead).
  double index_build_seconds = 0.0;
  /// Snapshot mode only: time to load the prepared index from disk. The
  /// load-vs-build comparison is `index_load_seconds` against
  /// `index_build_seconds` of a previous (building) run.
  double index_load_seconds = 0.0;
  /// Snapshot mode only: time to serialize + write the freshly built index
  /// (first run, when the snapshot file did not exist yet).
  double snapshot_save_seconds = 0.0;
  /// True when the index came from `snapshot_path` instead of a build.
  bool loaded_from_snapshot = false;
  /// Sparse (indexed) answers per problem, in problem order.
  std::vector<match::AnswerSet> answers;
  /// Dense answers per problem (empty unless `compare_dense`).
  std::vector<match::AnswerSet> dense_answers;
  std::vector<QueryRunReport> reports;
  /// Sparse-run work counters summed over all problems (including the
  /// index's candidates_generated/_skipped).
  match::MatchStats stats;
  /// Micro-averages over the queries (compare_dense only, else 1.0).
  double mean_answer_recall = 1.0;
  /// Fraction of queries whose dense top-1 answer the sparse run retained.
  double top_answer_recall = 1.0;
  /// Mean certified completeness over the queries — the workload-level
  /// achieved bound.
  double mean_provable_completeness = 1.0;
  /// Adaptive mode: total candidates scored across all queries.
  uint64_t total_budget_spent = 0;
  /// Micro-averaged measured sparse curve; only when some problem carries
  /// ground truth (see `has_curve`).
  PrCurve pooled_curve;
  bool has_curve = false;
};

/// \brief Runs `matcher` over every problem through the batch engine's
/// sparse candidate path, building the repository index exactly once.
///
/// Problems may carry empty ground truth (recall-vs-dense is measured
/// against the dense run, not against H); the pooled curve is computed only
/// when truth is present.
Result<IndexedWorkloadResult> RunIndexedWorkload(
    const match::Matcher& matcher,
    const std::vector<MatchingProblem>& problems,
    const schema::SchemaRepository& repo, const match::MatchOptions& options,
    const std::vector<double>& thresholds,
    const IndexedWorkloadOptions& workload_options);

}  // namespace smb::eval
