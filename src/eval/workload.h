#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "eval/ground_truth.h"
#include "eval/pr_curve.h"
#include "match/matcher.h"

/// \file workload.h
/// \brief Multi-query workloads.
///
/// A large-scale study runs *many* personal schemas against one repository
/// and reports one system-level curve (micro-averaged over the matching
/// problems, §2.2's P/R summed over counts). The workload runner executes a
/// matcher over every problem and aggregates.

namespace smb::eval {

/// \brief One matching problem: a query plus its judged correct mappings.
struct MatchingProblem {
  std::string name;
  schema::Schema query;
  GroundTruth truth;
};

/// \brief Per-problem and aggregated results of one system over a workload.
struct WorkloadResult {
  std::string system_name;
  /// Ranked answers per problem (same order as the workload's problems).
  std::vector<match::AnswerSet> answers;
  /// Work counters summed over all problems.
  match::MatchStats stats;
  /// Micro-averaged measured curve over all problems.
  PrCurve pooled_curve;
};

/// \brief Runs `matcher` on every problem against `repo` and micro-averages
/// the measured curves at `thresholds`.
///
/// Fails if any problem fails to match or if the pooled H is empty.
Result<WorkloadResult> RunWorkload(const match::Matcher& matcher,
                                   const std::vector<MatchingProblem>& problems,
                                   const schema::SchemaRepository& repo,
                                   const match::MatchOptions& options,
                                   const std::vector<double>& thresholds);

/// \brief Pooled answer sizes |A^δ| of a workload result at each threshold
/// (summed over problems) — the S2 size observations the bounds consume.
std::vector<size_t> PooledSizes(const WorkloadResult& result,
                                const std::vector<double>& thresholds);

}  // namespace smb::eval
