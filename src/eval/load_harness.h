#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/percentile.h"
#include "common/result.h"
#include "eval/trace.h"

/// \file load_harness.h
/// \brief Open-loop trace replay with percentile reporting.
///
/// The harness replays a `WorkloadTrace` through a `TraceExecutor` — the
/// seam that keeps this layer ignorant of *how* a request is answered.
/// The eval subsystem may not depend on serve (the include-layering DAG
/// forbids the upward edge), so the two real executors — in-process
/// engine via `serve::MatchService` and live TCP endpoint — live in
/// `src/harness` (harness/trace_executor.h); tests substitute scripted
/// fakes. The report answers the questions ROADMAP item 3 asks at
/// 100k-schema scale: p50/p95/p99 latency, throughput, cache hit rate,
/// shed fraction, and the budget-vs-bound curve per target-bound mix.

namespace smb::eval {

/// \brief Outcome of one replayed request, normalized across executors
/// (fields mirror the serve protocol's `ok` response line).
struct TraceOutcome {
  /// Request succeeded (an `ok` line / engine run). When false, `error`
  /// carries the message and the remaining fields are meaningless.
  bool ok = false;
  std::string error;
  uint64_t answers = 0;
  bool cache_hit = false;
  /// Certified completeness bound of the served answers, in [0, 1].
  double certified = 1.0;
  /// Bound-driven mode only: effective target and shed flag.
  bool has_target = false;
  double target = 1.0;
  bool shed = false;
  /// Server-side service latency (queue wait excluded), milliseconds.
  double service_latency_ms = 0.0;
  /// Adaptive engine detail when reported (cache misses): candidate
  /// budget the bound-driven search spent.
  bool has_budget = false;
  uint64_t budget = 0;
};

/// \brief Answers one trace request. Implementations must be thread-safe:
/// the replay driver calls `Execute` from `num_threads` threads
/// concurrently.
class TraceExecutor {
 public:
  virtual ~TraceExecutor() = default;

  /// Executes request `index` of the trace being replayed. The index
  /// identifies the request (e.g. for per-request answer files); the
  /// request carries the query/class/target/deadline demand.
  virtual TraceOutcome Execute(uint64_t index,
                               const TraceRequest& request) = 0;
};

/// \brief Replay pacing knobs.
struct ReplayOptions {
  /// Concurrent replay threads (requests are interleaved round-robin, so
  /// ordering within a thread follows trace order).
  size_t num_threads = 4;
  /// Arrival-time scale: 2.0 replays at twice the recorded rate, 0 (or
  /// `open_loop = false`) ignores timestamps entirely (closed loop,
  /// as-fast-as-possible).
  double speed = 1.0;
  /// Honor the trace's arrival timestamps (open loop). When false the
  /// replay is a throughput test: every thread fires back-to-back.
  bool open_loop = true;
};

/// \brief Aggregates for one target-bound value of the trace's mix — one
/// point of the budget-vs-bound curve.
struct TargetMixStats {
  /// The requested bound (0 = server default).
  double target_bound = 0.0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  /// Mean certified completeness over ok responses.
  double mean_certified = 0.0;
  /// Mean adaptive candidate budget over responses that reported one
  /// (cache misses in bound-driven mode); `budget_samples` counts them.
  double mean_budget = 0.0;
  uint64_t budget_samples = 0;
  /// Client-observed wall latency of this mix, milliseconds.
  PercentileSummary latency_ms;
};

/// \brief Aggregates for one deadline class.
struct ClassStats {
  std::string name;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  PercentileSummary latency_ms;
};

/// \brief Everything one replay measured.
struct LoadReplayReport {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  uint64_t cache_hits = 0;
  /// Wall time from first dispatch to last completion, seconds.
  double wall_seconds = 0.0;
  /// Completed requests (ok + errors) per wall second.
  double throughput_rps = 0.0;
  /// Cache hits / ok.
  double cache_hit_rate = 0.0;
  /// Shed / ok.
  double shed_fraction = 0.0;
  /// Client-observed wall latency (dispatch to response), milliseconds.
  PercentileSummary latency_ms;
  /// Server-reported service latency, milliseconds.
  PercentileSummary service_latency_ms;
  /// Budget-vs-bound curve: one entry per distinct target bound in the
  /// trace, sorted ascending (0 = server default first).
  std::vector<TargetMixStats> per_target;
  /// One entry per trace class, in trace table order.
  std::vector<ClassStats> per_class;
  /// Raw per-request outcomes in trace order (index-aligned), retained
  /// for reconciliation tests and answer-file comparison.
  std::vector<TraceOutcome> outcomes;
};

/// \brief Replays `trace` through `executor` with `options.num_threads`
/// threads, pacing arrivals per `options`, and aggregates the report.
/// Individual request failures are recorded, not fatal; the call itself
/// fails only on invalid options or an invalid trace.
Result<LoadReplayReport> ReplayTrace(const WorkloadTrace& trace,
                                     TraceExecutor* executor,
                                     const ReplayOptions& options);

/// \brief Human-readable multi-line summary (percentiles, throughput,
/// cache, shed, per-target curve, per-class table).
void PrintReplayReport(std::ostream& os, const LoadReplayReport& report);

/// \brief The budget-vs-bound curve as CSV
/// (`target_bound,requests,ok,shed,mean_certified,mean_budget,...`).
void WriteBudgetBoundCsv(std::ostream& os, const LoadReplayReport& report);

}  // namespace smb::eval
