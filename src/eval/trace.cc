#include "eval/trace.h"

#include <bit>
#include <cmath>
#include <utility>

#include "common/rng.h"
#include "common/zipf.h"
#include "io/binary_io.h"

/// \file trace.cc
/// \brief Trace validation, binary codec and synthetic generation.

namespace smb::eval {

namespace {

/// magic(8) + version(4) + body_size(8) + body_checksum(8).
constexpr size_t kTraceHeaderSize = 8 + 4 + 8 + 8;

void WriteDouble(io::BinaryWriter* w, double value) {
  w->WriteU64(std::bit_cast<uint64_t>(value));
}

Result<double> ReadDouble(io::BinaryReader* r, std::string_view context) {
  SMB_ASSIGN_OR_RETURN(uint64_t bits, r->ReadU64(context));
  return std::bit_cast<double>(bits);
}

}  // namespace

Status ValidateTrace(const WorkloadTrace& trace) {
  if (trace.query_files.empty()) {
    return Status::InvalidArgument("trace has no query files");
  }
  if (trace.classes.empty()) {
    return Status::InvalidArgument(
        "trace has no deadline classes (needs at least 'default')");
  }
  uint64_t previous_arrival = 0;
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRequest& request = trace.requests[i];
    if (request.query_index >= trace.query_files.size()) {
      return Status::InvalidArgument(
          "trace request " + std::to_string(i) + " references query " +
          std::to_string(request.query_index) + " but the trace has " +
          std::to_string(trace.query_files.size()) + " query file(s)");
    }
    if (request.class_index >= trace.classes.size()) {
      return Status::InvalidArgument(
          "trace request " + std::to_string(i) + " references class " +
          std::to_string(request.class_index) + " but the trace has " +
          std::to_string(trace.classes.size()) + " class(es)");
    }
    if (request.arrival_us < previous_arrival) {
      return Status::InvalidArgument(
          "trace request " + std::to_string(i) +
          " arrives before its predecessor (arrivals must be "
          "non-decreasing)");
    }
    previous_arrival = request.arrival_us;
    if (!std::isfinite(request.target_bound) || request.target_bound < 0.0 ||
        request.target_bound > 1.0) {
      return Status::InvalidArgument(
          "trace request " + std::to_string(i) +
          " has target bound outside [0, 1]");
    }
    if (!std::isfinite(request.deadline_ms) || request.deadline_ms < 0.0) {
      return Status::InvalidArgument("trace request " + std::to_string(i) +
                                     " has a negative deadline");
    }
  }
  return Status::OK();
}

Result<std::string> EncodeTrace(const WorkloadTrace& trace) {
  SMB_RETURN_IF_ERROR(ValidateTrace(trace));
  io::BinaryWriter body;
  body.WriteU64(trace.seed);
  body.WriteStringVector(trace.query_files);
  body.WriteStringVector(trace.classes);
  body.WriteU64(trace.requests.size());
  for (const TraceRequest& request : trace.requests) {
    body.WriteU32(request.query_index);
    body.WriteU64(request.arrival_us);
    body.WriteU16(request.class_index);
    WriteDouble(&body, request.target_bound);
    WriteDouble(&body, request.deadline_ms);
  }

  io::BinaryWriter out;
  out.WriteBytes(kTraceMagic);
  out.WriteU32(kTraceFormatVersion);
  out.WriteU64(body.buffer().size());
  out.WriteU64(io::Checksum64(body.buffer()));
  out.WriteBytes(body.buffer());
  return std::move(out.TakeBuffer());
}

Result<WorkloadTrace> DecodeTrace(std::string_view bytes) {
  if (bytes.size() < kTraceHeaderSize) {
    return Status::ParseError(
        "trace truncated: " + std::to_string(bytes.size()) +
        " byte(s), but the header alone is " +
        std::to_string(kTraceHeaderSize) + " — regenerate the trace");
  }
  io::BinaryReader r(bytes);
  const std::string magic = r.ReadBytes(kTraceMagic.size(), "magic").value();
  if (magic != kTraceMagic) {
    return Status::ParseError(
        "not a matchbounds workload trace (magic bytes mismatch)");
  }
  const uint32_t version = r.ReadU32("version").value();
  if (version < kTraceMinFormatVersion || version > kTraceFormatVersion) {
    return Status::FailedPrecondition(
        "trace has format version " + std::to_string(version) +
        " but this binary reads versions " +
        std::to_string(kTraceMinFormatVersion) + ".." +
        std::to_string(kTraceFormatVersion) + " — regenerate the trace");
  }
  const uint64_t body_size = r.ReadU64("body size").value();
  const uint64_t body_checksum = r.ReadU64("body checksum").value();
  if (r.remaining() < body_size) {
    return Status::ParseError(
        "trace truncated: body declares " + std::to_string(body_size) +
        " byte(s) but only " + std::to_string(r.remaining()) +
        " follow the header — regenerate the trace");
  }
  if (r.remaining() > body_size) {
    return Status::ParseError(
        "trace has " + std::to_string(r.remaining() - body_size) +
        " trailing byte(s) after the declared body — file corrupted");
  }
  const std::string_view body = bytes.substr(kTraceHeaderSize);
  if (io::Checksum64(body) != body_checksum) {
    return Status::ParseError(
        "trace body checksum mismatch — file corrupted, regenerate the "
        "trace");
  }

  WorkloadTrace trace;
  SMB_ASSIGN_OR_RETURN(trace.seed, r.ReadU64("seed"));
  SMB_ASSIGN_OR_RETURN(trace.query_files,
                       r.ReadStringVector("query file table"));
  SMB_ASSIGN_OR_RETURN(trace.classes, r.ReadStringVector("class table"));
  SMB_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64("request count"));
  // Each request occupies 30 body bytes; reject a count the remaining
  // bytes cannot hold before reserving anything.
  constexpr uint64_t kRequestBytes = 4 + 8 + 2 + 8 + 8;
  if (count > r.remaining() / kRequestBytes) {
    return Status::ParseError(
        "trace declares " + std::to_string(count) +
        " request(s) but only " + std::to_string(r.remaining()) +
        " body byte(s) remain — file corrupted");
  }
  trace.requests.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TraceRequest request;
    SMB_ASSIGN_OR_RETURN(request.query_index, r.ReadU32("query index"));
    SMB_ASSIGN_OR_RETURN(request.arrival_us, r.ReadU64("arrival"));
    SMB_ASSIGN_OR_RETURN(request.class_index, r.ReadU16("class index"));
    SMB_ASSIGN_OR_RETURN(request.target_bound,
                         ReadDouble(&r, "target bound"));
    SMB_ASSIGN_OR_RETURN(request.deadline_ms, ReadDouble(&r, "deadline"));
    trace.requests.push_back(request);
  }
  if (r.remaining() != 0) {
    return Status::ParseError(
        "trace has " + std::to_string(r.remaining()) +
        " undecoded byte(s) after the last request — file corrupted");
  }
  // Semantic validation after integrity: a bit flip inside an index field
  // that survives the checksum odds still cannot produce an out-of-range
  // replay.
  SMB_RETURN_IF_ERROR(ValidateTrace(trace));
  return trace;
}

Status SaveTrace(const std::string& path, const WorkloadTrace& trace) {
  SMB_ASSIGN_OR_RETURN(std::string encoded, EncodeTrace(trace));
  return io::WriteBinaryFileAtomic(path, encoded);
}

Result<WorkloadTrace> LoadTrace(const std::string& path) {
  SMB_ASSIGN_OR_RETURN(std::string bytes, io::ReadBinaryFile(path));
  return DecodeTrace(bytes);
}

Result<WorkloadTrace> GenerateTrace(std::vector<std::string> query_files,
                                    const TraceGenOptions& options) {
  if (query_files.empty()) {
    return Status::InvalidArgument(
        "trace generation needs at least one query file");
  }
  if (options.num_requests == 0) {
    return Status::InvalidArgument("trace needs num_requests > 0");
  }
  if (!(options.arrival_rate_qps > 0.0) ||
      !std::isfinite(options.arrival_rate_qps)) {
    return Status::InvalidArgument("arrival_rate_qps must be > 0");
  }
  if (options.zipf_exponent < 0.0) {
    return Status::InvalidArgument("zipf_exponent must be >= 0");
  }
  for (const double target : options.target_mix) {
    if (!std::isfinite(target) || target < 0.0 || target > 1.0) {
      return Status::InvalidArgument("target_mix entries must be in [0, 1]");
    }
  }
  std::vector<TraceClassSpec> classes = options.classes;
  if (classes.empty()) classes.push_back(TraceClassSpec{});
  if (classes.size() > UINT16_MAX) {
    return Status::InvalidArgument("too many deadline classes");
  }
  double total_weight = 0.0;
  for (const TraceClassSpec& spec : classes) {
    if (!(spec.weight > 0.0) || !std::isfinite(spec.weight)) {
      return Status::InvalidArgument("class '" + spec.name +
                                     "' needs weight > 0");
    }
    if (!std::isfinite(spec.deadline_ms) || spec.deadline_ms < 0.0) {
      return Status::InvalidArgument("class '" + spec.name +
                                     "' has a negative deadline");
    }
    total_weight += spec.weight;
  }

  WorkloadTrace trace;
  trace.seed = options.seed;
  trace.query_files = std::move(query_files);
  for (const TraceClassSpec& spec : classes) {
    trace.classes.push_back(spec.name);
  }

  Rng rng(options.seed);
  const ZipfSampler popularity(trace.query_files.size(),
                               options.zipf_exponent);
  double arrival_seconds = 0.0;
  trace.requests.reserve(options.num_requests);
  for (uint64_t i = 0; i < options.num_requests; ++i) {
    TraceRequest request;
    request.query_index = static_cast<uint32_t>(popularity.Sample(&rng));
    // Poisson process: exponential inter-arrival gaps at the mean rate.
    const double u = rng.UniformDouble();
    arrival_seconds += -std::log(1.0 - u) / options.arrival_rate_qps;
    request.arrival_us = static_cast<uint64_t>(arrival_seconds * 1e6);
    double pick = rng.UniformDouble() * total_weight;
    uint16_t class_index = 0;
    for (size_t c = 0; c < classes.size(); ++c) {
      pick -= classes[c].weight;
      if (pick <= 0.0) {
        class_index = static_cast<uint16_t>(c);
        break;
      }
    }
    request.class_index = class_index;
    request.deadline_ms = classes[class_index].deadline_ms;
    if (!options.target_mix.empty()) {
      request.target_bound =
          options.target_mix[rng.UniformIndex(options.target_mix.size())];
    }
    trace.requests.push_back(request);
  }
  SMB_RETURN_IF_ERROR(ValidateTrace(trace));
  return trace;
}

}  // namespace smb::eval
