#include "eval/experiment_batch.h"

#include <cstdlib>
#include <set>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "io/csv.h"

/// \file experiment_batch.cc
/// \brief Batch-grammar parsing and typed parameter access.

namespace smb::eval {

namespace {

Result<std::pair<std::string, std::string>> SplitPair(
    const std::string& token, size_t line_number) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::ParseError(
        "batch line " + std::to_string(line_number) + ": token '" + token +
        "' is not key=value");
  }
  return std::make_pair(token.substr(0, eq), token.substr(eq + 1));
}

}  // namespace

Result<ExperimentBatch> ParseExperimentBatch(std::string_view text) {
  ExperimentBatch batch;
  std::map<std::string, std::string> defaults;
  std::set<std::string> names;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> tokens = SplitWhitespace(trimmed);
    if (tokens[0] == "set") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        SMB_ASSIGN_OR_RETURN(auto pair, SplitPair(tokens[i], line_number));
        defaults[pair.first] = pair.second;
      }
      continue;
    }
    if (tokens[0] == "experiment") {
      ExperimentSpec spec;
      spec.params = defaults;
      for (size_t i = 1; i < tokens.size(); ++i) {
        SMB_ASSIGN_OR_RETURN(auto pair, SplitPair(tokens[i], line_number));
        if (pair.first == "name") {
          spec.name = pair.second;
        } else {
          spec.params[pair.first] = std::move(pair.second);
        }
      }
      if (spec.name.empty()) {
        return Status::ParseError("batch line " +
                                  std::to_string(line_number) +
                                  ": experiment needs name=<id>");
      }
      if (!names.insert(spec.name).second) {
        return Status::ParseError("batch line " +
                                  std::to_string(line_number) +
                                  ": duplicate experiment name '" +
                                  spec.name + "'");
      }
      batch.experiments.push_back(std::move(spec));
      continue;
    }
    return Status::ParseError("batch line " + std::to_string(line_number) +
                              ": unknown directive '" + tokens[0] +
                              "' (expected: set|experiment)");
  }
  if (batch.experiments.empty()) {
    return Status::InvalidArgument(
        "batch file declares no experiments (needs at least one "
        "'experiment name=...' line)");
  }
  return batch;
}

Result<ExperimentBatch> LoadExperimentBatch(const std::string& path) {
  SMB_ASSIGN_OR_RETURN(std::string text, io::ReadTextFile(path));
  return ParseExperimentBatch(text);
}

std::string GetParam(const ExperimentSpec& spec, const std::string& key,
                     std::string default_value) {
  const auto it = spec.params.find(key);
  return it == spec.params.end() ? std::move(default_value) : it->second;
}

Result<double> GetParamDouble(const ExperimentSpec& spec,
                              const std::string& key,
                              double default_value) {
  const auto it = spec.params.find(key);
  if (it == spec.params.end()) return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::ParseError("experiment '" + spec.name + "': " + key +
                              "=" + it->second + " is not a number");
  }
  return parsed;
}

Result<uint64_t> GetParamUint(const ExperimentSpec& spec,
                              const std::string& key,
                              uint64_t default_value) {
  const auto it = spec.params.find(key);
  if (it == spec.params.end()) return default_value;
  char* end = nullptr;
  const unsigned long long parsed =
      std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::ParseError("experiment '" + spec.name + "': " + key +
                              "=" + it->second +
                              " is not a non-negative integer");
  }
  return static_cast<uint64_t>(parsed);
}

}  // namespace smb::eval
