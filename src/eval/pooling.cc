#include "eval/pooling.h"

#include <set>

/// \file pooling.cc
/// \brief TREC-style pooling implementation: pooled judgments from system
/// runs.

namespace smb::eval {

namespace {

Result<std::set<match::Mapping::Key>> BuildPool(
    const std::vector<const match::AnswerSet*>& systems,
    const PoolingOptions& options) {
  if (systems.empty()) {
    return Status::InvalidArgument("no systems to pool");
  }
  std::set<match::Mapping::Key> pool;
  for (const match::AnswerSet* system : systems) {
    if (system == nullptr) {
      return Status::InvalidArgument("null answer set in pool");
    }
    size_t take = std::min(options.pool_depth, system->size());
    for (size_t i = 0; i < take; ++i) {
      pool.insert(system->mappings()[i].key());
    }
  }
  return pool;
}

}  // namespace

Result<GroundTruth> PoolJudgments(
    const std::vector<const match::AnswerSet*>& systems,
    const std::function<bool(const match::Mapping&)>& oracle,
    const PoolingOptions& options) {
  if (!oracle) {
    return Status::InvalidArgument("oracle callback is empty");
  }
  SMB_ASSIGN_OR_RETURN(std::set<match::Mapping::Key> pool,
                       BuildPool(systems, options));
  GroundTruth truth;
  // The oracle judges identity, not scores; pass a scoreless mapping.
  for (const auto& key : pool) {
    match::Mapping m;
    m.schema_index = key.schema_index;
    m.targets = key.targets;
    m.delta = 0.0;
    if (oracle(m)) truth.AddCorrect(key);
  }
  return truth;
}

Result<size_t> PoolSize(const std::vector<const match::AnswerSet*>& systems,
                        const PoolingOptions& options) {
  SMB_ASSIGN_OR_RETURN(std::set<match::Mapping::Key> pool,
                       BuildPool(systems, options));
  return pool.size();
}

}  // namespace smb::eval
