#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

/// \file replay_client.h
/// \brief Multi-connection replay client for the serve frontend: sends a
/// canned request file over N concurrent TCP connections and collects the
/// responses in request order.
///
/// This is the measurement/verification harness for the concurrent server:
/// CI replays the same requests over several connections and byte-diffs
/// the written answers against a single-threaded in-memory run, and the
/// serve benchmark uses it to drive throughput. Requests are distributed
/// round-robin across connections; each connection sends strictly
/// request-by-request (write line, read response line), which matches the
/// server's per-connection ordering guarantee.
namespace smb::eval {

/// \brief Where and how to replay.
struct ReplayClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Concurrent connections (>= 1); requests are split round-robin.
  size_t connections = 1;
};

/// \brief Everything a replay produced.
struct ReplayOutcome {
  /// One response line per request, in the original request order.
  std::vector<std::string> responses;
  /// Responses that started with `ok`.
  uint64_t ok_count = 0;
  /// Responses that did not (the server's `err` lines).
  uint64_t err_count = 0;
  /// `ok` responses flagged `shed=yes`.
  uint64_t shed_count = 0;
};

/// \brief Replays `request_lines` (already filtered: no blanks/comments)
/// against a running server. Returns an error Status on connection or
/// transport failure; protocol-level `err` responses are counted, not
/// errors.
Result<ReplayOutcome> ReplayRequests(
    const ReplayClientOptions& options,
    const std::vector<std::string>& request_lines);

}  // namespace smb::eval
