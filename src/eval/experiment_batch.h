#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

/// \file experiment_batch.h
/// \brief Declarative experiment-batch files for load-harness sweeps.
///
/// One text file enumerates a whole repository-size × matcher × policy
/// sweep and a single driver executes it (the DNNsim batch.proto /
/// StatsWriter idea, line-based instead of protobuf so it needs no new
/// dependency). Grammar, one directive per line, `#` comments:
/// \code
///   set <key>=<value> ...          # defaults for all later experiments
///   experiment name=<id> [<key>=<value> ...]
/// \endcode
/// `set` lines apply to the experiments *after* them; each `experiment`
/// line snapshots the current defaults and overrides them with its own
/// pairs. Keys are free-form here — the batch *runner*
/// (harness/batch_runner.h) defines which keys it understands and
/// rejects unknown ones, so typos fail loudly at run start, not silently
/// mid-sweep.

namespace smb::eval {

/// \brief One experiment: a name and its resolved key=value parameters.
struct ExperimentSpec {
  std::string name;
  std::map<std::string, std::string> params;
};

/// \brief A parsed batch file.
struct ExperimentBatch {
  std::vector<ExperimentSpec> experiments;
};

/// \brief Parses the batch grammar; fails on malformed lines, missing or
/// duplicate experiment names.
Result<ExperimentBatch> ParseExperimentBatch(std::string_view text);

/// \brief Reads and parses a batch file.
Result<ExperimentBatch> LoadExperimentBatch(const std::string& path);

/// \name Typed parameter accessors (missing key yields the default;
/// malformed values are errors naming the experiment and key).
/// @{
std::string GetParam(const ExperimentSpec& spec, const std::string& key,
                     std::string default_value);
Result<double> GetParamDouble(const ExperimentSpec& spec,
                              const std::string& key, double default_value);
Result<uint64_t> GetParamUint(const ExperimentSpec& spec,
                              const std::string& key,
                              uint64_t default_value);
/// @}

}  // namespace smb::eval
