#include "eval/metrics.h"

/// \file metrics.cc
/// \brief Effectiveness metric aggregation across query workloads.

namespace smb::eval {

double Precision(const ConfusionCounts& counts) {
  if (counts.answers == 0) return 1.0;
  return static_cast<double>(counts.true_positives) /
         static_cast<double>(counts.answers);
}

double Recall(const ConfusionCounts& counts) {
  if (counts.total_correct == 0) return 1.0;
  return static_cast<double>(counts.true_positives) /
         static_cast<double>(counts.total_correct);
}

double F1Score(const ConfusionCounts& counts) {
  double p = Precision(counts);
  double r = Recall(counts);
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

ConfusionCounts Evaluate(const match::AnswerSet& answers,
                         const GroundTruth& truth, double threshold) {
  ConfusionCounts counts;
  counts.answers = answers.CountAtThreshold(threshold);
  counts.true_positives = truth.CountTruePositives(answers, threshold);
  counts.total_correct = truth.size();
  return counts;
}

ConfusionCounts EvaluateAll(const match::AnswerSet& answers,
                            const GroundTruth& truth) {
  ConfusionCounts counts;
  counts.answers = answers.size();
  counts.true_positives = truth.CountTruePositives(answers);
  counts.total_correct = truth.size();
  return counts;
}

}  // namespace smb::eval
