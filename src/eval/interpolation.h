#pragma once

#include <array>
#include <vector>

#include "common/result.h"
#include "eval/pr_curve.h"

/// \file interpolation.h
/// \brief The interpolated 11-point P/R curve (§2.4, Figure 6).
///
/// Literature typically reports precision at the 11 fixed recall levels
/// 0, 0.1, …, 1 using the standard interpolation
/// `P_interp(r) = max { P(r') : r' ≥ r }` over the measured points.
/// Note what this representation *loses*: the threshold values and the
/// answer counts — the gap §4.1 of the paper is about.

namespace smb::eval {

/// \brief Precision at recall levels 0.0, 0.1, …, 1.0.
struct ElevenPointCurve {
  static constexpr size_t kLevels = 11;
  std::array<double, kLevels> precision{};

  /// The recall level of entry `i` (= i / 10).
  static double RecallLevel(size_t i) { return static_cast<double>(i) / 10.0; }

  /// Mean of the 11 precision values (a summary statistic, akin to AP).
  double MeanPrecision() const;
};

/// \brief Interpolates a measured curve to the 11 standard recall levels.
///
/// Levels above the maximum measured recall get precision 0 (the system
/// never reached them).
Result<ElevenPointCurve> InterpolateElevenPoint(const PrCurve& measured);

/// \brief Piecewise-constant interpolated precision at an arbitrary recall
/// level: `max { P(r') : r' >= r }` over the measured points; 0 beyond the
/// maximum measured recall.
double InterpolatedPrecisionAt(const PrCurve& measured, double recall);

}  // namespace smb::eval
