#include "eval/pr_curve.h"

#include <cmath>

#include "common/strings.h"

/// \file pr_curve.cc
/// \brief Precision-recall curve construction and interpolation entry
/// points.

namespace smb::eval {

namespace {

Status CheckThresholds(const std::vector<double>& thresholds) {
  if (thresholds.empty()) {
    return Status::InvalidArgument("threshold list is empty");
  }
  for (size_t i = 0; i < thresholds.size(); ++i) {
    if (thresholds[i] < 0.0) {
      return Status::InvalidArgument("thresholds must be non-negative");
    }
    if (i > 0 && thresholds[i] <= thresholds[i - 1]) {
      return Status::InvalidArgument("thresholds must be strictly increasing");
    }
  }
  return Status::OK();
}

}  // namespace

Result<PrCurve> PrCurve::Measure(const match::AnswerSet& answers,
                                 const GroundTruth& truth,
                                 const std::vector<double>& thresholds) {
  return MeasurePooled({&answers}, {&truth}, thresholds);
}

Result<PrCurve> PrCurve::MeasurePooled(
    const std::vector<const match::AnswerSet*>& answer_sets,
    const std::vector<const GroundTruth*>& truths,
    const std::vector<double>& thresholds) {
  SMB_RETURN_IF_ERROR(CheckThresholds(thresholds));
  if (answer_sets.size() != truths.size()) {
    return Status::InvalidArgument(
        "answer_sets and truths must have equal length");
  }
  if (answer_sets.empty()) {
    return Status::InvalidArgument("no answer sets supplied");
  }
  size_t total_correct = 0;
  for (const GroundTruth* t : truths) {
    if (t == nullptr) return Status::InvalidArgument("null ground truth");
    total_correct += t->size();
  }
  if (total_correct == 0) {
    return Status::InvalidArgument(
        "H is empty: recall is undefined for the whole collection");
  }

  PrCurve curve;
  curve.total_correct_ = total_correct;
  curve.points_.reserve(thresholds.size());
  for (double delta : thresholds) {
    PrPoint point;
    point.threshold = delta;
    for (size_t q = 0; q < answer_sets.size(); ++q) {
      if (answer_sets[q] == nullptr) {
        return Status::InvalidArgument("null answer set");
      }
      ConfusionCounts c = Evaluate(*answer_sets[q], *truths[q], delta);
      point.answers += c.answers;
      point.true_positives += c.true_positives;
    }
    ConfusionCounts all{point.answers, point.true_positives, total_correct};
    point.precision = Precision(all);
    point.recall = Recall(all);
    curve.points_.push_back(point);
  }
  SMB_RETURN_IF_ERROR(curve.Validate());
  return curve;
}

Status PrCurve::Validate() const {
  for (size_t i = 0; i < points_.size(); ++i) {
    const PrPoint& p = points_[i];
    if (p.true_positives > p.answers) {
      return Status::Internal(StrFormat(
          "point %zu: true positives (%zu) exceed answers (%zu)", i,
          p.true_positives, p.answers));
    }
    if (total_correct_ > 0 && p.true_positives > total_correct_) {
      return Status::Internal(
          StrFormat("point %zu: true positives exceed |H|", i));
    }
    if (i > 0) {
      if (points_[i].threshold <= points_[i - 1].threshold) {
        return Status::Internal("thresholds are not strictly increasing");
      }
      if (points_[i].answers < points_[i - 1].answers) {
        return Status::Internal(
            "answer counts are not monotone in the threshold");
      }
      if (points_[i].true_positives < points_[i - 1].true_positives) {
        return Status::Internal(
            "true positive counts are not monotone in the threshold");
      }
    }
    // P/R must agree with the counts they were derived from.
    ConfusionCounts c{p.answers, p.true_positives, total_correct_};
    if (std::fabs(Precision(c) - p.precision) > 1e-9 ||
        std::fabs(Recall(c) - p.recall) > 1e-9) {
      return Status::Internal(
          StrFormat("point %zu: precision/recall inconsistent with counts", i));
    }
  }
  return Status::OK();
}

Result<PrCurve> PrCurve::FromPoints(std::vector<PrPoint> points,
                                    size_t total_correct) {
  PrCurve curve;
  curve.points_ = std::move(points);
  curve.total_correct_ = total_correct;
  SMB_RETURN_IF_ERROR(curve.Validate());
  return curve;
}

std::vector<double> UniformThresholds(double max, double step) {
  std::vector<double> out;
  if (step <= 0.0 || max <= 0.0) return out;
  for (double t = step; t <= max + 1e-12; t += step) {
    out.push_back(std::min(t, max));
  }
  return out;
}

}  // namespace smb::eval
