#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "eval/ground_truth.h"
#include "match/answer_set.h"

/// \file pooling.h
/// \brief TREC-style pooling (Harman [10], discussed in §1).
///
/// For each matching problem, the top-`pool_depth` answers of every
/// participating system are merged and only that pool is judged. The paper
/// cites Zobel's finding that a depth of 100 is adequate [18]. In this
/// reproduction the "human judge" is an oracle callback (backed by the
/// synthetic planted truth), which lets tests quantify exactly what pooling
/// misses.

namespace smb::eval {

/// \brief Pooling parameters.
struct PoolingOptions {
  /// Answers taken from the top of each system's ranking.
  size_t pool_depth = 100;
};

/// \brief Judges the pooled top answers of all systems with `oracle` and
/// returns the resulting (possibly incomplete) ground truth.
Result<GroundTruth> PoolJudgments(
    const std::vector<const match::AnswerSet*>& systems,
    const std::function<bool(const match::Mapping&)>& oracle,
    const PoolingOptions& options = {});

/// \brief Number of judgments a human would perform for this pool
/// (pool size after deduplication) — the effort metric pooling minimizes.
Result<size_t> PoolSize(const std::vector<const match::AnswerSet*>& systems,
                        const PoolingOptions& options = {});

}  // namespace smb::eval
