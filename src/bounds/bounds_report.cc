#include "bounds/bounds_report.h"

/// \file bounds_report.cc
/// \brief End-to-end bounds reports: measured-curve and literature inputs
/// through the incremental algorithm (the practitioner entry points of
/// §3; see bounds_report.h for the workflow).

#include <algorithm>

#include "common/strings.h"

namespace smb::bounds {

Result<BoundsInput> InputFromMeasuredCurve(
    const eval::PrCurve& s1_curve, const std::vector<size_t>& s2_sizes) {
  SMB_RETURN_IF_ERROR(s1_curve.Validate());
  if (s2_sizes.size() != s1_curve.size()) {
    return Status::InvalidArgument(StrFormat(
        "S2 has %zu size observations but the S1 curve has %zu points",
        s2_sizes.size(), s1_curve.size()));
  }
  BoundsInput input;
  input.total_correct = static_cast<double>(s1_curve.total_correct());
  for (size_t i = 0; i < s1_curve.size(); ++i) {
    const eval::PrPoint& p = s1_curve.points()[i];
    input.thresholds.push_back(p.threshold);
    input.s1_answers.push_back(static_cast<double>(p.answers));
    input.s1_correct.push_back(static_cast<double>(p.true_positives));
    input.s2_answers.push_back(static_cast<double>(s2_sizes[i]));
  }
  SMB_RETURN_IF_ERROR(input.Validate());
  return input;
}

Result<BoundsInput> InputFromPrAndRatios(
    const std::vector<double>& thresholds,
    const std::vector<double>& s1_precision,
    const std::vector<double>& s1_recall,
    const std::vector<double>& ratios) {
  const size_t n = thresholds.size();
  if (s1_precision.size() != n || s1_recall.size() != n ||
      ratios.size() != n) {
    return Status::InvalidArgument(
        "thresholds, precisions, recalls and ratios must have equal length");
  }
  BoundsInput input;
  input.total_correct = 1.0;  // |H|-normalized masses
  for (size_t i = 0; i < n; ++i) {
    SMB_ASSIGN_OR_RETURN(MassPoint s1,
                         MassFromPr(s1_precision[i], s1_recall[i]));
    if (ratios[i] < 0.0 || ratios[i] > 1.0) {
      return Status::InvalidArgument(StrFormat(
          "ratio at index %zu is %g, outside [0, 1]", i, ratios[i]));
    }
    input.thresholds.push_back(thresholds[i]);
    input.s1_answers.push_back(s1.answers);
    input.s1_correct.push_back(s1.correct);
    input.s2_answers.push_back(s1.answers * ratios[i]);
  }
  SMB_RETURN_IF_ERROR(input.Validate());
  return input;
}

Result<BoundsReport> ComputeBoundsReport(const BoundsInput& input) {
  BoundsReport report;
  SMB_ASSIGN_OR_RETURN(report.incremental, ComputeIncrementalBounds(input));
  SMB_ASSIGN_OR_RETURN(report.naive, ComputeNaiveBounds(input));
  return report;
}

double GuaranteedRecallAt(const BoundsCurve& curve, double min_precision) {
  double guaranteed = 0.0;
  for (const BoundsPoint& p : curve.points) {
    if (p.worst.precision >= min_precision) {
      guaranteed = std::max(guaranteed, p.worst.recall);
    }
  }
  return guaranteed;
}

namespace {

double HarmonicMean(double p, double r) {
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

}  // namespace

F1Bounds F1BoundsAt(const BoundsPoint& point) {
  F1Bounds f1;
  f1.worst = HarmonicMean(point.worst.precision, point.worst.recall);
  f1.best = HarmonicMean(point.best.precision, point.best.recall);
  f1.random = HarmonicMean(point.random.precision, point.random.recall);
  return f1;
}

Result<std::vector<TopNBound>> ComputeTopNBounds(
    const match::AnswerSet& s1_answers, const eval::GroundTruth& truth,
    const match::AnswerSet& s2_answers, const std::vector<size_t>& ns) {
  if (ns.empty()) {
    return Status::InvalidArgument("no top-N values requested");
  }
  if (s2_answers.empty()) {
    return Status::InvalidArgument("S2 produced no answers");
  }
  if (!match::AnswerSet::IsSubsetOf(s2_answers, s1_answers)) {
    return Status::FailedPrecondition(
        "S2 answers are not a subset of S1 answers");
  }
  // Threshold of S2's N-th ranked answer, per requested N.
  std::vector<size_t> sorted = ns;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> thresholds;
  std::vector<std::pair<size_t, double>> n_to_delta;
  for (size_t n : sorted) {
    if (n == 0) return Status::InvalidArgument("top-N requires N >= 1");
    size_t idx = std::min(n, s2_answers.size()) - 1;
    double delta = s2_answers.mappings()[idx].delta;
    n_to_delta.emplace_back(n, delta);
    if (thresholds.empty() || delta > thresholds.back()) {
      thresholds.push_back(delta);
    }
  }
  SMB_ASSIGN_OR_RETURN(eval::PrCurve curve,
                       eval::PrCurve::Measure(s1_answers, truth, thresholds));
  SMB_ASSIGN_OR_RETURN(
      BoundsInput input,
      InputFromMeasuredCurve(curve, s2_answers.SizesAt(thresholds)));
  SMB_ASSIGN_OR_RETURN(BoundsCurve bounds, ComputeIncrementalBounds(input));

  std::vector<TopNBound> out;
  for (const auto& [n, delta] : n_to_delta) {
    TopNBound entry;
    entry.n = n;
    entry.threshold = delta;
    for (size_t i = 0; i < thresholds.size(); ++i) {
      if (thresholds[i] == delta) {
        entry.bounds = bounds.points[i];
        break;
      }
    }
    out.push_back(entry);
  }
  return out;
}

}  // namespace smb::bounds
