#include "bounds/interpolated_input.h"

/// \file interpolated_input.cc
/// \brief §4.1: reconstructing a measured-style curve (and bounds input)
/// from an interpolated 11-point P/R curve via an |H| guess.

#include <algorithm>

#include "common/strings.h"

namespace smb::bounds {

Result<ReconstructedCurve> ReconstructFromElevenPoint(
    const eval::ElevenPointCurve& curve, double h_guess) {
  if (h_guess <= 0.0) {
    return Status::InvalidArgument("|H| guess must be positive");
  }
  ReconstructedCurve out;
  out.total_correct = h_guess;
  for (size_t i = 0; i < eval::ElevenPointCurve::kLevels; ++i) {
    double r = eval::ElevenPointCurve::RecallLevel(i);
    double p = curve.precision[i];
    if (r <= 0.0 || p <= 0.0) continue;  // |A| unknowable at these levels
    out.recall_levels.push_back(r);
    out.answers.push_back(r * h_guess / p);
    out.correct.push_back(r * h_guess);
  }
  if (out.recall_levels.size() < 2) {
    return Status::InvalidArgument(
        "fewer than two usable points on the interpolated curve");
  }
  for (size_t i = 1; i < out.answers.size(); ++i) {
    if (out.answers[i] < out.answers[i - 1] - 1e-9) {
      return Status::InvalidArgument(StrFormat(
          "implied answer counts are not monotone between recall %.1f and "
          "%.1f: the published curve is inconsistent with a threshold sweep",
          out.recall_levels[i - 1], out.recall_levels[i]));
    }
  }
  return out;
}

Result<std::vector<double>> CorrelateThresholds(
    const ReconstructedCurve& curve,
    const std::vector<double>& sweep_thresholds,
    const std::vector<size_t>& sweep_sizes) {
  if (sweep_thresholds.size() != sweep_sizes.size() ||
      sweep_thresholds.empty()) {
    return Status::InvalidArgument(
        "sweep thresholds/sizes must be non-empty and equal length");
  }
  for (size_t i = 1; i < sweep_thresholds.size(); ++i) {
    if (sweep_thresholds[i] <= sweep_thresholds[i - 1]) {
      return Status::InvalidArgument(
          "sweep thresholds must be strictly increasing");
    }
    if (sweep_sizes[i] < sweep_sizes[i - 1]) {
      return Status::InvalidArgument("sweep sizes must be non-decreasing");
    }
  }
  std::vector<double> deltas;
  deltas.reserve(curve.answers.size());
  for (double target : curve.answers) {
    // Smallest threshold whose size reaches the target count.
    size_t lo = 0;
    size_t hi = sweep_sizes.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (static_cast<double>(sweep_sizes[mid]) >= target - 1e-9) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    deltas.push_back(lo < sweep_thresholds.size() ? sweep_thresholds[lo]
                                                  : sweep_thresholds.back());
  }
  return deltas;
}

Result<BoundsInput> InputFromReconstructed(const ReconstructedCurve& curve,
                                           const std::vector<double>& ratios) {
  if (ratios.size() != curve.answers.size()) {
    return Status::InvalidArgument(StrFormat(
        "got %zu ratios for %zu reconstructed points", ratios.size(),
        curve.answers.size()));
  }
  BoundsInput input;
  input.total_correct = curve.total_correct;
  for (size_t i = 0; i < curve.answers.size(); ++i) {
    if (ratios[i] < 0.0 || ratios[i] > 1.0) {
      return Status::InvalidArgument(
          StrFormat("ratio at index %zu outside [0, 1]", i));
    }
    // Recall levels double as the (monotone) threshold axis: the real δ
    // values are unknown, only their order matters to the algorithm.
    input.thresholds.push_back(curve.recall_levels[i]);
    input.s1_answers.push_back(curve.answers[i]);
    input.s1_correct.push_back(curve.correct[i]);
    input.s2_answers.push_back(curve.answers[i] * ratios[i]);
  }
  // Reconstructed |A1| masses are approximate (they depend on the |H|
  // guess), so ratios measured on the real systems can slightly overshoot
  // an increment; repair by clamping rather than rejecting (§4.1 inputs are
  // best-effort by nature).
  input = ClampToContainment(std::move(input));
  SMB_RETURN_IF_ERROR(input.Validate());
  return input;
}

}  // namespace smb::bounds
