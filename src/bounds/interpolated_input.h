#pragma once

#include <vector>

#include "bounds/incremental_bounds.h"
#include "common/result.h"
#include "eval/interpolation.h"

/// \file interpolated_input.h
/// \brief Using an interpolated (11-point) P/R curve as input (§4.1).
///
/// An interpolated curve lacks the thresholds and answer counts a measured
/// curve carries. The missing link is |H|: with a guess for it,
/// `|A| = R·|H| / P` recovers answer counts at each recall level, which can
/// then be correlated with the answer counts of a rebuilt system — turning
/// the interpolated curve back into a measured one.

namespace smb::bounds {

/// \brief A measured-style curve reconstructed from 11-point data.
struct ReconstructedCurve {
  /// Recall levels kept (levels with P = 0 and the R = 0 level are dropped
  /// — their answer mass is unknowable).
  std::vector<double> recall_levels;
  /// |A| = R·|H|/P at each kept level.
  std::vector<double> answers;
  /// |T| = R·|H| at each kept level.
  std::vector<double> correct;
  /// The |H| guess that produced the masses.
  double total_correct = 0.0;
};

/// \brief Applies `|A| = R·|H|/P` to every usable point of an 11-point
/// curve.
///
/// Fails when fewer than two levels are usable, or when the implied answer
/// masses are not monotone in recall (an inconsistent published curve).
Result<ReconstructedCurve> ReconstructFromElevenPoint(
    const eval::ElevenPointCurve& curve, double h_guess);

/// \brief §4.1's correlation step: given the rebuilt system's measured
/// answer counts over a threshold sweep, finds for each reconstructed |A|
/// level the smallest threshold at which the rebuilt system has produced at
/// least that many answers. This assigns a δ-value to each point of the
/// reconstructed curve.
///
/// `sweep_thresholds`/`sweep_sizes` describe the rebuilt system
/// (strictly increasing thresholds, non-decreasing sizes). Reconstructed
/// levels beyond the sweep's final size get the final threshold.
Result<std::vector<double>> CorrelateThresholds(
    const ReconstructedCurve& curve,
    const std::vector<double>& sweep_thresholds,
    const std::vector<size_t>& sweep_sizes);

/// \brief Builds a BoundsInput from a reconstructed curve plus S2's answer
/// size ratios at the same levels (|A2| = ratio · |A1|).
Result<BoundsInput> InputFromReconstructed(const ReconstructedCurve& curve,
                                           const std::vector<double>& ratios);

}  // namespace smb::bounds
