#include "bounds/sub_increment.h"

/// \file sub_increment.cc
/// \brief §4.2 (Figure 13): boxing the P/R point of an intermediate
/// threshold between two measured thresholds of a rebuilt system.

#include <algorithm>

#include "common/strings.h"

namespace smb::bounds {

Result<SubIncrementPoint> SubIncrementBoundsAt(
    const MassPoint& at_lo, const MassPoint& at_hi, double h,
    double answers_at_intermediate) {
  if (h <= 0.0) {
    return Status::InvalidArgument("|H| must be positive");
  }
  SMB_ASSIGN_OR_RETURN(MassPoint increment, IncrementBetween(at_lo, at_hi));
  const double a_prime = answers_at_intermediate;
  if (a_prime < at_lo.answers - 1e-9 || a_prime > at_hi.answers + 1e-9) {
    return Status::OutOfRange(StrFormat(
        "intermediate answer count %g outside [%g, %g]", a_prime,
        at_lo.answers, at_hi.answers));
  }
  const double new_answers =
      std::clamp(a_prime - at_lo.answers, 0.0, increment.answers);
  // Best: every new answer correct, capped by the increment's correct mass.
  const double best_correct =
      at_lo.correct + std::min(new_answers, increment.correct);
  // Worst: every new answer incorrect, floored by the incorrect mass
  // available in the increment.
  const double incorrect_available = increment.answers - increment.correct;
  const double worst_correct =
      at_lo.correct + std::max(0.0, new_answers - incorrect_available);

  auto to_pr = [&](double correct) {
    PrValue v;
    v.recall = correct / h;
    v.precision = a_prime > 0.0 ? correct / a_prime : 1.0;
    return v;
  };

  SubIncrementPoint point;
  point.answers = a_prime;
  point.worst = to_pr(worst_correct);
  point.best = to_pr(best_correct);
  point.midpoint = to_pr((worst_correct + best_correct) / 2.0);
  return point;
}

Result<std::vector<SubIncrementPoint>> SubIncrementSweep(
    const MassPoint& at_lo, const MassPoint& at_hi, double h, size_t steps) {
  if (steps == 0) {
    return Status::InvalidArgument("steps must be positive");
  }
  std::vector<SubIncrementPoint> out;
  out.reserve(steps + 1);
  for (size_t i = 0; i <= steps; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(steps);
    double a_prime =
        at_lo.answers + frac * (at_hi.answers - at_lo.answers);
    SMB_ASSIGN_OR_RETURN(SubIncrementPoint point,
                         SubIncrementBoundsAt(at_lo, at_hi, h, a_prime));
    out.push_back(point);
  }
  return out;
}

}  // namespace smb::bounds
