#include "bounds/case_bounds.h"

/// \file case_bounds.cc
/// \brief Best-/worst-case effectiveness formulas of §3.1 (Equations 1-6),
/// in both the mass form and the paper's (P1, R1, Â) ratio form.

#include <algorithm>

#include "common/strings.h"

namespace smb::bounds {

double BestCaseTrueMass(double t1, double a2) {
  return std::min(t1, a2);
}

double WorstCaseTrueMass(double a1, double t1, double a2) {
  return std::max(0.0, a2 - (a1 - t1));
}

namespace {

Status CheckDomain(double p1, double r1, double ratio) {
  if (p1 <= 0.0 || p1 > 1.0) {
    return Status::InvalidArgument(
        StrFormat("P1 must be in (0, 1], got %g", p1));
  }
  if (r1 < 0.0 || r1 > 1.0) {
    return Status::InvalidArgument(
        StrFormat("R1 must be in [0, 1], got %g", r1));
  }
  if (ratio <= 0.0 || ratio > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "answer size ratio must be in (0, 1], got %g (A2 ⊆ A1 forces "
        "|A2| <= |A1|)",
        ratio));
  }
  return Status::OK();
}

}  // namespace

Result<PrValue> BestCasePr(double p1, double r1, double ratio) {
  SMB_RETURN_IF_ERROR(CheckDomain(p1, r1, ratio));
  PrValue out;
  // Equation (2): P2 = P1 · min(1/Â, 1/P1).
  out.precision = p1 * std::min(1.0 / ratio, 1.0 / p1);
  // Equation (3): R2 = R1 · min(1, Â/P1).
  out.recall = r1 * std::min(1.0, ratio / p1);
  return out;
}

Result<PrValue> WorstCasePr(double p1, double r1, double ratio) {
  SMB_RETURN_IF_ERROR(CheckDomain(p1, r1, ratio));
  PrValue out;
  // Equation (5): P2 = max(0, 1 − (1 − P1)/Â).
  out.precision = std::max(0.0, 1.0 - (1.0 - p1) / ratio);
  // Equation (6): R2 = max(0, R1 · ((Â − 1)/P1 + 1)).
  out.recall = std::max(0.0, r1 * ((ratio - 1.0) / p1 + 1.0));
  return out;
}

}  // namespace smb::bounds
