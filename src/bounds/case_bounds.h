#pragma once

#include "common/result.h"

/// \file case_bounds.h
/// \brief Best-case and worst-case effectiveness (§3.1, Equations 1–6).
///
/// Setting: S1 is exhaustive, S2 a non-exhaustive improvement with the same
/// objective function, so `A^δ_{S2} ⊆ A^δ_{S1}`. Which answers S2 misses is
/// unknown; in the best case it misses only incorrect ones, in the worst
/// case the most correct ones (Figure 7).
///
/// Two equivalent formulations are provided:
///  * the *mass* form on |A|/|T| quantities (Equations 1 and 4) — the one
///    the incremental algorithm uses, scale-invariant, no divisions;
///  * the paper's *ratio* form on (P1, R1, Â) (Equations 2, 3, 5, 6).
/// Unit tests cross-check them against each other.

namespace smb::bounds {

/// \brief A (precision, recall) pair.
struct PrValue {
  double precision = 0.0;
  double recall = 0.0;
};

/// \brief Equation (1): best case `|T2| = min(|T1|, |A2|)`.
///
/// Masses may be fractional (normalized); requires `t1 >= 0`, `a2 >= 0`.
double BestCaseTrueMass(double t1, double a2);

/// \brief Equation (4): worst case `|T2| = max(0, |A2| − (|A1| − |T1|))`.
double WorstCaseTrueMass(double a1, double t1, double a2);

/// \brief Equations (2)+(3): best-case precision and recall of S2.
///
/// \param p1 precision of S1 at this threshold, in (0, 1]
/// \param r1 recall of S1 at this threshold, in [0, 1]
/// \param ratio answer size ratio Â = |A2|/|A1|, in (0, 1]
///
/// Fails with `kInvalidArgument` outside those domains (`p1 = 0` with
/// `r1 > 0` is inconsistent; `ratio = 0` means an empty answer set whose
/// precision is a convention, handled by the callers).
Result<PrValue> BestCasePr(double p1, double r1, double ratio);

/// \brief Equations (5)+(6): worst-case precision and recall of S2.
Result<PrValue> WorstCasePr(double p1, double r1, double ratio);

}  // namespace smb::bounds
