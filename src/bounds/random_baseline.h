#pragma once

#include "bounds/increment.h"
#include "common/result.h"

/// \file random_baseline.h
/// \brief The hypothetical random system S_random (§3.4, Equations 9/10).
///
/// S_random executes S1 and keeps, in each increment, a random subset of the
/// same size S2 kept there. Random selection preserves the correct/incorrect
/// proportion in expectation, so per increment:
///
///   P̂_random = P̂_S1                                   (9)
///   R̂_random = R̂_S1 · (Â_random / Â_S1)               (10)
///
/// Under the assumption that any deliberately designed improvement beats
/// random selection, the random curve is a *practical* lower bound that is
/// much tighter than the adversarial worst case.

namespace smb::bounds {

/// \brief Equation (9): increment precision of the random system.
///
/// `s1_increment` is the S1 increment mass; the random system's increment
/// precision equals S1's regardless of the kept size.
double RandomIncrementPrecision(const MassPoint& s1_increment);

/// \brief Equation (10): increment recall of the random system, given the
/// answer masses kept by the random system in this increment and |H|.
///
/// Fails if `kept_answers` exceeds the increment's answer mass.
Result<double> RandomIncrementRecall(const MassPoint& s1_increment,
                                     double kept_answers, double h);

/// \brief Expected correct mass the random system keeps in an increment:
/// `t̂1 · (â_kept / â1)`; 0 for an empty increment.
double RandomIncrementCorrectMass(const MassPoint& s1_increment,
                                  double kept_answers);

}  // namespace smb::bounds
