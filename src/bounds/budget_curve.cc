#include "bounds/budget_curve.h"

#include <sstream>

/// \file budget_curve.cc
/// \brief Budget-sweep driver and CSV rendering for bound-vs-cost curves.

namespace smb::bounds {

size_t BudgetCurve::SmallestLimitAchieving(double target) const {
  for (const BudgetCurvePoint& point : points) {
    if (point.provably_complete_fraction + 1e-12 >= target) {
      return point.candidate_limit;
    }
  }
  return 0;
}

Result<BudgetCurve> SweepBudgetCurve(const std::vector<size_t>& limits,
                                     const BudgetProbe& probe) {
  if (limits.empty()) {
    return Status::InvalidArgument("budget sweep needs at least one limit");
  }
  for (size_t i = 0; i < limits.size(); ++i) {
    if (limits[i] == 0) {
      return Status::InvalidArgument("budget limits must be positive");
    }
    if (i > 0 && limits[i] <= limits[i - 1]) {
      return Status::InvalidArgument(
          "budget limits must be strictly increasing");
    }
  }
  if (probe == nullptr) {
    return Status::InvalidArgument("budget sweep needs a probe");
  }
  BudgetCurve curve;
  curve.points.reserve(limits.size());
  for (size_t limit : limits) {
    auto point = probe(limit);
    if (!point.ok()) {
      return point.status().WithContext("while probing candidate budget C=" +
                                        std::to_string(limit));
    }
    point->candidate_limit = limit;
    curve.points.push_back(*point);
  }
  return curve;
}

std::string FormatBudgetCurveCsv(const BudgetCurve& curve) {
  std::ostringstream out;
  out << "candidate_limit,candidates_generated,provably_complete_fraction,"
         "seconds\n";
  for (const BudgetCurvePoint& point : curve.points) {
    out << point.candidate_limit << ',' << point.candidates_generated << ','
        << point.provably_complete_fraction << ',' << point.seconds << '\n';
  }
  return out.str();
}

}  // namespace smb::bounds
