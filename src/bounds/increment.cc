#include "bounds/increment.h"

/// \file increment.cc
/// \brief Increment algebra of §3.2 (Equations 7/8): P/R of the answers
/// between two thresholds, computed on |H|-normalized mass pairs.

#include "common/strings.h"

namespace smb::bounds {

Result<MassPoint> MassFromPr(double precision, double recall,
                             double answers_when_r0) {
  if (recall < 0.0 || recall > 1.0) {
    return Status::InvalidArgument(
        StrFormat("recall must be in [0, 1], got %g", recall));
  }
  MassPoint out;
  if (recall == 0.0) {
    out.correct = 0.0;
    if (answers_when_r0 < 0.0) {
      return Status::InvalidArgument("answers_when_r0 must be >= 0");
    }
    out.answers = answers_when_r0;
    return out;
  }
  if (precision <= 0.0 || precision > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "precision must be in (0, 1] when recall > 0, got %g", precision));
  }
  out.correct = recall;
  out.answers = recall / precision;
  return out;
}

Result<MassPoint> IncrementBetween(const MassPoint& from,
                                   const MassPoint& to) {
  // Small negative slack tolerates floating-point noise in derived masses.
  constexpr double kTol = 1e-9;
  if (to.answers < from.answers - kTol || to.correct < from.correct - kTol) {
    return Status::InvalidArgument(StrFormat(
        "curve masses are not monotone: (a=%g, t=%g) -> (a=%g, t=%g)",
        from.answers, from.correct, to.answers, to.correct));
  }
  MassPoint inc;
  inc.answers = std::max(0.0, to.answers - from.answers);
  inc.correct = std::max(0.0, to.correct - from.correct);
  if (inc.correct > inc.answers + kTol) {
    return Status::InvalidArgument(
        "increment has more correct answers than answers");
  }
  inc.correct = std::min(inc.correct, inc.answers);
  return inc;
}

double IncrementPrecision(const MassPoint& increment) {
  return increment.Precision();
}

double IncrementRecall(const MassPoint& increment, double h) {
  return h > 0.0 ? increment.correct / h : 0.0;
}

MassPoint Accumulate(const MassPoint& at_i, const MassPoint& increment) {
  return MassPoint{at_i.answers + increment.answers,
                   at_i.correct + increment.correct};
}

}  // namespace smb::bounds
