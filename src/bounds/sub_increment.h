#pragma once

#include <vector>

#include "bounds/case_bounds.h"
#include "bounds/increment.h"
#include "common/result.h"

/// \file sub_increment.h
/// \brief Sub-increment interpolation boundaries (§4.2, Figure 13).
///
/// Between two *measured* thresholds δ1 ≤ δ' ≤ δ2 with known
/// (|A|, |T|) at both ends, a rebuilt system observes |A'| answers at δ'.
/// The new `|A'| − |A1|` answers have unknown correctness, but their number
/// of correct ones is boxed in:
///
///   best:  all new answers are correct, capped by the increment's correct
///          total and by the increment's answer count;
///   worst: all new answers are incorrect, floored by the availability of
///          incorrect answers in the increment.
///
/// The interpolated P/R point at δ' must therefore lie on the segment
/// between the two endpoints — which is *not* the linear interpolation of
/// the measured endpoints, and explains why precision can go up along a
/// P/R curve (also observed in [10]).

namespace smb::bounds {

/// \brief Bounds for one intermediate threshold.
struct SubIncrementPoint {
  /// |A'|: the observed answer count at the intermediate threshold.
  double answers = 0.0;
  /// All-new-answers-incorrect endpoint.
  PrValue worst;
  /// All-new-answers-correct endpoint (capped).
  PrValue best;
  /// Midpoint of the segment — the paper's "safest interpolation choice".
  PrValue midpoint;
};

/// \brief Computes the boundary segment for an intermediate threshold.
///
/// \param at_lo  masses (|A1|, |T1|) at the lower measured threshold
/// \param at_hi  masses (|A2|, |T2|) at the upper measured threshold
/// \param h      |H| mass (for recall)
/// \param answers_at_intermediate  |A'| with |A1| <= |A'| <= |A2|
Result<SubIncrementPoint> SubIncrementBoundsAt(
    const MassPoint& at_lo, const MassPoint& at_hi, double h,
    double answers_at_intermediate);

/// \brief Sweeps `steps + 1` evenly spaced |A'| values across [|A1|, |A2|]
/// (endpoints included), producing the family of boundary segments of
/// Figure 13.
Result<std::vector<SubIncrementPoint>> SubIncrementSweep(
    const MassPoint& at_lo, const MassPoint& at_hi, double h, size_t steps);

}  // namespace smb::bounds
