#pragma once

#include <string>
#include <string_view>

#include "bounds/incremental_bounds.h"
#include "common/result.h"
#include "eval/pr_curve.h"

/// \file curve_io.h
/// \brief CSV persistence for P/R curves and bounds inputs.
///
/// PrCurve format (`#matchbounds=pr_curve`, `#total_correct=N`):
/// \code
/// threshold,answers,true_positives,precision,recall
/// \endcode
///
/// BoundsInput format (`#matchbounds=bounds_input`, `#total_correct=X`):
/// \code
/// threshold,s1_answers,s1_correct,s2_answers
/// \endcode

namespace smb::bounds {

/// Serializes a measured P/R curve.
std::string WritePrCurveCsv(const eval::PrCurve& curve);

/// Parses and validates a measured P/R curve.
Result<eval::PrCurve> ReadPrCurveCsv(std::string_view text);

/// Serializes a bounds input.
std::string WriteBoundsInputCsv(const bounds::BoundsInput& input);

/// Parses and validates a bounds input.
Result<bounds::BoundsInput> ReadBoundsInputCsv(std::string_view text);

/// \name File variants.
/// @{
Status WritePrCurveFile(const std::string& path, const eval::PrCurve& curve);
Result<eval::PrCurve> ReadPrCurveFile(const std::string& path);
Status WriteBoundsInputFile(const std::string& path,
                            const bounds::BoundsInput& input);
Result<bounds::BoundsInput> ReadBoundsInputFile(const std::string& path);
/// @}

}  // namespace smb::bounds
