#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"

/// \file budget_curve.h
/// \brief Bound-vs-cost curves over the candidate budget C.
///
/// The paper turns a non-exhaustive system's answer sizes into guaranteed
/// effectiveness bounds; the candidate index turns its skip-bound into a
/// *certified completeness* per budget C. This helper sweeps C and records
/// the (cost, certified bound) curve — the report a capacity planner reads
/// to pick the cheapest budget meeting a target, and the static
/// counterpart of the adaptive policy
/// (`index::AdaptiveCandidatePolicy`), which walks the same curve cell by
/// cell at query time.
///
/// The sweep is deliberately decoupled from the index layer: the caller
/// supplies a probe that evaluates one budget (typically: generate
/// candidate lists for a query or a whole workload at that C and measure),
/// so the helper works for single queries, pooled workloads and synthetic
/// studies alike without dragging `src/index` into `src/bounds`.

namespace smb::bounds {

/// \brief One measured budget point of the curve.
struct BudgetCurvePoint {
  /// The candidate budget C this point was measured at.
  size_t candidate_limit = 0;
  /// Candidate entries generated at this budget (the cost axis).
  uint64_t candidates_generated = 0;
  /// Certified completeness achieved at this budget (the bound axis, in
  /// [0, 1] — `index::QueryCandidates::ProvablyCompleteFraction` or a
  /// workload mean of it).
  double provably_complete_fraction = 0.0;
  /// Optional wall-clock seconds the probe spent (0 when not measured).
  double seconds = 0.0;
};

/// \brief A bound-vs-cost curve, ascending in `candidate_limit`.
struct BudgetCurve {
  std::vector<BudgetCurvePoint> points;

  /// \brief The smallest swept budget whose certified bound reaches
  /// `target` (within 1e-12), or 0 when no swept point does.
  size_t SmallestLimitAchieving(double target) const;
};

/// \brief Evaluates one candidate budget; returns the measured point (its
/// `candidate_limit` field is overwritten with the swept value).
using BudgetProbe = std::function<Result<BudgetCurvePoint>(size_t limit)>;

/// \brief Sweeps `limits` (must be non-empty, strictly increasing) through
/// `probe` and assembles the curve. Fails on the first failing probe.
Result<BudgetCurve> SweepBudgetCurve(const std::vector<size_t>& limits,
                                     const BudgetProbe& probe);

/// \brief Renders the curve as CSV
/// (`candidate_limit,candidates_generated,provably_complete_fraction,seconds`)
/// for reports and plotting.
std::string FormatBudgetCurveCsv(const BudgetCurve& curve);

}  // namespace smb::bounds
