#include "bounds/curve_io.h"

#include "common/strings.h"
#include "io/csv.h"

/// \file curve_io.cc
/// \brief CSV reader/writer for recall curves and bounds-input rows.

namespace smb::bounds {

std::string WritePrCurveCsv(const eval::PrCurve& curve) {
  io::CsvDocument doc;
  doc.metadata.emplace_back("matchbounds", "pr_curve");
  doc.metadata.emplace_back("total_correct",
                            std::to_string(curve.total_correct()));
  doc.header = {"threshold", "answers", "true_positives", "precision",
                "recall"};
  for (const auto& p : curve.points()) {
    doc.rows.push_back({StrFormat("%.17g", p.threshold),
                        std::to_string(p.answers),
                        std::to_string(p.true_positives),
                        StrFormat("%.17g", p.precision),
                        StrFormat("%.17g", p.recall)});
  }
  return io::WriteCsv(doc);
}

Result<eval::PrCurve> ReadPrCurveCsv(std::string_view text) {
  SMB_ASSIGN_OR_RETURN(io::CsvDocument doc, io::ParseCsv(text));
  if (doc.GetMeta("matchbounds") != "pr_curve") {
    return Status::InvalidArgument(
        "not a P/R curve file (missing '#matchbounds=pr_curve')");
  }
  SMB_ASSIGN_OR_RETURN(uint64_t total_correct,
                       io::ParseUint(doc.GetMeta("total_correct")));
  int t_col = doc.ColumnIndex("threshold");
  int a_col = doc.ColumnIndex("answers");
  int tp_col = doc.ColumnIndex("true_positives");
  int p_col = doc.ColumnIndex("precision");
  int r_col = doc.ColumnIndex("recall");
  if (t_col < 0 || a_col < 0 || tp_col < 0 || p_col < 0 || r_col < 0) {
    return Status::ParseError("P/R curve CSV is missing required columns");
  }
  std::vector<eval::PrPoint> points;
  for (const auto& row : doc.rows) {
    eval::PrPoint point;
    SMB_ASSIGN_OR_RETURN(point.threshold,
                         io::ParseDouble(row[static_cast<size_t>(t_col)]));
    SMB_ASSIGN_OR_RETURN(uint64_t answers,
                         io::ParseUint(row[static_cast<size_t>(a_col)]));
    SMB_ASSIGN_OR_RETURN(uint64_t tp,
                         io::ParseUint(row[static_cast<size_t>(tp_col)]));
    point.answers = static_cast<size_t>(answers);
    point.true_positives = static_cast<size_t>(tp);
    SMB_ASSIGN_OR_RETURN(point.precision,
                         io::ParseDouble(row[static_cast<size_t>(p_col)]));
    SMB_ASSIGN_OR_RETURN(point.recall,
                         io::ParseDouble(row[static_cast<size_t>(r_col)]));
    points.push_back(point);
  }
  return eval::PrCurve::FromPoints(std::move(points),
                                   static_cast<size_t>(total_correct));
}

std::string WriteBoundsInputCsv(const bounds::BoundsInput& input) {
  io::CsvDocument doc;
  doc.metadata.emplace_back("matchbounds", "bounds_input");
  doc.metadata.emplace_back("total_correct",
                            StrFormat("%.17g", input.total_correct));
  doc.header = {"threshold", "s1_answers", "s1_correct", "s2_answers"};
  for (size_t i = 0; i < input.thresholds.size(); ++i) {
    doc.rows.push_back({StrFormat("%.17g", input.thresholds[i]),
                        StrFormat("%.17g", input.s1_answers[i]),
                        StrFormat("%.17g", input.s1_correct[i]),
                        StrFormat("%.17g", input.s2_answers[i])});
  }
  return io::WriteCsv(doc);
}

Result<bounds::BoundsInput> ReadBoundsInputCsv(std::string_view text) {
  SMB_ASSIGN_OR_RETURN(io::CsvDocument doc, io::ParseCsv(text));
  if (doc.GetMeta("matchbounds") != "bounds_input") {
    return Status::InvalidArgument(
        "not a bounds input file (missing '#matchbounds=bounds_input')");
  }
  bounds::BoundsInput input;
  SMB_ASSIGN_OR_RETURN(input.total_correct,
                       io::ParseDouble(doc.GetMeta("total_correct")));
  int t_col = doc.ColumnIndex("threshold");
  int a1_col = doc.ColumnIndex("s1_answers");
  int t1_col = doc.ColumnIndex("s1_correct");
  int a2_col = doc.ColumnIndex("s2_answers");
  if (t_col < 0 || a1_col < 0 || t1_col < 0 || a2_col < 0) {
    return Status::ParseError("bounds input CSV is missing required columns");
  }
  for (const auto& row : doc.rows) {
    double threshold, a1, t1, a2;
    SMB_ASSIGN_OR_RETURN(threshold,
                         io::ParseDouble(row[static_cast<size_t>(t_col)]));
    SMB_ASSIGN_OR_RETURN(a1, io::ParseDouble(row[static_cast<size_t>(a1_col)]));
    SMB_ASSIGN_OR_RETURN(t1, io::ParseDouble(row[static_cast<size_t>(t1_col)]));
    SMB_ASSIGN_OR_RETURN(a2, io::ParseDouble(row[static_cast<size_t>(a2_col)]));
    input.thresholds.push_back(threshold);
    input.s1_answers.push_back(a1);
    input.s1_correct.push_back(t1);
    input.s2_answers.push_back(a2);
  }
  SMB_RETURN_IF_ERROR(input.Validate());
  return input;
}

Status WritePrCurveFile(const std::string& path, const eval::PrCurve& curve) {
  return io::WriteTextFile(path, WritePrCurveCsv(curve));
}

Result<eval::PrCurve> ReadPrCurveFile(const std::string& path) {
  SMB_ASSIGN_OR_RETURN(std::string content, io::ReadTextFile(path));
  auto result = ReadPrCurveCsv(content);
  if (!result.ok()) return result.status().WithContext("in " + path);
  return result;
}

Status WriteBoundsInputFile(const std::string& path,
                            const bounds::BoundsInput& input) {
  return io::WriteTextFile(path, WriteBoundsInputCsv(input));
}

Result<bounds::BoundsInput> ReadBoundsInputFile(const std::string& path) {
  SMB_ASSIGN_OR_RETURN(std::string content, io::ReadTextFile(path));
  auto result = ReadBoundsInputCsv(content);
  if (!result.ok()) return result.status().WithContext("in " + path);
  return result;
}

}  // namespace smb::bounds
