#pragma once

#include <vector>

#include "bounds/case_bounds.h"
#include "bounds/increment.h"
#include "common/result.h"

/// \file incremental_bounds.h
/// \brief The effectiveness-bounds algorithms (§3.1–§3.4).
///
/// Inputs are the *measured* behaviour of the original exhaustive system S1
/// (answer and correct masses per threshold, plus the total correct mass
/// |H|) and the answer sizes of the improvement S2 at the same thresholds.
/// All masses may be raw counts or |H|-normalized values — the computation
/// is scale-invariant.
///
/// Two algorithms:
///  * `ComputeNaiveBounds` applies Equations (1)–(6) independently at every
///    threshold — the paper shows this is "unnecessarily pessimistic";
///  * `ComputeIncrementalBounds` is the 4-step incremental derivation of
///    §3.2, which is tighter (never looser) on both sides, plus the random
///    baseline of §3.4 (Equations 9/10).

namespace smb::bounds {

/// \brief Input to the bounds computation.
struct BoundsInput {
  /// Strictly increasing thresholds δ1 < … < δn. (δ0 = 0 with empty answer
  /// sets is implicit.)
  std::vector<double> thresholds;
  /// |A1^δi| masses of the original system S1, non-decreasing.
  std::vector<double> s1_answers;
  /// |T1^δi| masses of S1 (from its published/measured P/R), non-decreasing,
  /// `<= s1_answers` pointwise.
  std::vector<double> s1_correct;
  /// |A2^δi| masses of the improvement S2, non-decreasing, and within every
  /// increment at most the S1 increment (A2 ⊆ A1 implies this).
  std::vector<double> s2_answers;
  /// |H| mass (same scale). Must be >= max(s1_correct).
  double total_correct = 0.0;

  /// Structural validation of all the above.
  Status Validate() const;
};

/// \brief Bounds at one threshold.
struct BoundsPoint {
  double threshold = 0.0;
  /// Cumulative answer size ratio Â^δ = |A2|/|A1| (1 when |A1| = 0).
  double ratio = 1.0;
  PrValue best;
  PrValue worst;
  /// Random-selection baseline (§3.4); equals best=worst=S1 when Â=1.
  PrValue random;
};

/// \brief A full best/worst/random bounds curve.
struct BoundsCurve {
  std::vector<BoundsPoint> points;
};

/// \brief §3.2: per-increment best/worst analysis, re-accumulated.
Result<BoundsCurve> ComputeIncrementalBounds(const BoundsInput& input);

/// \brief §3.1 applied directly at each threshold (the pessimistic
/// variant). The random baseline is still computed incrementally
/// (it is only defined that way, §3.4).
Result<BoundsCurve> ComputeNaiveBounds(const BoundsInput& input);

/// \brief Repairs small violations of the `A2 ⊆ A1` containment that arise
/// from rounding (e.g., reconstructing |A1| from an 11-point curve while
/// |A2| comes from integer counts): clamps every S2 increment to its S1
/// increment. Exact inputs pass through unchanged.
BoundsInput ClampToContainment(BoundsInput input);

}  // namespace smb::bounds
