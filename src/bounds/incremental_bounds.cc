#include "bounds/incremental_bounds.h"

/// \file incremental_bounds.cc
/// \brief The naive (per-threshold) and incremental (§3.2, 4-step) bounds
/// algorithms plus the §3.4 random baseline over S1/S2 size observations.

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace smb::bounds {

Status BoundsInput::Validate() const {
  const size_t n = thresholds.size();
  if (n == 0) {
    return Status::InvalidArgument("no thresholds supplied");
  }
  if (s1_answers.size() != n || s1_correct.size() != n ||
      s2_answers.size() != n) {
    return Status::InvalidArgument(
        "thresholds, s1_answers, s1_correct and s2_answers must all have "
        "the same length");
  }
  if (total_correct <= 0.0) {
    return Status::InvalidArgument("total_correct (|H|) must be positive");
  }
  constexpr double kTol = 1e-9;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && thresholds[i] <= thresholds[i - 1]) {
      return Status::InvalidArgument("thresholds must be strictly increasing");
    }
    if (s1_answers[i] < 0 || s1_correct[i] < 0 || s2_answers[i] < 0) {
      return Status::InvalidArgument("masses must be non-negative");
    }
    if (s1_correct[i] > s1_answers[i] + kTol) {
      return Status::InvalidArgument(StrFormat(
          "threshold %zu: |T1| (%g) exceeds |A1| (%g)", i, s1_correct[i],
          s1_answers[i]));
    }
    if (s1_correct[i] > total_correct + kTol) {
      return Status::InvalidArgument(
          StrFormat("threshold %zu: |T1| exceeds |H|", i));
    }
    if (s2_answers[i] > s1_answers[i] + kTol) {
      return Status::InvalidArgument(StrFormat(
          "threshold %zu: |A2| (%g) exceeds |A1| (%g); A2 ⊆ A1 is violated",
          i, s2_answers[i], s1_answers[i]));
    }
    double prev_a1 = i > 0 ? s1_answers[i - 1] : 0.0;
    double prev_t1 = i > 0 ? s1_correct[i - 1] : 0.0;
    double prev_a2 = i > 0 ? s2_answers[i - 1] : 0.0;
    if (s1_answers[i] < prev_a1 - kTol || s1_correct[i] < prev_t1 - kTol ||
        s2_answers[i] < prev_a2 - kTol) {
      return Status::InvalidArgument(
          StrFormat("threshold %zu: masses are not monotone", i));
    }
    // Per-increment containment: Â²(δi-1,δi] ⊆ Â¹(δi-1,δi].
    double inc_a1 = s1_answers[i] - prev_a1;
    double inc_a2 = s2_answers[i] - prev_a2;
    if (inc_a2 > inc_a1 + kTol) {
      return Status::InvalidArgument(StrFormat(
          "increment %zu: S2 gains more answers (%g) than S1 (%g); "
          "impossible when both systems share the objective function",
          i, inc_a2, inc_a1));
    }
  }
  return Status::OK();
}

namespace {

PrValue ToPr(const MassPoint& point, double h) {
  PrValue out;
  out.precision = point.Precision();
  out.recall = point.Recall(h);
  return out;
}

}  // namespace

Result<BoundsCurve> ComputeIncrementalBounds(const BoundsInput& input) {
  SMB_RETURN_IF_ERROR(input.Validate());
  const size_t n = input.thresholds.size();
  const double h = input.total_correct;

  BoundsCurve curve;
  curve.points.reserve(n);

  // Running S2 masses for the three cases. Answer mass is shared (it is
  // observed, not bounded); correct mass differs per case.
  MassPoint best{0.0, 0.0};
  MassPoint worst{0.0, 0.0};
  MassPoint random{0.0, 0.0};
  MassPoint prev_s1{0.0, 0.0};
  double prev_a2 = 0.0;

  for (size_t i = 0; i < n; ++i) {
    MassPoint s1{input.s1_answers[i], input.s1_correct[i]};
    SMB_ASSIGN_OR_RETURN(MassPoint inc1, IncrementBetween(prev_s1, s1));
    double inc_a2 = std::max(0.0, input.s2_answers[i] - prev_a2);
    // Defensive clamp (Validate already enforced the tolerance).
    inc_a2 = std::min(inc_a2, inc1.answers);

    // §3.1 applied to the increment (step 3 of §3.2).
    double best_t2 = BestCaseTrueMass(inc1.correct, inc_a2);
    double worst_t2 = WorstCaseTrueMass(inc1.answers, inc1.correct, inc_a2);
    // §3.4: random keeps the increment's correct/incorrect proportion
    // (Equations 9/10 in mass form).
    double random_t2 =
        inc1.answers > 0.0 ? inc1.correct * (inc_a2 / inc1.answers) : 0.0;

    // Step 4: accumulate increments back into curve points.
    best = Accumulate(best, MassPoint{inc_a2, best_t2});
    worst = Accumulate(worst, MassPoint{inc_a2, worst_t2});
    random = Accumulate(random, MassPoint{inc_a2, random_t2});

    BoundsPoint point;
    point.threshold = input.thresholds[i];
    point.ratio =
        s1.answers > 0.0 ? input.s2_answers[i] / s1.answers : 1.0;
    point.best = ToPr(best, h);
    point.worst = ToPr(worst, h);
    point.random = ToPr(random, h);
    curve.points.push_back(point);

    prev_s1 = s1;
    prev_a2 = input.s2_answers[i];
  }
  return curve;
}

BoundsInput ClampToContainment(BoundsInput input) {
  double prev_a1 = 0.0;
  double prev_observed_a2 = 0.0;  // original cumulative, pre-repair
  double accumulated = 0.0;       // repaired cumulative
  for (size_t i = 0; i < input.s2_answers.size() && i < input.s1_answers.size();
       ++i) {
    double inc_a1 = std::max(0.0, input.s1_answers[i] - prev_a1);
    // The observed per-increment gain is what we trust; only its excess
    // over S1's gain is the repair.
    double inc_a2 = std::max(0.0, input.s2_answers[i] - prev_observed_a2);
    prev_observed_a2 = std::max(prev_observed_a2, input.s2_answers[i]);
    inc_a2 = std::min(inc_a2, inc_a1);
    prev_a1 = input.s1_answers[i];
    accumulated += inc_a2;
    input.s2_answers[i] = accumulated;
  }
  return input;
}

Result<BoundsCurve> ComputeNaiveBounds(const BoundsInput& input) {
  SMB_RETURN_IF_ERROR(input.Validate());
  const size_t n = input.thresholds.size();
  const double h = input.total_correct;

  // The random baseline is inherently incremental; reuse it.
  SMB_ASSIGN_OR_RETURN(BoundsCurve incremental,
                       ComputeIncrementalBounds(input));

  BoundsCurve curve;
  curve.points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double a1 = input.s1_answers[i];
    double t1 = input.s1_correct[i];
    double a2 = input.s2_answers[i];

    MassPoint best{a2, BestCaseTrueMass(t1, a2)};
    MassPoint worst{a2, WorstCaseTrueMass(a1, t1, a2)};

    BoundsPoint point;
    point.threshold = input.thresholds[i];
    point.ratio = a1 > 0.0 ? a2 / a1 : 1.0;
    point.best = ToPr(best, h);
    point.worst = ToPr(worst, h);
    point.random = incremental.points[i].random;
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace smb::bounds
