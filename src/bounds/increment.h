#pragma once

#include "common/result.h"

/// \file increment.h
/// \brief Increment algebra on P/R curves (§3.2, Equations 7 and 8).
///
/// An increment δi–δj holds the answers with δi < Δ(a) ≤ δj. Its precision
/// and recall follow from the curve values at the two thresholds:
///
///   P̂ = (R_j − R_i) / (R_j/P_j − R_i/P_i)      (7)
///   R̂ = R_j − R_i                              (8)
///
/// Since |A|/|H| = R/P, Equation (7) is just `Δ|T| / Δ|A|` in |H|-normalized
/// mass units — which is how these helpers compute it. All increment math in
/// this library therefore runs on (answer mass, correct mass) pairs; the
/// ratio formulas are recovered exactly and the degenerate cases (paper
/// §3.2 step 4: increments without correct answers) need no special-casing.

namespace smb::bounds {

/// \brief A point of a P/R curve expressed as masses: `a = |A|` and
/// `t = |T|`, in any fixed scale (raw counts, or divided by |H|).
struct MassPoint {
  double answers = 0.0;  ///< |A^δ| mass
  double correct = 0.0;  ///< |T^δ| mass

  /// Precision `t/a`; 1 for an empty answer set (no wrong answers yet).
  double Precision() const {
    return answers > 0.0 ? correct / answers : 1.0;
  }
  /// Recall `t/h` for a given total-correct mass `h` (same scale).
  double Recall(double h) const { return h > 0.0 ? correct / h : 1.0; }
};

/// \brief Converts a literature (P, R) point into masses normalized by |H|
/// (so `h = 1`): `t = R`, `a = R/P`.
///
/// Requires consistent values: P in (0,1] when R > 0; when R == 0, P may be
/// anything and the answer mass is taken as 0 unless `answers_when_r0` is
/// supplied (a P/R pair alone cannot reveal |A| when |T| = 0; see §4.1).
Result<MassPoint> MassFromPr(double precision, double recall,
                             double answers_when_r0 = 0.0);

/// \brief The increment between two curve points: `Δa`, `Δt`.
///
/// Fails when the masses are not monotone (`to` must dominate `from`).
Result<MassPoint> IncrementBetween(const MassPoint& from,
                                   const MassPoint& to);

/// \brief Equation (7): increment precision `Δt/Δa`; 1 when `Δa == 0`.
double IncrementPrecision(const MassPoint& increment);

/// \brief Equation (8): increment recall `Δt/h`.
double IncrementRecall(const MassPoint& increment, double h);

/// \brief Step-4 composition: curve point at δj from the point at δi plus
/// the increment (mass addition — the inverse of Equations 7/8).
MassPoint Accumulate(const MassPoint& at_i, const MassPoint& increment);

}  // namespace smb::bounds
