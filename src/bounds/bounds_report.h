#pragma once

#include <string>
#include <vector>

#include "bounds/incremental_bounds.h"
#include "common/result.h"
#include "eval/ground_truth.h"
#include "eval/pr_curve.h"
#include "match/answer_set.h"

/// \file bounds_report.h
/// \brief High-level entry points tying the eval layer to the bounds core.
///
/// This is the API a practitioner uses: run S1 and S2 on the large
/// collection, measure S1's curve on the judged (small) collection, feed
/// both here, get guaranteed effectiveness bounds for S2 — no judgments on
/// the large collection needed.

namespace smb::bounds {

/// \brief Builds a BoundsInput from S1's measured curve and S2's observed
/// answer counts at the same thresholds.
Result<BoundsInput> InputFromMeasuredCurve(const eval::PrCurve& s1_curve,
                                           const std::vector<size_t>& s2_sizes);

/// \brief Builds a BoundsInput from literature (P1, R1) values at known
/// thresholds plus the measured answer size *ratios* Â^δ of the rebuilt
/// systems (no counts or |H| required — the computation is |H|-normalized:
/// `a1 = R/P`, `t1 = R`, `h = 1`).
///
/// Entries with `r1 == 0` contribute zero mass (their |A| is unknowable
/// from P/R alone; see §4.1).
Result<BoundsInput> InputFromPrAndRatios(const std::vector<double>& thresholds,
                                         const std::vector<double>& s1_precision,
                                         const std::vector<double>& s1_recall,
                                         const std::vector<double>& ratios);

/// \brief Everything the technique produces for one S1/S2 pair.
struct BoundsReport {
  BoundsCurve incremental;  ///< §3.2 (tight) bounds + §3.4 random baseline
  BoundsCurve naive;        ///< §3.1 per-threshold bounds, for comparison
};

/// \brief Runs both algorithms on one input.
Result<BoundsReport> ComputeBoundsReport(const BoundsInput& input);

/// \brief Largest recall level up to which the worst-case precision stays
/// at or above `min_precision` (the paper's style of guarantee: "for recall
/// levels up to 0.15, S2-one guarantees a worst case precision of 0.5").
/// Returns 0 when even the first point fails.
double GuaranteedRecallAt(const BoundsCurve& curve, double min_precision);

/// \brief F1 bounds derived from the P/R bounds.
///
/// F1 is monotone in both precision and recall, so the harmonic mean of the
/// worst (resp. best) P/R pair bounds the achievable F1 from below (resp.
/// above). 0 when both members of a pair are 0.
struct F1Bounds {
  double worst = 0.0;
  double best = 0.0;
  double random = 0.0;
};
F1Bounds F1BoundsAt(const BoundsPoint& point);

/// \brief Top-N guarantees (§5: "the top-N is usually the most interesting
/// and for such recall levels we can give useful, i.e., narrow,
/// effectiveness bounds").
///
/// For each requested N, uses the Δ of S2's N-th ranked answer as the
/// threshold, measures S1's curve and S2's size at exactly that δ, and
/// computes the bounds point. `s1_curve_answers` is S1's ranked answer set
/// on the *judged* collection with its ground truth — i.e., this helper is
/// for harness-side studies where S1's judgments exist.
struct TopNBound {
  size_t n = 0;
  double threshold = 0.0;
  BoundsPoint bounds;
};
Result<std::vector<TopNBound>> ComputeTopNBounds(
    const match::AnswerSet& s1_answers, const eval::GroundTruth& truth,
    const match::AnswerSet& s2_answers, const std::vector<size_t>& ns);

}  // namespace smb::bounds
