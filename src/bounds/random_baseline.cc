#include "bounds/random_baseline.h"

/// \file random_baseline.cc
/// \brief §3.4 (Equations 9/10): the hypothetical random system that
/// keeps, per increment, a random same-size subset of S1's answers.

#include "common/strings.h"

namespace smb::bounds {

double RandomIncrementPrecision(const MassPoint& s1_increment) {
  return s1_increment.Precision();
}

double RandomIncrementCorrectMass(const MassPoint& s1_increment,
                                  double kept_answers) {
  if (s1_increment.answers <= 0.0) return 0.0;
  return s1_increment.correct * (kept_answers / s1_increment.answers);
}

Result<double> RandomIncrementRecall(const MassPoint& s1_increment,
                                     double kept_answers, double h) {
  if (h <= 0.0) {
    return Status::InvalidArgument("|H| must be positive");
  }
  if (kept_answers < 0.0 ||
      kept_answers > s1_increment.answers + 1e-9) {
    return Status::InvalidArgument(StrFormat(
        "kept answer mass %g outside [0, %g]", kept_answers,
        s1_increment.answers));
  }
  return RandomIncrementCorrectMass(s1_increment, kept_answers) / h;
}

}  // namespace smb::bounds
