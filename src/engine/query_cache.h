#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "match/answer_set.h"

/// \file query_cache.h
/// \brief LRU cache of finished answer sets for the long-running serve
/// path.
///
/// A resident matching process (the `matchbounds serve` command) sees the
/// same queries repeatedly — monitoring probes, retried requests, popular
/// personal schemas. Matching is deterministic: identical (prepared query,
/// match options) inputs always produce identical answers, so a finished
/// `match::AnswerSet` can be replayed from memory instead of re-running the
/// engine.
///
/// The key is a pair of content fingerprints (io/fingerprint.h):
///  * the *prepared query* fingerprint — folded names, types and tree
///    shape, so two spellings that fold identically share one entry;
///  * the *match options* fingerprint — Δ threshold, injectivity, the full
///    objective, plus whatever result-shaping knobs the caller mixes in
///    (candidate limit, adaptive target bound, top-k).
///
/// Entries carry the answers *and* the run's certified completeness
/// (`provably_complete_fraction`), so a cache hit can report the same
/// effectiveness bound the original run certified — a served answer is
/// never silently stripped of its certificate.
///
/// Entries are evicted least-recently-used once `capacity` is exceeded.
/// The cache is deliberately single-threaded (the serve loop owns it); it
/// stores finalized answer sets by value and hands out stable pointers
/// that remain valid until the entry is evicted.

namespace smb::engine {

/// \brief Cache key: (prepared query fingerprint, match-options
/// fingerprint).
struct QueryCacheKey {
  uint64_t query_fingerprint = 0;
  uint64_t options_fingerprint = 0;

  bool operator==(const QueryCacheKey& other) const {
    return query_fingerprint == other.query_fingerprint &&
           options_fingerprint == other.options_fingerprint;
  }
};

/// \brief Hit/miss/eviction counters (monotonic over the cache lifetime).
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// \brief What the cache stores per key: the finalized answers plus the
/// effectiveness certificate of the run that produced them.
struct CachedAnswers {
  match::AnswerSet answers;
  /// The producing run's certified completeness
  /// (`engine::BatchMatchStats::provably_complete_fraction`; 1.0 for dense
  /// runs — the shared empty/dense convention).
  double provably_complete_fraction = 1.0;
};

/// \brief Fixed-capacity LRU map from `QueryCacheKey` to finalized answer
/// sets with their certified bound.
class QueryResultCache {
 public:
  /// `capacity` = 0 disables caching (every Lookup misses, Insert drops).
  explicit QueryResultCache(size_t capacity) : capacity_(capacity) {}

  /// \brief The cached entry for `key`, or nullptr on a miss. A hit
  /// refreshes the entry's recency; the pointer stays valid until the
  /// entry is evicted.
  const CachedAnswers* Lookup(const QueryCacheKey& key);

  /// \brief Stores `entry` under `key` (replacing any previous entry) and
  /// evicts the least-recently-used entries down to capacity.
  void Insert(const QueryCacheKey& key, CachedAnswers entry);

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  const QueryCacheStats& stats() const { return stats_; }

 private:
  struct Hash {
    size_t operator()(const QueryCacheKey& key) const {
      // The fingerprints are already uniform 64-bit hashes; one odd-
      // constant mix keeps the pair from cancelling.
      return static_cast<size_t>(key.query_fingerprint * 0x9e3779b97f4a7c15ull ^
                                 key.options_fingerprint);
    }
  };

  using Entry = std::pair<QueryCacheKey, CachedAnswers>;

  size_t capacity_;
  /// Most-recently-used at the front.
  std::list<Entry> lru_;
  std::unordered_map<QueryCacheKey, std::list<Entry>::iterator, Hash> index_;
  QueryCacheStats stats_;
};

}  // namespace smb::engine
