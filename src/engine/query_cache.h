#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "match/answer_set.h"

/// \file query_cache.h
/// \brief Concurrency-safe striped LRU cache of finished answer sets for
/// the serving path.
///
/// A resident matching process (the `matchbounds serve` command) sees the
/// same queries repeatedly — monitoring probes, retried requests, popular
/// personal schemas. Matching is deterministic: identical (prepared query,
/// match options) inputs always produce identical answers, so a finished
/// `match::AnswerSet` can be replayed from memory instead of re-running the
/// engine.
///
/// The key is a pair of content fingerprints (match/fingerprint.h):
///  * the *prepared query* fingerprint — folded names, types and tree
///    shape, so two spellings that fold identically share one entry;
///  * the *match options* fingerprint — Δ threshold, injectivity, the full
///    objective, plus whatever result-shaping knobs the caller mixes in
///    (candidate limit, adaptive target bound, top-k). The serve frontend
///    folds the request's *effective* completeness target in, so answers
///    certified at a degraded (load-shed) target are never replayed for a
///    request demanding more.
///
/// Entries carry the answers *and* the run's certified completeness
/// (`provably_complete_fraction`), so a cache hit can report the same
/// effectiveness bound the original run certified — a served answer is
/// never silently stripped of its certificate.
///
/// **Concurrency.** The cache is safe for any number of concurrent
/// `Lookup`/`Insert` callers (the multi-client serve worker pool). Keys are
/// partitioned over independent *stripes*, each a small LRU map behind its
/// own mutex, so unrelated requests rarely contend on one lock. Entries are
/// handed out as `std::shared_ptr<const CachedAnswers>`: a hit stays valid
/// for as long as the caller holds the pointer, even if another thread
/// evicts the entry concurrently. Recency and eviction are tracked *per
/// stripe* — the cache evicts the least-recently-used entry of the full
/// stripe, which approximates (and with `stripes = 1` exactly equals)
/// global LRU. Hit/miss/eviction counters are kept per stripe and
/// aggregated by `stats()`.
namespace smb::engine {

/// \brief Cache key: (prepared query fingerprint, match-options
/// fingerprint).
struct QueryCacheKey {
  uint64_t query_fingerprint = 0;
  uint64_t options_fingerprint = 0;

  bool operator==(const QueryCacheKey& other) const {
    return query_fingerprint == other.query_fingerprint &&
           options_fingerprint == other.options_fingerprint;
  }
};

/// \brief Hit/miss/eviction counters (monotonic over the cache lifetime).
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  QueryCacheStats& operator+=(const QueryCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    return *this;
  }
};

/// \brief What the cache stores per key: the finalized answers plus the
/// effectiveness certificate of the run that produced them.
struct CachedAnswers {
  match::AnswerSet answers;
  /// The producing run's certified completeness
  /// (`engine::BatchMatchStats::provably_complete_fraction`; 1.0 for dense
  /// runs — the shared empty/dense convention).
  double provably_complete_fraction = 1.0;
};

/// \brief Fixed-capacity striped LRU map from `QueryCacheKey` to finalized
/// answer sets with their certified bound. Thread-safe.
class QueryResultCache {
 public:
  /// Default stripe count (rounded down to a power of two and clamped to
  /// `capacity`, so tiny caches do not split one entry across many locks).
  static constexpr size_t kDefaultStripes = 8;

  /// `capacity` = 0 disables caching (every Lookup misses, Insert drops).
  /// `stripes` = concurrency granularity: 1 gives one exact global LRU
  /// behind one mutex; larger values shard the key space for parallel
  /// serving. The total capacity is split evenly across stripes.
  explicit QueryResultCache(size_t capacity,
                            size_t stripes = kDefaultStripes);

  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  /// \brief The cached entry for `key`, or nullptr on a miss. A hit
  /// refreshes the entry's recency within its stripe; the returned pointer
  /// keeps the entry alive even if it is concurrently evicted.
  std::shared_ptr<const CachedAnswers> Lookup(const QueryCacheKey& key);

  /// \brief Stores `entry` under `key` (replacing any previous entry) and
  /// evicts the stripe's least-recently-used entries down to its capacity.
  void Insert(const QueryCacheKey& key, CachedAnswers entry);

  /// \brief As above, for callers that already hold the entry shared.
  void Insert(const QueryCacheKey& key,
              std::shared_ptr<const CachedAnswers> entry);

  /// Entries currently resident, summed over stripes (a momentary snapshot
  /// under concurrent mutation).
  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t stripe_count() const { return stripes_.size(); }
  /// Aggregated hit/miss/eviction counters (a momentary snapshot).
  QueryCacheStats stats() const;

 private:
  struct Hash {
    size_t operator()(const QueryCacheKey& key) const {
      // The fingerprints are already uniform 64-bit hashes; one odd-
      // constant mix keeps the pair from cancelling.
      return static_cast<size_t>(key.query_fingerprint * 0x9e3779b97f4a7c15ull ^
                                 key.options_fingerprint);
    }
  };

  using Entry =
      std::pair<QueryCacheKey, std::shared_ptr<const CachedAnswers>>;

  /// One lock's worth of the cache: an independent LRU map over its share
  /// of the key space. Everything mutable is guarded by the stripe's own
  /// mutex — the annotations make an unlocked touch a compile error.
  struct Stripe {
    explicit Stripe(size_t capacity) : capacity(capacity) {}

    mutable Mutex mutex;
    /// Immutable after construction (set before the cache is shared).
    const size_t capacity;
    /// Most-recently-used at the front.
    std::list<Entry> lru SMB_GUARDED_BY(mutex);
    std::unordered_map<QueryCacheKey, std::list<Entry>::iterator, Hash> index
        SMB_GUARDED_BY(mutex);
    QueryCacheStats stats SMB_GUARDED_BY(mutex);
  };

  Stripe& StripeFor(const QueryCacheKey& key) {
    // Stripe selection uses the upper hash bits; the map inside the stripe
    // buckets on the lower ones.
    const size_t h = Hash{}(key);
    return *stripes_[(h >> 32) & (stripes_.size() - 1)];
  }

  size_t capacity_;
  /// unique_ptr for address stability (Stripe holds a mutex, not movable).
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace smb::engine
