#include "engine/similarity_matrix_pool.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "sim/prepared_kernel.h"

/// \file similarity_matrix_pool.cc
/// \brief Dense query-by-schema cost matrices, precomputed once on a
/// worker pool and shared read-only by every matcher thread.

namespace smb::engine {

Result<SimilarityMatrixPool> SimilarityMatrixPool::Build(
    const schema::Schema& query, const schema::SchemaRepository& repo,
    const match::ObjectiveOptions& options, size_t num_threads) {
  if (query.empty()) {
    return Status::InvalidArgument(
        "similarity pool needs a non-empty query schema");
  }
  SMB_RETURN_IF_ERROR(query.Validate());

  SimilarityMatrixPool pool;
  const std::vector<schema::NodeId> preorder = query.PreOrder();
  pool.positions_ = preorder.size();
  pool.matrices_.resize(repo.schema_count());
  pool.schema_sizes_.resize(repo.schema_count());

  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::max<size_t>(
      1, std::min(num_threads, std::max<size_t>(1, repo.schema_count())));

  // Workers claim whole schemas off a shared counter; each matrix is
  // written by exactly one thread, so no locking is needed. Every worker
  // folds/tokenizes/kernel-compiles the query once against its own token
  // interner (ids only need to be consistent *within* a worker — the
  // scores they produce are id-independent), then fills each row through
  // one batched `ScoreMany` call so the query-side state (weights, PEQ
  // bitmask table) loads once per row and the row runs through the
  // SoA/SIMD pipeline. Values are bit-identical to
  // `match::ComputeNodeCost` — the kernel is the same scorer.
  std::atomic<size_t> next_schema{0};
  auto fill = [&]() {
    sim::TokenTable interner;
    std::vector<sim::PreparedName> prepared_query;
    prepared_query.reserve(preorder.size());
    for (schema::NodeId id : preorder) {
      prepared_query.push_back(
          sim::PrepareName(query.node(id).name, options.name, &interner));
    }
    std::vector<sim::PreparedName> prepared_target;
    std::vector<const sim::PreparedName*> target_ptrs;
    std::vector<sim::CutoffScore> row;
    for (size_t si = next_schema.fetch_add(1); si < repo.schema_count();
         si = next_schema.fetch_add(1)) {
      const schema::Schema& s = repo.schema(static_cast<int32_t>(si));
      std::vector<double>& matrix = pool.matrices_[si];
      pool.schema_sizes_[si] = s.size();
      matrix.resize(preorder.size() * s.size());
      prepared_target.clear();
      prepared_target.reserve(s.size());
      for (size_t node = 0; node < s.size(); ++node) {
        prepared_target.push_back(
            sim::PrepareName(s.node(static_cast<schema::NodeId>(node)).name,
                             options.name, &interner));
      }
      target_ptrs.clear();
      target_ptrs.reserve(s.size());
      for (const sim::PreparedName& t : prepared_target) {
        target_ptrs.push_back(&t);
      }
      row.resize(s.size());
      for (size_t pos = 0; pos < preorder.size(); ++pos) {
        const schema::SchemaNode& q = query.node(preorder[pos]);
        sim::BlockScorer scorer(prepared_query[pos], options.name);
        scorer.ScoreMany(target_ptrs, /*min_score=*/0.0, row.data());
        for (size_t node = 0; node < s.size(); ++node) {
          matrix[pos * s.size() + node] = match::ApplyTypePenalty(
              1.0 - row[node].score, q,
              s.node(static_cast<schema::NodeId>(node)), options);
        }
      }
    }
  };

  if (num_threads == 1) {
    fill();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) workers.emplace_back(fill);
    for (std::thread& w : workers) w.join();
  }

  pool.stats_.schema_count = repo.schema_count();
  pool.stats_.threads_used = num_threads;
  for (const auto& matrix : pool.matrices_) {
    pool.stats_.total_entries += matrix.size();
  }
  return pool;
}

}  // namespace smb::engine
