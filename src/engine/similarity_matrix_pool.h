#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "match/objective.h"
#include "schema/repository.h"
#include "schema/schema.h"

/// \file similarity_matrix_pool.h
/// \brief Shared, precomputed query×repository similarity matrices.
///
/// The name-distance computation dominates matching cost, and every matcher
/// evaluates the same (query element, repository element) pairs. Instead of
/// each `ObjectiveFunction` instance filling a private lazy cache — single
/// threaded, once per matcher run — the pool computes the dense node-cost
/// matrix of every repository schema exactly once (optionally on a worker
/// pool) and hands out immutable views. All matchers and all batch-engine
/// worker threads then share the same read-only data. The values are
/// produced by `match::ComputeNodeCost`, so they are bit-identical to what
/// the lazy path computes — sharing the pool never changes a Δ.

namespace smb::engine {

/// \brief Size/shape of a built pool (for reports and benches).
struct SimilarityPoolStats {
  size_t schema_count = 0;
  /// Total matrix entries across all schemas (= Σ m·|schema|).
  size_t total_entries = 0;
  /// Worker threads that participated in the precompute.
  size_t threads_used = 1;
};

/// \brief Dense per-schema node-cost matrices, computed once, shared by all
/// matchers. Immutable after Build, safe for concurrent reads.
class SimilarityMatrixPool : public match::NodeCostProvider {
 public:
  /// \brief Precomputes the cost matrix of every repository schema.
  ///
  /// `num_threads` workers split the schemas (0 ⇒ hardware concurrency).
  /// `query` is traversed in pre-order, matching
  /// `ObjectiveFunction::query_preorder`. The inputs may be destroyed after
  /// Build returns; the pool owns its matrices.
  static Result<SimilarityMatrixPool> Build(
      const schema::Schema& query, const schema::SchemaRepository& repo,
      const match::ObjectiveOptions& options, size_t num_threads = 1);

  /// Row-major matrix for `schema_index`:
  /// `matrix[pos * schema_size + node]`. Never nullptr for a valid index.
  const double* NodeCostMatrix(int32_t schema_index) const override {
    return matrices_[static_cast<size_t>(schema_index)].data();
  }

  /// Convenience accessor mirroring `ObjectiveFunction::NodeCost`.
  double cost(size_t pos, int32_t schema_index, schema::NodeId target) const {
    return matrices_[static_cast<size_t>(schema_index)]
                    [pos * schema_sizes_[static_cast<size_t>(schema_index)] +
                     static_cast<size_t>(target)];
  }

  /// Number of schemas the pool covers.
  size_t schema_count() const { return matrices_.size(); }

  /// Query pre-order positions covered (rows per matrix).
  size_t query_positions() const { return positions_; }

  const SimilarityPoolStats& stats() const { return stats_; }

 private:
  SimilarityMatrixPool() = default;

  std::vector<std::vector<double>> matrices_;
  std::vector<size_t> schema_sizes_;
  size_t positions_ = 0;
  SimilarityPoolStats stats_;
};

/// \brief A shard's window into a pool: translates shard-local schema
/// indices to the pool's global ones. Lives on the batch engine's per-shard
/// state; cheap to copy.
class ShardCostView : public match::NodeCostProvider {
 public:
  ShardCostView(const SimilarityMatrixPool* pool, int32_t first_schema)
      : pool_(pool), first_schema_(first_schema) {}

  const double* NodeCostMatrix(int32_t schema_index) const override {
    return pool_->NodeCostMatrix(first_schema_ + schema_index);
  }

 private:
  const SimilarityMatrixPool* pool_;
  int32_t first_schema_;
};

}  // namespace smb::engine
