#include "engine/batch_match_engine.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <vector>

/// \file batch_match_engine.cc
/// \brief Sharded batch matching: dense/sparse provider setup, worker
/// pool, deterministic merge, adaptive budget escalation.

#include "common/timing.h"

namespace smb::engine {

namespace {

using Clock = SteadyClock;

struct Shard {
  int32_t first_schema = 0;
  size_t schema_count = 0;
};

std::vector<Shard> PartitionSchemas(size_t schema_count, size_t shard_size) {
  std::vector<Shard> shards;
  for (size_t base = 0; base < schema_count; base += shard_size) {
    Shard shard;
    shard.first_schema = static_cast<int32_t>(base);
    shard.schema_count = std::min(shard_size, schema_count - base);
    shards.push_back(shard);
  }
  return shards;
}

/// A shard's window into per-query candidate lists: translates shard-local
/// schema indices to the global ones the generator indexed (the sparse
/// counterpart of ShardCostView).
class ShardCandidateView : public match::CandidateProvider {
 public:
  ShardCandidateView(const match::CandidateProvider* global,
                     int32_t first_schema)
      : global_(global), first_schema_(first_schema) {}

  const std::vector<match::CandidateEntry>* CandidatesFor(
      size_t pos, int32_t schema_index) const override {
    return global_->CandidatesFor(pos, first_schema_ + schema_index);
  }

  double SkipLowerBound(size_t pos, int32_t schema_index) const override {
    return global_->SkipLowerBound(pos, first_schema_ + schema_index);
  }

 private:
  const match::CandidateProvider* global_;
  int32_t first_schema_;
};

}  // namespace

Result<match::AnswerSet> BatchMatchEngine::Run(
    const match::Matcher& matcher, const schema::Schema& query,
    const schema::SchemaRepository& repo,
    const match::MatchOptions& match_options, BatchMatchStats* stats) const {
  // Stats are defined on *every* exit path: callers that reuse one stats
  // struct across runs never read a stale previous run after a failure.
  if (stats != nullptr) *stats = BatchMatchStats{};
  if (match_options.shared_costs != nullptr) {
    return Status::InvalidArgument(
        "MatchOptions::shared_costs is managed by the batch engine and must "
        "be null on entry");
  }
  if (match_options.candidates != nullptr) {
    return Status::InvalidArgument(
        "MatchOptions::candidates is managed by the batch engine and must "
        "be null on entry; set BatchMatchOptions::candidate_limit instead");
  }
  if (options_.prepared_repository != nullptr &&
      !options_.prepared_repository->BuiltOver(repo)) {
    return Status::InvalidArgument(
        "BatchMatchOptions::prepared_repository was built over a different "
        "repository than the one passed to Run");
  }

  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  // Matchers holding cross-schema state (e.g. a clustering indexed by
  // global schema position) cannot run against shards: one single-threaded
  // whole-repository run. No shared pool either — such matchers prune by
  // their own candidate sets and would read only a sliver of a dense pool,
  // so the lazy per-instance cache is strictly cheaper. An empty repository
  // takes the same path purely to surface the matcher's own validation
  // error.
  if (!matcher.SupportsSharding() || repo.schema_count() == 0) {
    BatchMatchStats local;
    local.threads_used = 1;
    local.shard_count = repo.schema_count() == 0 ? 0 : 1;
    local.fell_back_to_single_run = !matcher.SupportsSharding();
    Clock::time_point start = Clock::now();
    Result<match::AnswerSet> answers =
        matcher.Match(query, repo, match_options, &local.match);
    local.match_seconds = SecondsSince(start);
    if (stats != nullptr) *stats = local;
    if (!answers.ok()) return answers.status();
    if (options_.global_top_k > 0) {
      answers = answers->TopN(options_.global_top_k);
    }
    return answers;
  }

  size_t shard_size = options_.shard_size;
  if (shard_size == 0) {
    // Several shards per thread so a slow shard doesn't idle the others;
    // at least one schema per shard.
    shard_size = std::max<size_t>(1, repo.schema_count() / (threads * 4));
  }
  std::vector<Shard> shards = PartitionSchemas(repo.schema_count(),
                                               shard_size);

  BatchMatchStats local;
  local.shard_count = shards.size();

  const bool adaptive = options_.adaptive.has_value();
  const bool sparse =
      (options_.candidate_limit > 0 || adaptive) && !query.empty();

  // Phase 1, sparse: query-independent repository index (reused when the
  // caller prebuilt it) + per-query candidate generation — at the fixed
  // `candidate_limit`, or bound-driven when `adaptive` is set (each cell
  // grows until the skip-bound certifies the completeness target at this
  // run's Δ threshold). The dense pool is skipped entirely — only
  // generated candidates are ever scored.
  std::optional<index::PreparedRepository> owned_prepared;
  std::optional<index::QueryCandidates> candidates;
  if (sparse) {
    Clock::time_point start = Clock::now();
    const index::PreparedRepository* prepared = options_.prepared_repository;
    if (prepared == nullptr) {
      auto built =
          index::PreparedRepository::Build(repo, match_options.objective.name);
      if (!built.ok()) {
        if (stats != nullptr) *stats = local;
        return built.status();
      }
      owned_prepared = std::move(built).value();
      prepared = &*owned_prepared;
    }
    index::CandidateGenerator generator(prepared, match_options.objective);
    generator.set_block_max_enabled(options_.block_max_postings);
    Result<index::QueryCandidates> generated =
        adaptive ? generator.GenerateAdaptive(query, *options_.adaptive,
                                              match_options.delta_threshold,
                                              &local.adaptive)
                 : generator.Generate(query, options_.candidate_limit);
    if (!generated.ok()) {
      if (stats != nullptr) *stats = local;
      return generated.status();
    }
    candidates = std::move(generated).value();
    local.adaptive_mode = adaptive;
    local.index_seconds = SecondsSince(start);
    local.match.candidates_generated = candidates->candidates_generated();
    local.match.candidates_skipped = candidates->candidates_skipped();
    local.provably_complete_fraction =
        candidates->ProvablyCompleteFraction(match_options.delta_threshold);
  }

  // Phase 1, dense: shared similarity precompute. Parallel across
  // *schemas*, not shards, so it gets the full thread count even when
  // shards are few.
  std::optional<SimilarityMatrixPool> pool;
  if (!sparse && options_.share_similarity_matrices && !query.empty()) {
    Clock::time_point start = Clock::now();
    auto built =
        SimilarityMatrixPool::Build(query, repo, match_options.objective,
                                    threads);
    if (!built.ok()) {
      if (stats != nullptr) *stats = local;
      return built.status();
    }
    pool = std::move(built).value();
    local.precompute_seconds = SecondsSince(start);
  }

  threads = std::min(threads, shards.size());
  local.threads_used = threads;

  // Per-shard budget accounting: how many candidate entries the index
  // handed to each shard (the adaptive mode's bound-driven spend, or the
  // fixed C × cells otherwise).
  if (candidates) {
    local.shard_candidates_generated.assign(shards.size(), 0);
    for (size_t i = 0; i < shards.size(); ++i) {
      for (size_t pos = 0; pos < candidates->positions(); ++pos) {
        for (size_t s = 0; s < shards[i].schema_count; ++s) {
          local.shard_candidates_generated[i] +=
              candidates
                  ->CandidatesFor(pos, shards[i].first_schema +
                                           static_cast<int32_t>(s))
                  ->size();
        }
      }
    }
  }

  // Phase 2: workers claim shards off a shared counter. Every slot below is
  // written by exactly one worker, so no locking is needed.
  std::vector<Result<match::AnswerSet>> shard_answers(
      shards.size(), Status::Internal("shard never ran"));
  std::vector<match::MatchStats> shard_stats(shards.size());
  std::atomic<size_t> next_shard{0};
  Clock::time_point match_start = Clock::now();
  auto worker = [&]() {
    for (size_t i = next_shard.fetch_add(1); i < shards.size();
         i = next_shard.fetch_add(1)) {
      const Shard& shard = shards[i];
      schema::SchemaRepository shard_repo;
      Status build_status = Status::OK();
      for (size_t s = 0; s < shard.schema_count; ++s) {
        auto added = shard_repo.Add(repo.schema(
            shard.first_schema + static_cast<int32_t>(s)));
        if (!added.ok()) {
          build_status = added.status().WithContext(
              "while building repository shard " + std::to_string(i));
          break;
        }
      }
      if (!build_status.ok()) {
        shard_answers[i] = build_status;
        continue;
      }
      ShardCostView cost_view(pool ? &*pool : nullptr, shard.first_schema);
      ShardCandidateView candidate_view(candidates ? &*candidates : nullptr,
                                        shard.first_schema);
      match::MatchOptions shard_options = match_options;
      if (pool) shard_options.shared_costs = &cost_view;
      if (candidates) shard_options.candidates = &candidate_view;
      shard_answers[i] =
          matcher.Match(query, shard_repo, shard_options, &shard_stats[i]);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) workers.emplace_back(worker);
    for (std::thread& w : workers) w.join();
  }
  local.match_seconds = SecondsSince(match_start);

  // Merge: first error (by shard order) wins; otherwise translate each
  // shard-local schema index back to the global repository and re-rank.
  match::AnswerSet merged;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (!shard_answers[i].ok()) {
      if (stats != nullptr) *stats = local;
      return shard_answers[i].status().WithContext(
          "shard " + std::to_string(i) + " of " +
          std::to_string(shards.size()));
    }
    local.match += shard_stats[i];
    for (const match::Mapping& mapping : shard_answers[i]->mappings()) {
      match::Mapping global = mapping;
      global.schema_index += shards[i].first_schema;
      merged.Add(std::move(global));
    }
  }
  merged.Finalize();
  if (options_.global_top_k > 0) {
    merged = merged.TopN(options_.global_top_k);
  }
  if (stats != nullptr) *stats = local;
  return merged;
}

}  // namespace smb::engine
