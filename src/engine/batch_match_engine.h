#pragma once

#include <cstddef>

#include "common/result.h"
#include "engine/similarity_matrix_pool.h"
#include "match/answer_set.h"
#include "match/matcher.h"
#include "schema/repository.h"
#include "schema/schema.h"

/// \file batch_match_engine.h
/// \brief Sharded, multi-threaded matching over a schema repository.
///
/// The matchers process repository schemas independently, so a matching run
/// parallelizes by splitting the repository into contiguous shards and
/// running the matcher on each shard from a worker-thread pool. Name/type
/// costs are precomputed once in a shared `SimilarityMatrixPool` (itself
/// built in parallel) and handed to every worker as immutable views, so no
/// similarity is ever computed twice and no worker mutates shared state.
/// Per-shard answer sets are merged — schema indices translated back to the
/// global repository — into one globally ranked answer set, optionally cut
/// to a global top-k.
///
/// The merged answers are *identical* (keys and Δ) to a direct
/// single-threaded `matcher.Match(query, repo, ...)` run for any
/// shard-safe matcher (`Matcher::SupportsSharding()`), for every thread
/// count and shard size: per-schema work is bit-identical, and
/// `AnswerSet::Finalize` imposes the same deterministic global order.

namespace smb::engine {

/// \brief Batch engine configuration.
struct BatchMatchOptions {
  /// Worker threads (0 ⇒ hardware concurrency). 1 still runs the sharded
  /// code path, inline on the calling thread.
  size_t num_threads = 1;
  /// Repository schemas per shard; 0 picks a size that gives each thread
  /// several shards to balance uneven schema costs.
  size_t shard_size = 0;
  /// Keep only the globally best k answers after the merge (0 = keep all).
  size_t global_top_k = 0;
  /// Precompute the shared similarity pool. Disabling falls back to each
  /// worker's private lazy cache (costs are then computed once per shard
  /// that touches them instead of once globally).
  bool share_similarity_matrices = true;
};

/// \brief What a batch run did (timings in seconds, wall clock).
struct BatchMatchStats {
  /// Matcher work counters accumulated across all shards.
  match::MatchStats match;
  size_t shard_count = 0;
  size_t threads_used = 0;
  /// True when the matcher refused sharding and the engine fell back to one
  /// single-threaded whole-repository run.
  bool fell_back_to_single_run = false;
  double precompute_seconds = 0.0;
  double match_seconds = 0.0;
};

/// \brief Runs a matcher over repository shards on a worker-thread pool.
class BatchMatchEngine {
 public:
  explicit BatchMatchEngine(BatchMatchOptions options = {})
      : options_(options) {}

  /// \brief Matches `query` against `repo` with `matcher`, sharded across
  /// worker threads. `match_options.shared_costs` is managed by the engine
  /// and must be null. On any shard failure the first error (by shard
  /// order) is returned.
  Result<match::AnswerSet> Run(const match::Matcher& matcher,
                               const schema::Schema& query,
                               const schema::SchemaRepository& repo,
                               const match::MatchOptions& match_options,
                               BatchMatchStats* stats = nullptr) const;

  const BatchMatchOptions& options() const { return options_; }

 private:
  BatchMatchOptions options_;
};

}  // namespace smb::engine
