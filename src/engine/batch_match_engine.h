#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "engine/similarity_matrix_pool.h"
#include "index/candidate_generator.h"
#include "index/prepared_repository.h"
#include "match/answer_set.h"
#include "match/matcher.h"
#include "schema/repository.h"
#include "schema/schema.h"

/// \file batch_match_engine.h
/// \brief Sharded, multi-threaded matching over a schema repository.
///
/// The matchers process repository schemas independently, so a matching run
/// parallelizes by splitting the repository into contiguous shards and
/// running the matcher on each shard from a worker-thread pool. Per-shard
/// answer sets are merged — schema indices translated back to the global
/// repository — into one globally ranked answer set, optionally cut to a
/// global top-k.
///
/// Costs reach the workers one of two ways:
///  * **dense** (default): name/type costs are precomputed once in a shared
///    `SimilarityMatrixPool` (itself built in parallel) and handed to every
///    worker as immutable views — no similarity is computed twice, and the
///    merged answers are *identical* (keys and Δ) to a direct
///    single-threaded `matcher.Match(query, repo, ...)` run for any
///    shard-safe matcher, for every thread count and shard size;
///  * **sparse** (`candidate_limit > 0`): a query-independent
///    `index::PreparedRepository` (built once here, or passed in prebuilt
///    and amortized across many queries) generates the top-C candidates per
///    query element, and workers only score those — the non-exhaustive S2
///    restriction. With C ≥ every schema size the candidate lists are
///    complete and the answers are again identical to the dense path;
///    smaller C trades certified-measurable recall for speed
///    (`index::QueryCandidates::SkipLowerBound`).
///
/// The sparse path has a third, *bound-driven* flavor (`adaptive` set):
/// instead of one fixed C, every (query element, schema) cell grows its
/// candidate list geometrically until the admissible skip-bound certifies
/// the requested per-query completeness target at the run's Δ threshold —
/// the paper's effectiveness bound acting as the scheduling signal rather
/// than passive telemetry. Budget accounting (candidates scored,
/// escalations, the achieved bound, per-shard candidate counts) is
/// reported in `BatchMatchStats`.

namespace smb::engine {

/// \brief Batch engine configuration.
struct BatchMatchOptions {
  /// Worker threads (0 ⇒ hardware concurrency). 1 still runs the sharded
  /// code path, inline on the calling thread.
  size_t num_threads = 1;
  /// Repository schemas per shard; 0 picks a size that gives each thread
  /// several shards to balance uneven schema costs.
  size_t shard_size = 0;
  /// Keep only the globally best k answers after the merge (0 = keep all).
  size_t global_top_k = 0;
  /// Precompute the shared similarity pool. Disabling falls back to each
  /// worker's private lazy cache (costs are then computed once per shard
  /// that touches them instead of once globally).
  bool share_similarity_matrices = true;
  /// Candidates per (query element, repository schema) the index hands to
  /// matchers. 0 = dense path. When > 0 the dense pool is skipped entirely:
  /// only the generated candidates are ever scored. Matchers that refuse
  /// sharding (cluster) ignore the limit — their single-run fallback is a
  /// full dense run, reported via `fell_back_to_single_run`.
  size_t candidate_limit = 0;
  /// Optional prebuilt repository index for the sparse path (must be built
  /// over exactly the `repo` passed to Run). When null and
  /// `candidate_limit > 0`, the engine builds one per Run — correct but
  /// wasteful for workloads; build once and share instead.
  const index::PreparedRepository* prepared_repository = nullptr;
  /// Bound-driven adaptive sparse mode: when set, candidate lists come
  /// from `index::CandidateGenerator::GenerateAdaptive` against the run's
  /// `MatchOptions::delta_threshold` — each cell grows until its skip-bound
  /// certifies `adaptive->min_provable_completeness` — and
  /// `candidate_limit` is ignored (it may stay 0). With a target of 1.0
  /// and an unbounded `max_limit` the answers are byte-identical to the
  /// dense path for every matcher and thread count. Non-shardable matchers
  /// fall back to a full dense run exactly as in fixed sparse mode.
  std::optional<index::AdaptiveCandidatePolicy> adaptive;
  /// Block-max (WAND) trigram postings traversal in the sparse candidate
  /// generator (on by default). Selected candidates — and therefore match
  /// answers — are identical either way; disabling falls back to the
  /// classic retrieve-everything walk, kept as the correctness oracle.
  bool block_max_postings = true;
};

/// \brief What a batch run did (timings in seconds, wall clock).
struct BatchMatchStats {
  /// Matcher work counters accumulated across all shards (plus the index's
  /// candidates_generated/_skipped on sparse runs).
  match::MatchStats match;
  size_t shard_count = 0;
  size_t threads_used = 0;
  /// True when the matcher refused sharding and the engine fell back to one
  /// single-threaded whole-repository run.
  bool fell_back_to_single_run = false;
  double precompute_seconds = 0.0;
  double match_seconds = 0.0;
  /// Sparse path only: index build (when not prebuilt) + candidate
  /// generation time.
  double index_seconds = 0.0;
  /// Fraction of (query position, schema) cells whose skip-bound certifies
  /// that no answer within the run's Δ threshold was lost to the candidate
  /// cutoff — the run's *certified* effectiveness bound. The empty /
  /// dense-run convention is **1.0** (nothing was skipped, so completeness
  /// holds vacuously); every layer reporting this quantity
  /// (`eval::QueryRunReport`, the CLI, the serve cache) shares that
  /// convention.
  double provably_complete_fraction = 1.0;
  /// True when this run generated candidates adaptively
  /// (`BatchMatchOptions::adaptive`); `adaptive` below is only meaningful
  /// then.
  bool adaptive_mode = false;
  /// Budget accounting of the adaptive generation: rounds, candidates
  /// scored, escalated/capped cells and the achieved bound distribution.
  index::AdaptiveGenerationStats adaptive;
  /// Sparse runs: candidate entries handed to each shard (Σ over the
  /// shard's (position, schema) cells) — the per-shard budget the index
  /// spent. Empty on dense runs and on the single-run fallback.
  std::vector<uint64_t> shard_candidates_generated;
};

/// \brief Runs a matcher over repository shards on a worker-thread pool.
class BatchMatchEngine {
 public:
  explicit BatchMatchEngine(BatchMatchOptions options = {})
      : options_(options) {}

  /// \brief Matches `query` against `repo` with `matcher`, sharded across
  /// worker threads. `match_options.shared_costs` and
  /// `match_options.candidates` are managed by the engine and must be null.
  /// On any shard failure the first error (by shard order) is returned.
  /// `stats`, when non-null, is written on *every* exit path — on failure
  /// it describes the work completed before the error (callers reusing one
  /// struct across runs never read a stale previous run).
  Result<match::AnswerSet> Run(const match::Matcher& matcher,
                               const schema::Schema& query,
                               const schema::SchemaRepository& repo,
                               const match::MatchOptions& match_options,
                               BatchMatchStats* stats = nullptr) const;

  const BatchMatchOptions& options() const { return options_; }

 private:
  BatchMatchOptions options_;
};

}  // namespace smb::engine
