#include "engine/query_cache.h"

namespace smb::engine {

const CachedAnswers* QueryResultCache::Lookup(const QueryCacheKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency, in place
  return &it->second->second;
}

void QueryResultCache::Insert(const QueryCacheKey& key, CachedAnswers entry) {
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace smb::engine
