#include "engine/query_cache.h"

/// \file query_cache.cc
/// \brief Striped LRU implementation: per-stripe mutex, map + intrusive
/// recency list, shared_ptr entries so hits survive concurrent eviction.

namespace smb::engine {

namespace {

/// Largest power of two ≤ `value` (≥ 1).
size_t FloorPow2(size_t value) {
  size_t pow = 1;
  while (pow * 2 <= value) pow *= 2;
  return pow;
}

}  // namespace

QueryResultCache::QueryResultCache(size_t capacity, size_t stripes)
    : capacity_(capacity) {
  // A stripe with capacity 0 would reject every insert, so never run more
  // stripes than entries; a disabled cache (capacity 0) keeps one inert
  // stripe so the fast paths stay branch-free.
  size_t count = FloorPow2(stripes == 0 ? 1 : stripes);
  if (capacity_ == 0) {
    count = 1;
  } else if (count > capacity_) {
    count = FloorPow2(capacity_);
  }
  stripes_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Split the capacity evenly; the first `capacity % count` stripes take
    // the remainder so the per-stripe capacities sum to `capacity`.
    stripes_.push_back(std::make_unique<Stripe>(
        capacity_ / count + (i < capacity_ % count ? 1 : 0)));
  }
}

std::shared_ptr<const CachedAnswers> QueryResultCache::Lookup(
    const QueryCacheKey& key) {
  Stripe& stripe = StripeFor(key);
  MutexLock lock(stripe.mutex);
  auto it = stripe.index.find(key);
  if (it == stripe.index.end()) {
    ++stripe.stats.misses;
    return nullptr;
  }
  ++stripe.stats.hits;
  // Refresh recency in place.
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  return it->second->second;
}

void QueryResultCache::Insert(const QueryCacheKey& key, CachedAnswers entry) {
  Insert(key, std::make_shared<const CachedAnswers>(std::move(entry)));
}

void QueryResultCache::Insert(const QueryCacheKey& key,
                              std::shared_ptr<const CachedAnswers> entry) {
  Stripe& stripe = StripeFor(key);
  MutexLock lock(stripe.mutex);
  if (stripe.capacity == 0) return;
  auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    it->second->second = std::move(entry);
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return;
  }
  stripe.lru.emplace_front(key, std::move(entry));
  stripe.index.emplace(key, stripe.lru.begin());
  while (stripe.lru.size() > stripe.capacity) {
    stripe.index.erase(stripe.lru.back().first);
    stripe.lru.pop_back();
    ++stripe.stats.evictions;
  }
}

size_t QueryResultCache::size() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(stripe->mutex);
    total += stripe->lru.size();
  }
  return total;
}

QueryCacheStats QueryResultCache::stats() const {
  QueryCacheStats total;
  for (const auto& stripe : stripes_) {
    MutexLock lock(stripe->mutex);
    total += stripe->stats;
  }
  return total;
}

}  // namespace smb::engine
