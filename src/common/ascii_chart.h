#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file ascii_chart.h
/// \brief Terminal scatter/line chart used by the bench binaries to render
/// the paper's P/R figures directly in the console output.

namespace smb {

/// \brief One named data series of (x, y) points.
struct ChartSeries {
  std::string name;
  /// Single-character glyph used to plot the series.
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// \brief Options controlling chart geometry and axes.
struct ChartOptions {
  int width = 61;    ///< plot area width in characters
  int height = 21;   ///< plot area height in characters
  double x_min = 0.0;
  double x_max = 1.0;
  double y_min = 0.0;
  double y_max = 1.0;
  std::string x_label = "x";
  std::string y_label = "y";
  bool draw_legend = true;
};

/// \brief Renders series into a character grid with axes, tick labels and an
/// optional legend. Later series overwrite earlier ones on collisions.
void RenderChart(const std::vector<ChartSeries>& series,
                 const ChartOptions& options, std::ostream& os);

}  // namespace smb
