#include "common/flags.h"

#include <cstdlib>

#include "common/strings.h"

/// \file flags.cc
/// \brief Minimal --key=value command-line flag parsing.

namespace smb {

Result<CommandLine> CommandLine::Parse(int argc, const char* const* argv) {
  CommandLine cl;
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!flags_done && arg == "--") {
      flags_done = true;
      continue;
    }
    if (!flags_done && StartsWith(arg, "--")) {
      std::string body = arg.substr(2);
      if (body.empty()) {
        return Status::InvalidArgument("empty flag name");
      }
      size_t eq = body.find('=');
      if (eq != std::string::npos) {
        if (eq == 0) {
          return Status::InvalidArgument("empty flag name in '" + arg + "'");
        }
        cl.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        cl.flags_[body] = argv[++i];
      } else {
        cl.flags_[body] = "";
      }
      continue;
    }
    if (cl.command_.empty()) {
      cl.command_ = arg;
    } else {
      cl.positional_.push_back(arg);
    }
  }
  return cl;
}

std::string CommandLine::Get(const std::string& key,
                             const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

Result<double> CommandLine::GetDouble(const std::string& key,
                                      double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    return Status::InvalidArgument("flag --" + key + " is not a number: '" +
                                   it->second + "'");
  }
  return value;
}

Result<uint64_t> CommandLine::GetUint(const std::string& key,
                                      uint64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty() ||
      it->second.find('-') != std::string::npos) {
    return Status::InvalidArgument("flag --" + key +
                                   " is not a non-negative integer: '" +
                                   it->second + "'");
  }
  return static_cast<uint64_t>(value);
}

}  // namespace smb
