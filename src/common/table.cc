#include "common/table.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

/// \file table.cc
/// \brief Fixed-width text table layout for CLI reports.

namespace smb {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddNumericRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(StrFormat("%.*f", precision, v));
  AddRow(std::move(row));
}

void TextTable::Print(std::ostream& os, int indent) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string pad(static_cast<size_t>(indent), ' ');
  auto print_row = [&](const std::vector<std::string>& row) {
    os << pad;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << pad << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

void TextTable::WriteCsv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string FormatDouble(double v, int max_precision) {
  if (std::isnan(v)) return "nan";
  std::string s = StrFormat("%.*f", max_precision, v);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  if (s == "-0") s = "0";
  return s;
}

}  // namespace smb
