#pragma once

#include <chrono>

/// \file timing.h
/// \brief Wall-clock helpers shared by the engine and workload timers.

namespace smb {

using SteadyClock = std::chrono::steady_clock;

/// Seconds elapsed since `start` (wall clock).
inline double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace smb
