#pragma once

#include <cassert>
#include <new>
#include <type_traits>
#include <utility>

#include "common/status.h"

/// \file result.h
/// \brief `Result<T>`: a value-or-Status sum type (Arrow idiom).

namespace smb {

/// \brief Holds either a `T` or a non-OK `Status` explaining why the value
/// could not be produced.
///
/// Typical usage:
/// \code
///   Result<Schema> r = ReadSchema(path);
///   if (!r.ok()) return r.status();
///   Schema s = std::move(r).value();
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result (implicit by design, mirrors
  /// absl::StatusOr).
  Result(T value) : has_value_(true) {  // NOLINT(runtime/explicit)
    new (&storage_.value) T(std::move(value));
  }

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : has_value_(false) {  // NOLINT(runtime/explicit)
    assert(!status.ok() && "Result constructed from OK status");
    new (&storage_.status) Status(std::move(status));
  }

  Result(const Result& other) : has_value_(other.has_value_) {
    if (has_value_) {
      new (&storage_.value) T(other.storage_.value);
    } else {
      new (&storage_.status) Status(other.storage_.status);
    }
  }

  Result(Result&& other) noexcept : has_value_(other.has_value_) {
    if (has_value_) {
      new (&storage_.value) T(std::move(other.storage_.value));
    } else {
      new (&storage_.status) Status(std::move(other.storage_.status));
    }
  }

  Result& operator=(const Result& other) {
    if (this != &other) {
      Destroy();
      has_value_ = other.has_value_;
      if (has_value_) {
        new (&storage_.value) T(other.storage_.value);
      } else {
        new (&storage_.status) Status(other.storage_.status);
      }
    }
    return *this;
  }

  Result& operator=(Result&& other) noexcept {
    if (this != &other) {
      Destroy();
      has_value_ = other.has_value_;
      if (has_value_) {
        new (&storage_.value) T(std::move(other.storage_.value));
      } else {
        new (&storage_.status) Status(std::move(other.storage_.status));
      }
    }
    return *this;
  }

  ~Result() { Destroy(); }

  /// True iff a value is present.
  bool ok() const { return has_value_; }

  /// The status: OK when a value is present.
  Status status() const {
    return has_value_ ? Status::OK() : storage_.status;
  }

  /// \name Value accessors. Undefined behaviour if `!ok()` (asserted).
  /// @{
  const T& value() const& {
    assert(has_value_);
    return storage_.value;
  }
  T& value() & {
    assert(has_value_);
    return storage_.value;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(storage_.value);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  /// @}

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const& {
    return has_value_ ? storage_.value : std::move(fallback);
  }

 private:
  void Destroy() {
    if (has_value_) {
      storage_.value.~T();
    } else {
      storage_.status.~Status();
    }
  }

  union Storage {
    Storage() {}
    ~Storage() {}
    T value;
    Status status;
  } storage_;
  bool has_value_;
};

}  // namespace smb

/// Unwraps a Result into `lhs`, or propagates its error status.
#define SMB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define SMB_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SMB_ASSIGN_OR_RETURN_NAME(a, b) SMB_ASSIGN_OR_RETURN_CONCAT(a, b)

#define SMB_ASSIGN_OR_RETURN(lhs, rexpr) \
  SMB_ASSIGN_OR_RETURN_IMPL(             \
      SMB_ASSIGN_OR_RETURN_NAME(_smb_result_, __LINE__), lhs, rexpr)
