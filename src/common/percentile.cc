#include "common/percentile.h"

#include <algorithm>
#include <cmath>
#include <numeric>

/// \file percentile.cc
/// \brief Nearest-rank quantile math and the sliding-window ring buffer.

namespace smb {

double NearestRankQuantileInPlace(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: ceil(q * n) converted to a 0-based index.
  size_t rank = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(samples->size())));
  if (rank > 0) --rank;
  std::nth_element(samples->begin(), samples->begin() + rank, samples->end());
  return (*samples)[rank];
}

double NearestRankQuantile(std::vector<double> samples, double q) {
  return NearestRankQuantileInPlace(&samples, q);
}

PercentileSummary SummarizePercentiles(std::vector<double> samples) {
  PercentileSummary summary;
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  summary.count = samples.size();
  summary.min = samples.front();
  summary.max = samples.back();
  summary.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                 static_cast<double>(samples.size());
  // The samples are fully sorted, so each quantile is a direct index.
  const auto at = [&samples](double q) {
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank > 0) --rank;
    return samples[rank];
  };
  summary.p50 = at(0.50);
  summary.p95 = at(0.95);
  summary.p99 = at(0.99);
  return summary;
}

SlidingWindowRecorder::SlidingWindowRecorder(size_t window)
    : window_(window) {
  samples_.reserve(window_);
}

void SlidingWindowRecorder::Record(double sample) {
  if (window_ == 0) return;  // Disabled: retain nothing.
  const size_t slot = static_cast<size_t>(total_ % window_);
  if (slot < samples_.size()) {
    samples_[slot] = sample;
  } else {
    samples_.push_back(sample);
  }
  ++total_;
}

double SlidingWindowRecorder::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> scratch = samples_;
  return NearestRankQuantileInPlace(&scratch, q);
}

void SlidingWindowRecorder::SeedTotalForTest(uint64_t total) {
  // Align the seeded counter so the next slot continues the fill phase:
  // the ring invariant is `slot == total_ % window_` for every retained
  // sample, which a fresh recorder establishes by filling slot 0 first.
  total_ = total;
  if (window_ != 0 && total_ % window_ != samples_.size()) {
    total_ += window_ - (total_ % window_) + samples_.size();
  }
}

}  // namespace smb
