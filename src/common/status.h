#pragma once

#include <ostream>
#include <string>
#include <utility>

/// \file status.h
/// \brief Error handling for the MatchBounds library.
///
/// Follows the RocksDB/Arrow idiom: operations that can fail return a
/// `smb::Status` (or `smb::Result<T>`, see result.h) instead of throwing.
/// Exceptions never cross a public API boundary.

namespace smb {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kParseError = 5,
  kIOError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kResourceExhausted = 9,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief The result of an operation that may fail.
///
/// A `Status` is cheap to copy when OK (no allocation) and carries a
/// code plus a diagnostic message otherwise.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// @}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The diagnostic message (empty when OK).
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CODE>: <message>".
  std::string ToString() const;

  /// \brief Prepends context to the message, keeping the code.
  ///
  /// No-op on an OK status. Useful when propagating errors upward:
  /// `return st.WithContext("while parsing schema 'foo'");`
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace smb

/// Propagates a non-OK status to the caller.
#define SMB_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::smb::Status _smb_status = (expr);             \
    if (!_smb_status.ok()) return _smb_status;      \
  } while (false)
