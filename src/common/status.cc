#include "common/status.h"

/// \file status.cc
/// \brief Status code names and message formatting.

namespace smb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace smb
