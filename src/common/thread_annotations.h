#pragma once

/// \file thread_annotations.h
/// \brief Clang Thread Safety Analysis attribute macros.
///
/// These macros turn the codebase's locking conventions into *compiler-
/// checked contracts*: a member annotated `SMB_GUARDED_BY(mutex_)` cannot
/// be read or written without `mutex_` held, a function annotated
/// `SMB_REQUIRES(mutex_)` cannot be called without it, and a forgotten
/// unlock path fails the build. The analysis runs under Clang with
/// `-Wthread-safety` (the CMake build enables it, with
/// `-Werror=thread-safety`, whenever the compiler is Clang); on other
/// compilers every macro expands to nothing, so annotated headers stay
/// portable.
///
/// The annotated capability types live in common/mutex.h (`smb::Mutex`,
/// `smb::MutexLock`) — `std::mutex` itself carries no capability
/// attributes under libstdc++, so mutex-protected classes use the wrapper.
/// Conventions (enforced by the docs chapter in docs/architecture.md):
///  * every mutex-protected member is `SMB_GUARDED_BY` its mutex;
///  * private helpers called with a lock held are `SMB_REQUIRES`;
///  * public entry points that take the lock themselves are
///    `SMB_EXCLUDES` when mis-nesting is plausible;
///  * `SMB_NO_THREAD_SAFETY_ANALYSIS` is a last resort and must carry a
///    justifying comment.

#if defined(__clang__)
#define SMB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SMB_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (argument names it in
/// diagnostics, e.g. `SMB_CAPABILITY("mutex")`).
#define SMB_CAPABILITY(x) SMB_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability.
#define SMB_SCOPED_CAPABILITY SMB_THREAD_ANNOTATION(scoped_lockable)

/// The member may only be accessed with the given capability held.
#define SMB_GUARDED_BY(x) SMB_THREAD_ANNOTATION(guarded_by(x))

/// The pointee may only be accessed with the given capability held.
#define SMB_PT_GUARDED_BY(x) SMB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define SMB_ACQUIRED_BEFORE(...) \
  SMB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SMB_ACQUIRED_AFTER(...) \
  SMB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function may only be called with the given capabilities held.
#define SMB_REQUIRES(...) \
  SMB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SMB_REQUIRES_SHARED(...) \
  SMB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the given capabilities.
#define SMB_ACQUIRE(...) SMB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SMB_ACQUIRE_SHARED(...) \
  SMB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SMB_RELEASE(...) SMB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SMB_RELEASE_SHARED(...) \
  SMB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define SMB_TRY_ACQUIRE(...) \
  SMB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function must be called *without* the given capabilities held
/// (it acquires them itself — prevents self-deadlock).
#define SMB_EXCLUDES(...) SMB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the
/// analysis).
#define SMB_ASSERT_CAPABILITY(x) SMB_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability.
#define SMB_RETURN_CAPABILITY(x) SMB_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis. Last resort; every use must carry
/// a comment explaining why the analysis cannot model the code.
#define SMB_NO_THREAD_SAFETY_ANALYSIS \
  SMB_THREAD_ANNOTATION(no_thread_safety_analysis)
