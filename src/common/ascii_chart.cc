#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"

/// \file ascii_chart.cc
/// \brief Terminal scatter/line chart rendering for the CLI figures.

namespace smb {

void RenderChart(const std::vector<ChartSeries>& series,
                 const ChartOptions& options, std::ostream& os) {
  const int w = std::max(10, options.width);
  const int h = std::max(5, options.height);
  const double xspan = options.x_max - options.x_min;
  const double yspan = options.y_max - options.y_min;
  if (xspan <= 0 || yspan <= 0) {
    os << "(empty chart: degenerate axis range)\n";
    return;
  }

  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), ' '));
  for (const auto& s : series) {
    const size_t n = std::min(s.x.size(), s.y.size());
    for (size_t i = 0; i < n; ++i) {
      double fx = (s.x[i] - options.x_min) / xspan;
      double fy = (s.y[i] - options.y_min) / yspan;
      if (fx < 0 || fx > 1 || fy < 0 || fy > 1 || std::isnan(fx) ||
          std::isnan(fy)) {
        continue;
      }
      int col = static_cast<int>(std::lround(fx * (w - 1)));
      int row = (h - 1) - static_cast<int>(std::lround(fy * (h - 1)));
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = s.glyph;
    }
  }

  const std::string ylab_hi = FormatDouble(options.y_max, 3);
  const std::string ylab_lo = FormatDouble(options.y_min, 3);
  size_t margin = std::max(ylab_hi.size(), ylab_lo.size()) + 1;

  os << std::string(margin, ' ') << options.y_label << "\n";
  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0) label = ylab_hi;
    else if (r == h - 1) label = ylab_lo;
    os << label << std::string(margin - label.size(), ' ') << "|"
       << grid[static_cast<size_t>(r)] << "\n";
  }
  os << std::string(margin, ' ') << "+" << std::string(static_cast<size_t>(w), '-')
     << "> " << options.x_label << "\n";
  const std::string xlab_lo = FormatDouble(options.x_min, 3);
  const std::string xlab_hi = FormatDouble(options.x_max, 3);
  os << std::string(margin + 1, ' ') << xlab_lo
     << std::string(
            std::max<size_t>(
                1, static_cast<size_t>(w) - xlab_lo.size() - xlab_hi.size()),
            ' ')
     << xlab_hi << "\n";

  if (options.draw_legend && !series.empty()) {
    os << std::string(margin, ' ') << "legend:";
    for (const auto& s : series) {
      os << "  " << s.glyph << "=" << s.name;
    }
    os << "\n";
  }
}

}  // namespace smb
