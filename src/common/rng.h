#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// Every stochastic component of the library (synthetic collection
/// generation, random-prune matcher, property-test sweeps) draws from
/// `smb::Rng`, seeded explicitly, so every experiment is reproducible
/// bit-for-bit across runs and platforms.

namespace smb {

/// \brief xoshiro256++ generator seeded via splitmix64.
///
/// Small, fast, and statistically solid for simulation workloads; not
/// cryptographic. Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. Two `Rng`s with equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform index in `[0, n)`. Requires `n > 0`.
  size_t UniformIndex(size_t n);

  /// Uniform double in `[0, 1)`.
  double UniformDouble();

  /// Uniform double in `[lo, hi)`.
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal draw (Box-Muller).
  double Normal();

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformIndex(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Samples `k` distinct indices from `[0, n)` without replacement.
  ///
  /// Returns them in ascending order. If `k >= n`, returns all of `[0, n)`.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for parallel substreams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace smb
