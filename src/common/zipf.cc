#include "common/zipf.h"

#include <algorithm>
#include <cmath>

/// \file zipf.cc
/// \brief CDF construction and binary-search sampling.

namespace smb {

ZipfSampler::ZipfSampler(size_t n, double exponent)
    : exponent_(exponent < 0.0 ? 0.0 : exponent) {
  if (n == 0) n = 1;
  cdf_.reserve(n);
  double cumulative = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cumulative += std::pow(static_cast<double>(i + 1), -exponent_);
    cdf_.push_back(cumulative);
  }
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double draw = rng->UniformDouble() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), draw);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  const double weight =
      std::pow(static_cast<double>(rank + 1), -exponent_);
  return weight / cdf_.back();
}

}  // namespace smb
