#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file table.h
/// \brief Fixed-width text table and CSV emission for bench output.
///
/// Every bench binary prints the series a paper figure plots; `TextTable`
/// renders them as aligned columns (human-readable) and `WriteCsv` emits the
/// same rows machine-readably so figures can be re-plotted externally.

namespace smb {

/// \brief A simple column-aligned text table.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimal digits.
  void AddNumericRow(const std::vector<double>& cells, int precision = 4);

  /// Number of data rows.
  size_t NumRows() const { return rows_.size(); }

  /// Renders with padded columns, a header underline, and `indent` leading
  /// spaces on every line.
  void Print(std::ostream& os, int indent = 0) const;

  /// Emits RFC-4180-ish CSV (fields containing comma/quote/newline quoted).
  void WriteCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double trimming trailing zeros ("0.25", "1", "0.3333").
std::string FormatDouble(double v, int max_precision = 6);

}  // namespace smb
