#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

/// \file zipf.h
/// \brief Zipfian rank sampling for skewed synthetic distributions.
///
/// Both realism knobs of the load harness draw from this one sampler:
/// vocabulary skew in the 100k-schema synthetic repository (a few hot
/// element names dominate, mirroring real-world schema corpora) and query
/// repetition in workload traces (a few hot queries dominate the stream,
/// which is what makes the serve-side result cache earn its hit rate).

namespace smb {

/// \brief Samples ranks `0..n-1` with probability proportional to
/// `(rank + 1)^-exponent` via a precomputed CDF and binary search.
///
/// Exponent 0 degenerates to the uniform distribution; exponent ~1 is the
/// classic Zipf shape. Immutable after construction and therefore safe to
/// share across threads (each caller brings its own Rng).
class ZipfSampler {
 public:
  /// `n` must be > 0; `exponent` must be >= 0.
  ZipfSampler(size_t n, double exponent);

  /// One rank draw in `[0, size())`.
  size_t Sample(Rng* rng) const;

  /// The exact probability of drawing `rank` (for distribution tests).
  double Probability(size_t rank) const;

  size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  /// cdf_[i] = unnormalized cumulative weight of ranks 0..i.
  std::vector<double> cdf_;
};

}  // namespace smb
