#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

/// \file flags.h
/// \brief Tiny command-line parser for the CLI tool and examples.
///
/// Grammar: `program <command> [--key=value | --key value | --switch] ...`
/// Positional arguments after the command are collected in order.

namespace smb {

/// \brief Parsed command line.
class CommandLine {
 public:
  /// Parses argv (argv[0] ignored). `--` ends flag parsing.
  static Result<CommandLine> Parse(int argc, const char* const* argv);

  /// First non-flag token ("" when none).
  const std::string& command() const { return command_; }

  /// Positional arguments after the command.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True iff the flag appeared (with or without a value).
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  /// Flag value; `fallback` when absent. Valueless switches yield "".
  std::string Get(const std::string& key, const std::string& fallback = "") const;

  /// Flag value parsed as double.
  Result<double> GetDouble(const std::string& key, double fallback) const;

  /// Flag value parsed as non-negative integer.
  Result<uint64_t> GetUint(const std::string& key, uint64_t fallback) const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace smb
