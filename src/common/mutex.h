#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

/// \file mutex.h
/// \brief Annotated mutex primitives for Clang Thread Safety Analysis.
///
/// `std::mutex` under libstdc++ carries no capability attributes, so
/// `SMB_GUARDED_BY(some_std_mutex)` would be rejected by the analysis.
/// Every mutex-protected class in the codebase therefore uses these thin
/// zero-overhead wrappers instead:
///
///  * `smb::Mutex` — a `std::mutex` marked as a lockable capability;
///  * `smb::MutexLock` — the scoped lock (`std::lock_guard` shape), also
///    usable as the Lockable handed to `CondVar::Wait`;
///  * `smb::CondVar` — a condition variable that waits on a `MutexLock`.
///
/// Waiting convention: the predicate-taking `std::condition_variable::wait`
/// overload hides the guarded reads inside an unannotated lambda, so
/// annotated classes use explicit `while (!pred) cv.Wait(lock);` loops —
/// the analysis then sees every guarded access under the capability.
namespace smb {

/// \brief A `std::mutex` annotated as a thread-safety capability.
class SMB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SMB_ACQUIRE() { mutex_.lock(); }
  void unlock() SMB_RELEASE() { mutex_.unlock(); }
  bool try_lock() SMB_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// \brief Scoped lock over `smb::Mutex` (the annotated `std::lock_guard`).
///
/// Also satisfies *BasicLockable*, so `CondVar::Wait(lock)` can release
/// and reacquire it around a sleep; the analysis tracks those transitions
/// through the annotated `lock()`/`unlock()` members.
class SMB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SMB_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SMB_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// \name BasicLockable (for CondVar::Wait; the wait always returns with
  /// the lock re-held, matching the destructor's unconditional release).
  /// @{
  void lock() SMB_ACQUIRE() { mutex_.lock(); }
  void unlock() SMB_RELEASE() { mutex_.unlock(); }
  /// @}

 private:
  Mutex& mutex_;
};

/// \brief Condition variable paired with `smb::Mutex`.
///
/// `std::condition_variable` insists on `std::unique_lock<std::mutex>`;
/// `std::condition_variable_any` accepts any BasicLockable, which lets the
/// annotated `MutexLock` flow through and keeps the capability bookkeeping
/// visible to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `lock`; returns with it re-held.
  void Wait(MutexLock& lock) { cv_.wait(lock); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace smb
