#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file strings.h
/// \brief Small string utilities shared across the library.

namespace smb {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any ASCII whitespace run; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Splits an identifier into lowercase word tokens.
///
/// Understands camelCase, PascalCase, snake_case, kebab-case, dotted.names,
/// and digit boundaries: `"purchaseOrder_ID2"` -> {"purchase","order","id","2"}.
/// This is the tokenizer used by token-based name similarity.
std::vector<std::string> SplitIdentifier(std::string_view name);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

}  // namespace smb
