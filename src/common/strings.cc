#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

/// \file strings.cc
/// \brief ASCII case folding, trimming, splitting and number parsing.

namespace smb {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> SplitIdentifier(std::string_view name) {
  std::vector<std::string> tokens;
  std::string current;
  enum class CharClass { kNone, kLower, kUpper, kDigit };
  CharClass prev = CharClass::kNone;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (size_t i = 0; i < name.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(name[i]);
    if (c == '_' || c == '-' || c == '.' || c == ' ' || c == '/' || c == ':') {
      flush();
      prev = CharClass::kNone;
      continue;
    }
    if (std::isdigit(c)) {
      // Digits form their own token run.
      if (prev != CharClass::kDigit) flush();
      current.push_back(static_cast<char>(c));
      prev = CharClass::kDigit;
      continue;
    }
    if (std::isupper(c)) {
      bool next_lower = i + 1 < name.size() &&
                        std::islower(static_cast<unsigned char>(name[i + 1]));
      // Boundary before "X" in "fooXbar" / "id2X", and before the last
      // capital of an acronym run followed by a lowercase:
      // "XMLSchema" -> "xml","schema".
      if (prev == CharClass::kLower || prev == CharClass::kDigit ||
          (prev == CharClass::kUpper && next_lower)) {
        flush();
      }
      current.push_back(static_cast<char>(std::tolower(c)));
      prev = CharClass::kUpper;
      continue;
    }
    if (prev == CharClass::kDigit) flush();
    current.push_back(static_cast<char>(std::tolower(c)));
    prev = CharClass::kLower;
  }
  flush();
  return tokens;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (true) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

}  // namespace smb
