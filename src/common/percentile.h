#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file percentile.h
/// \brief Nearest-rank quantiles and a sliding-window sample recorder.
///
/// One tested implementation shared by the serve frontend's `stats`
/// endpoint (`serve::ServerStats`) and the trace-replay load harness
/// (`eval::ReplayTrace`), so both report percentiles computed by the same
/// rule: the *nearest-rank* quantile, `ceil(q * n)` converted to a 0-based
/// index into the sorted samples. Nearest-rank always returns an observed
/// sample (no interpolation), which keeps small-sample p99 honest: with
/// n < 100 the p99 is simply the maximum.

namespace smb {

/// \brief The `q`-quantile (q clamped to [0, 1]) of `samples` by the
/// nearest-rank rule, reordering `samples` in place (nth_element).
/// Returns 0 for an empty sample set.
double NearestRankQuantileInPlace(std::vector<double>* samples, double q);

/// \brief Copying convenience over `NearestRankQuantileInPlace`.
double NearestRankQuantile(std::vector<double> samples, double q);

/// \brief p50/p95/p99 plus min/max/mean of one sample set, computed with a
/// single sort. The summary every latency report in the system prints.
struct PercentileSummary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// \brief Summarizes `samples` (consumed; sorted internally). All fields
/// zero when `samples` is empty.
PercentileSummary SummarizePercentiles(std::vector<double> samples);

/// \brief Sliding window over the most recent `window` samples with
/// nearest-rank quantile queries.
///
/// Thread-compatible — callers provide locking (`serve::ServerStats` wraps
/// one instance under its mutex). The ring index derives from a `uint64_t`
/// total-count so the recorder survives counter wrap-around that a 32-bit
/// counter would hit after ~4.3 billion requests: with a window that does
/// not divide 2^32, a `uint32_t` counter wrapping to 0 would silently jump
/// the ring position and reorder the retained window.
class SlidingWindowRecorder {
 public:
  /// Keeps the most recent `window` samples. A window of 0 disables the
  /// recorder entirely: `Record` is a no-op and every quantile is 0.
  explicit SlidingWindowRecorder(size_t window = 1024);

  void Record(double sample);

  /// \brief Nearest-rank `q`-quantile of the retained window; 0 when no
  /// samples were recorded yet (or the window is disabled).
  double Quantile(double q) const;

  /// Samples currently retained (min(total recorded, window)).
  size_t count() const { return samples_.size(); }

  /// Total samples ever recorded (monotone, 64-bit).
  uint64_t total() const { return total_; }

  /// \brief Test hook: pre-positions the monotone counter (e.g. just below
  /// `UINT32_MAX`) to exercise wrap-around behaviour without recording four
  /// billion samples. Only meaningful on a freshly constructed recorder.
  void SeedTotalForTest(uint64_t total);

 private:
  size_t window_;
  uint64_t total_ = 0;
  std::vector<double> samples_;
};

}  // namespace smb
