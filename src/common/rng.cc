#include "common/rng.h"

#include <cassert>
#include <cmath>

/// \file rng.cc
/// \brief Deterministic splitmix64-seeded PRNG helpers.

namespace smb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // xoshiro requires a nonzero state; splitmix64 of any seed gives one with
  // overwhelming probability, but guard the pathological case regardless.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = ~0ULL - (~0ULL % span);
  uint64_t draw;
  do {
    draw = Next();
  } while (draw > limit);
  return lo + static_cast<int64_t>(draw % span);
}

size_t Rng::UniformIndex(size_t n) {
  assert(n > 0);
  return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
}

double Rng::UniformDouble() {
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> out;
  if (k >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  // Selection sampling (Knuth 3.4.2 algorithm S): O(n), ascending output.
  size_t remaining = k;
  for (size_t i = 0; i < n && remaining > 0; ++i) {
    if (UniformDouble() * static_cast<double>(n - i) <
        static_cast<double>(remaining)) {
      out.push_back(i);
      --remaining;
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD2B74407B1CE6E93ULL); }

}  // namespace smb
