#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

/// \file small_vector.h
/// \brief A vector with inline storage for its first `InlineCapacity`
/// elements.
///
/// The per-name kernel arrays of `sim::PreparedName` (trigram ids, token
/// ids, synonym groups, PEQ bitmasks) are short — a dozen entries for a
/// typical identifier — yet a `std::vector` heap-allocates each one. With
/// millions of prepared names per workload (index build, dense pool fill,
/// snapshot load) those small allocations dominate the non-compute cost.
/// `SmallVector` keeps the common case in the object itself and only falls
/// back to the heap when a name overflows the inline capacity.
///
/// Deliberately minimal: exactly the operations the kernel and the
/// persistence layer use (push_back/resize/reserve/clear, iteration,
/// indexing, equality). Grows geometrically; never shrinks back to inline.

namespace smb {

template <typename T, size_t InlineCapacity>
class SmallVector {
  static_assert(InlineCapacity > 0, "inline capacity must be positive");
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "SmallVector relocates with move; T must not throw");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    std::uninitialized_copy_n(other.data(), other.size_, data());
    size_ = other.size_;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      std::uninitialized_copy_n(other.data(), other.size_, data());
      size_ = other.size_;
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Deallocate();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { Deallocate(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T* data() { return heap_ != nullptr ? heap_ : InlineData(); }
  const T* data() const {
    return heap_ != nullptr ? heap_ : InlineData();
  }

  T& operator[](size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  void clear() {
    std::destroy_n(data(), size_);
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n <= capacity_) return;
    Grow(n);
  }

  void resize(size_t n) {
    if (n < size_) {
      std::destroy_n(data() + n, size_ - n);
    } else {
      reserve(n);
      std::uninitialized_value_construct_n(data() + size_, n - size_);
    }
    size_ = n;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      // `value` may alias an element of this vector; Grow relocates and
      // destroys the old storage, so detach it first (std::vector makes
      // the same guarantee).
      T detached(value);
      Grow(size_ + 1);
      new (data() + size_) T(std::move(detached));
    } else {
      new (data() + size_) T(value);
    }
    ++size_;
  }

  void push_back(T&& value) {
    if (size_ == capacity_) {
      T detached(std::move(value));
      Grow(size_ + 1);
      new (data() + size_) T(std::move(detached));
    } else {
      new (data() + size_) T(std::move(value));
    }
    ++size_;
  }

  bool operator==(const SmallVector& other) const {
    if (size_ != other.size_) return false;
    const T* a = data();
    const T* b = other.data();
    for (size_t i = 0; i < size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  bool operator!=(const SmallVector& other) const {
    return !(*this == other);
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlineData() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  /// Moves `other`'s contents into this empty-and-inline vector: steals the
  /// heap block when there is one, relocates element-wise otherwise.
  void MoveFrom(SmallVector&& other) {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.size_ = 0;
      other.capacity_ = InlineCapacity;
    } else {
      std::uninitialized_move_n(other.InlineData(), other.size_,
                                InlineData());
      size_ = other.size_;
      other.clear();
    }
  }

  void Grow(size_t needed) {
    size_t new_capacity = capacity_ * 2;
    if (new_capacity < needed) new_capacity = needed;
    T* block = std::allocator<T>().allocate(new_capacity);
    std::uninitialized_move_n(data(), size_, block);
    std::destroy_n(data(), size_);
    if (heap_ != nullptr) {
      std::allocator<T>().deallocate(heap_, capacity_);
    }
    heap_ = block;
    capacity_ = new_capacity;
  }

  /// Destroys all elements and returns any heap block; leaves the vector in
  /// the empty inline state.
  void Deallocate() {
    std::destroy_n(data(), size_);
    if (heap_ != nullptr) {
      std::allocator<T>().deallocate(heap_, capacity_);
      heap_ = nullptr;
    }
    size_ = 0;
    capacity_ = InlineCapacity;
  }

  alignas(T) unsigned char inline_storage_[sizeof(T) * InlineCapacity];
  T* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = InlineCapacity;
};

}  // namespace smb
