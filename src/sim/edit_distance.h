#pragma once

#include <cstddef>
#include <string_view>

/// \file edit_distance.h
/// \brief Levenshtein and Damerau-Levenshtein string distances.
///
/// These are building blocks of the composite name similarity used by the
/// matching objective function Δ (see match/objective.h). All similarity
/// values are in [0, 1], 1 meaning identical.

namespace smb::sim {

/// \brief Levenshtein distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// \brief Damerau-Levenshtein distance (adds adjacent transposition).
///
/// This is the restricted (optimal string alignment) variant: a substring
/// is never edited twice.
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// \brief `1 - dist / max(|a|, |b|)`; 1 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// \brief Damerau analogue of LevenshteinSimilarity.
double DamerauLevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace smb::sim
