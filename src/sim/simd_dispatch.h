#pragma once

#include <cstddef>
#include <cstdint>

/// \file simd_dispatch.h
/// \brief Runtime dispatch between scalar and SIMD (AVX2/NEON) scoring
/// kernels.
///
/// The block scorer's structure-of-arrays pipeline (prepared_kernel.cc)
/// funnels its lane-parallel inner loops through a small table of function
/// pointers — `simd::Ops` — selected once per process by `ActiveSimdTier()`:
///
///  * **scalar** is always compiled and is the semantics reference: every
///    SIMD kernel must produce results bit-identical to it (the admissible
///    bound filter replicates the scalar floating-point expressions
///    operation-by-operation with no FMA contraction, and the intersection /
///    Myers kernels are exact integer algorithms).
///  * **avx2** (`simd_kernels_avx2.cc`, compiled with `-mavx2` for x86-64
///    targets) is used when the CPU reports AVX2 support.
///  * **neon** (`simd_kernels_neon.cc`) is used on aarch64, where NEON is
///    baseline. Its double-precision bound filter intentionally reuses the
///    scalar implementation — aarch64 compilers contract `a*b+c` into fused
///    multiply-adds, so hand-written non-fused vector math could disagree
///    with the surrounding scalar code by an ulp; the integer kernels
///    (intersection, batched Myers) carry the speedup instead.
///
/// Sanitizer builds (ASan/TSan/MSan) pin the scalar tier unconditionally so
/// the sanitized test suite exercises the portable code, and CI additionally
/// forces `SMB_SIMD=scalar` to cover the fallback on SIMD-capable hosts.
/// The `SMB_SIMD` environment variable (`scalar`, `avx2`, `neon`, `auto`)
/// overrides auto-detection; requesting a tier the binary or CPU cannot run
/// falls back to scalar. Tests switch tiers mid-process through
/// `internal::OverrideSimdTierForTest`.

namespace smb::sim {

/// Kernel implementation tiers, in detection-priority order.
enum class SimdTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Human-readable tier name ("scalar", "avx2", "neon") — logged by `serve`
/// startup / `server_stats` / the `workload` banner so perf numbers are
/// attributable to the dispatch path actually taken.
const char* SimdTierName(SimdTier tier);

/// True when this binary compiled the tier's kernels *and* the host CPU can
/// execute them (and no sanitizer pins scalar).
bool SimdTierAvailable(SimdTier tier);

/// The tier the kernels dispatch to: a test override if set, else the
/// process-wide detection result (environment override, then CPU probing),
/// always clamped to available tiers.
SimdTier ActiveSimdTier();

namespace simd {

/// Lane-parallel kernels behind the dispatch. All implementations are
/// bit-identical to `ScalarOps()` on any input the block scorer produces.
struct Ops {
  /// Admissible pre-filter bound for `n` candidates of one query:
  ///   lev_ub[i]  = 1 - |la - len[i]| / max(la, len[i])
  ///   dice_ub[i] = 2*min(ga, grams[i]) / (ga + grams[i])
  ///   u[i]       = (wl*lev_ub[i] + wj + wt*dice_ub[i] + wk) / wsum
  /// with the exact operation order of the per-pair scalar path. `len` and
  /// `grams` hold integer lengths/gram counts as doubles. Callers guarantee
  /// max(la, len[i]) > 0 and ga + grams[i] > 0 (both-empty pairs are
  /// resolved by the equality short-circuit before the filter runs).
  void (*bound_filter)(const double* len, const double* grams, size_t n,
                       double la, double ga, double wl, double wj, double wt,
                       double wk, double wsum, double* u);

  /// |A ∩ B| of two strictly increasing uint32 arrays (the augmented gram
  /// keys of `PreparedName::gram_keys`).
  size_t (*intersect)(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb);

  /// Batched form of `intersect` with the query side held resident:
  /// `counts[i] = |q ∩ tkeys[i]|` for every `i` with `tkeys[i] != nullptr`
  /// (entries with a null key pointer are skipped and their `counts` slot is
  /// left untouched — the caller pre-fills those from the scalar multiset
  /// merge). Key arrays are strictly increasing and every key is below
  /// 0xFFFFFFFF (CompileAugmentedGramKeys guarantees id < 2^24-1), which
  /// lets implementations use ~0u as a never-matching padding sentinel.
  void (*intersect_many)(const uint32_t* q, size_t nq,
                         const uint32_t* const* tkeys, const uint32_t* tlens,
                         size_t n, uint32_t* counts);

  /// Exact-Dice refinement after the batched intersection:
  ///   dice[i] = 2*counts[i] / (ca + grams[i])
  ///   lev_ub  = 1 - |la - len[i]| / max(la, len[i])
  ///   u[i]    = (wl*lev_ub + wj + wt*dice[i] + wk) / wsum
  /// with the exact operation order of the per-pair scalar path (`counts`
  /// are the intersection sizes; `ca`/`grams` the query/candidate gram
  /// counts as doubles). Callers guarantee ca > 0 and max(la, len[i]) > 0.
  void (*dice_refine)(const double* len, const double* grams,
                      const uint32_t* counts, size_t n, double la, double ca,
                      double wl, double wj, double wt, double wk, double wsum,
                      double* dice, double* u);

  /// Myers bit-parallel edit distances of up to `lanes` texts against one
  /// resident pattern. `peq` is the 256-entry pattern mask table, `m` the
  /// pattern length (1..64). `texts[lane]` points at text `lane`'s bytes
  /// (read in place — no packing or copying), `lens[lane]` its length, and
  /// `maxlen` is the largest active length. A zero length disables a lane
  /// (its output is meaningless). Lanes must be packed densely from 0, so
  /// `texts[0]`/`lens[0]` describe a real text whenever the call is made.
  /// Implementations never read past a text's end: a lane's byte index is
  /// clamped to `lens[lane] - 1` once the lane's recurrence is frozen, and
  /// disabled lanes alias `texts[0]`. Writes the exact per-lane distance to
  /// `out[lane]`.
  void (*myers_batch)(const uint64_t* peq, size_t m,
                      const uint8_t* const* texts, const uint64_t* lens,
                      size_t maxlen, uint64_t* out);

  /// Batch width of `myers_batch` (1 scalar, 2 NEON, 4 AVX2).
  size_t lanes;
};

/// The table for `tier` (falls back to scalar if the tier is unavailable).
const Ops& OpsForTier(SimdTier tier);

/// The always-compiled scalar reference implementations.
const Ops& ScalarOps();

/// Per-tier tables, or nullptr when not compiled into this binary.
const Ops* Avx2OpsOrNull();
const Ops* NeonOpsOrNull();

/// Scalar building blocks shared with the SIMD translation units (loop
/// tails reuse them so tail lanes stay bit-identical to the scalar tier).
void BoundFilterScalar(const double* len, const double* grams, size_t n,
                       double la, double ga, double wl, double wj, double wt,
                       double wk, double wsum, double* u);
size_t IntersectScalar(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb);
void IntersectManyScalar(const uint32_t* q, size_t nq,
                         const uint32_t* const* tkeys, const uint32_t* tlens,
                         size_t n, uint32_t* counts);
void DiceRefineScalar(const double* len, const double* grams,
                      const uint32_t* counts, size_t n, double la, double ca,
                      double wl, double wj, double wt, double wk, double wsum,
                      double* dice, double* u);

}  // namespace simd

namespace internal {

/// Test hooks: force `ActiveSimdTier()` to report `tier` (clamped to tiers
/// this binary/CPU can actually run — under sanitizers that is always
/// scalar). Not thread-safe against concurrent scoring; tests only.
void OverrideSimdTierForTest(SimdTier tier);
void ClearSimdTierOverrideForTest();

}  // namespace internal

}  // namespace smb::sim
