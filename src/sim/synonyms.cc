#include "sim/synonyms.h"

#include "common/strings.h"

/// \file synonyms.cc
/// \brief Synonym table lookup and abbreviation expansion.

namespace smb::sim {

void SynonymTable::AddGroup(const std::vector<std::string>& words) {
  // Find groups already containing any of the words.
  int target = -1;
  std::vector<int> to_merge;
  for (const auto& w : words) {
    auto it = group_of_.find(ToLower(w));
    if (it != group_of_.end()) {
      if (target == -1) {
        target = it->second;
      } else if (it->second != target) {
        to_merge.push_back(it->second);
      }
    }
  }
  if (target == -1) {
    target = static_cast<int>(group_count_++);
  }
  if (!to_merge.empty()) {
    for (auto& [word, group] : group_of_) {
      for (int g : to_merge) {
        if (group == g) group = target;
      }
    }
  }
  for (const auto& w : words) {
    group_of_[ToLower(w)] = target;
  }
}

bool SynonymTable::AreSynonyms(std::string_view a, std::string_view b) const {
  if (a == b) return true;
  int ga = GroupOf(a);
  if (ga < 0) return false;
  return ga == GroupOf(b);
}

int SynonymTable::GroupOf(std::string_view word) const {
  auto it = group_of_.find(ToLower(word));
  return it == group_of_.end() ? -1 : it->second;
}

uint64_t SynonymTable::ContentFingerprint() const {
  // Summing one FNV-1a hash per (word, group) pair is commutative, so the
  // unordered_map's iteration order cannot leak into the fingerprint.
  uint64_t combined = 0x9e3779b97f4a7c15ull + group_of_.size();
  for (const auto& [word, group] : group_of_) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : word) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= static_cast<uint64_t>(group) + 0x9e3779b97f4a7c15ull;
    h *= 0x100000001b3ull;
    combined += h;
  }
  return combined;
}

SynonymTable SynonymTable::Builtin() {
  SynonymTable table;
  // E-commerce.
  table.AddGroup({"customer", "client", "buyer", "purchaser"});
  table.AddGroup({"order", "purchase", "po"});
  table.AddGroup({"item", "product", "article", "good"});
  table.AddGroup({"quantity", "qty", "amount", "count"});
  table.AddGroup({"price", "cost", "charge"});
  table.AddGroup({"invoice", "bill", "receipt"});
  table.AddGroup({"ship", "deliver", "dispatch"});
  table.AddGroup({"address", "addr", "location"});
  table.AddGroup({"zip", "zipcode", "postcode", "postalcode"});
  table.AddGroup({"phone", "tel", "telephone", "mobile"});
  table.AddGroup({"email", "mail", "emailaddress"});
  table.AddGroup({"id", "identifier", "key", "code", "nr", "number", "num"});
  table.AddGroup({"name", "label", "title"});
  table.AddGroup({"description", "desc", "summary", "abstract"});
  table.AddGroup({"date", "day", "time", "timestamp"});
  table.AddGroup({"vendor", "supplier", "seller", "merchant"});
  table.AddGroup({"payment", "pay", "remittance"});
  table.AddGroup({"discount", "rebate", "reduction"});
  table.AddGroup({"tax", "vat", "duty"});
  table.AddGroup({"total", "sum", "subtotal"});
  // Bibliographic.
  table.AddGroup({"author", "writer", "creator"});
  table.AddGroup({"book", "publication", "monograph", "volume"});
  table.AddGroup({"journal", "periodical", "magazine"});
  table.AddGroup({"publisher", "press", "imprint"});
  table.AddGroup({"year", "yr"});
  table.AddGroup({"isbn", "issn"});
  table.AddGroup({"page", "pg", "pages"});
  table.AddGroup({"editor", "ed"});
  table.AddGroup({"conference", "proceedings", "symposium", "workshop"});
  table.AddGroup({"keyword", "tag", "term", "subject"});
  // HR / person.
  table.AddGroup({"employee", "staff", "worker", "personnel"});
  table.AddGroup({"salary", "wage", "pay", "compensation"});
  table.AddGroup({"department", "dept", "division", "unit"});
  table.AddGroup({"manager", "supervisor", "boss", "lead"});
  table.AddGroup({"firstname", "givenname", "forename"});
  table.AddGroup({"lastname", "surname", "familyname"});
  table.AddGroup({"birthday", "birthdate", "dob"});
  table.AddGroup({"company", "firm", "organization", "organisation", "org"});
  table.AddGroup({"city", "town", "municipality"});
  table.AddGroup({"country", "nation", "state"});
  table.AddGroup({"street", "road", "avenue"});
  table.AddGroup({"person", "individual", "contact"});
  return table;
}

}  // namespace smb::sim
