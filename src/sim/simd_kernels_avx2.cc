#include "sim/simd_dispatch.h"

/// \file simd_kernels_avx2.cc
/// \brief AVX2 implementations of the dispatch kernels (see
/// simd_dispatch.h). Compiled with `-mavx2` on x86-64 targets; on other
/// targets (or when the compiler lacks AVX2 support) the TU degrades to a
/// nullptr registration and the dispatcher never offers the tier.
///
/// Bit-identity notes: the bound filter replicates the scalar expression
/// tree with separate IEEE-754 multiplies and adds — `-mavx2` does not
/// enable FMA, so the compiler cannot contract them, and per-lane AVX2
/// double arithmetic is identical to scalar SSE2 arithmetic. The
/// intersection and batched-Myers kernels are exact integer algorithms.

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace smb::sim::simd {
namespace {

void BoundFilterAvx2(const double* len, const double* grams, size_t n,
                     double la, double ga, double wl, double wj, double wt,
                     double wk, double wsum, double* u) {
  const __m256d vla = _mm256_set1_pd(la);
  const __m256d vga = _mm256_set1_pd(ga);
  const __m256d vwl = _mm256_set1_pd(wl);
  const __m256d vwj = _mm256_set1_pd(wj);
  const __m256d vwt = _mm256_set1_pd(wt);
  const __m256d vwk = _mm256_set1_pd(wk);
  const __m256d vwsum = _mm256_set1_pd(wsum);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vlb = _mm256_loadu_pd(len + i);
    const __m256d vgb = _mm256_loadu_pd(grams + i);
    // 1 - |la - lb| / max(la, lb): lengths are exact small integers, so
    // max/min/sub are exact and the division matches scalar bit-for-bit.
    const __m256d lmax = _mm256_max_pd(vla, vlb);
    const __m256d gap = _mm256_sub_pd(lmax, _mm256_min_pd(vla, vlb));
    const __m256d lev_ub = _mm256_sub_pd(vone, _mm256_div_pd(gap, lmax));
    // 2*min(ga, gb) / (ga + gb).
    const __m256d gmin = _mm256_min_pd(vga, vgb);
    const __m256d dice_ub = _mm256_div_pd(_mm256_mul_pd(vtwo, gmin),
                                          _mm256_add_pd(vga, vgb));
    // ((wl*lev_ub + wj) + wt*dice_ub + wk) / wsum — scalar operation order.
    __m256d t = _mm256_mul_pd(vwl, lev_ub);
    t = _mm256_add_pd(t, vwj);
    t = _mm256_add_pd(t, _mm256_mul_pd(vwt, dice_ub));
    t = _mm256_add_pd(t, vwk);
    _mm256_storeu_pd(u + i, _mm256_div_pd(t, vwsum));
  }
  if (i < n) {
    BoundFilterScalar(len + i, grams + i, n - i, la, ga, wl, wj, wt, wk,
                      wsum, u + i);
  }
}

void DiceRefineAvx2(const double* len, const double* grams,
                    const uint32_t* counts, size_t n, double la, double ca,
                    double wl, double wj, double wt, double wk, double wsum,
                    double* dice, double* u) {
  const __m256d vla = _mm256_set1_pd(la);
  const __m256d vca = _mm256_set1_pd(ca);
  const __m256d vwl = _mm256_set1_pd(wl);
  const __m256d vwj = _mm256_set1_pd(wj);
  const __m256d vwt = _mm256_set1_pd(wt);
  const __m256d vwk = _mm256_set1_pd(wk);
  const __m256d vwsum = _mm256_set1_pd(wsum);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // 2*counts / (ca + grams): the int32→double conversion and the double
    // add of two exact small integers match the scalar path bit-for-bit.
    const __m256d vcnt = _mm256_cvtepi32_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + i)));
    const __m256d vgb = _mm256_loadu_pd(grams + i);
    const __m256d d = _mm256_div_pd(_mm256_mul_pd(vtwo, vcnt),
                                    _mm256_add_pd(vca, vgb));
    _mm256_storeu_pd(dice + i, d);
    const __m256d vlb = _mm256_loadu_pd(len + i);
    const __m256d lmax = _mm256_max_pd(vla, vlb);
    const __m256d gap = _mm256_sub_pd(lmax, _mm256_min_pd(vla, vlb));
    const __m256d lev_ub = _mm256_sub_pd(vone, _mm256_div_pd(gap, lmax));
    __m256d t = _mm256_mul_pd(vwl, lev_ub);
    t = _mm256_add_pd(t, vwj);
    t = _mm256_add_pd(t, _mm256_mul_pd(vwt, d));
    t = _mm256_add_pd(t, vwk);
    _mm256_storeu_pd(u + i, _mm256_div_pd(t, vwsum));
  }
  if (i < n) {
    DiceRefineScalar(len + i, grams + i, counts + i, n - i, la, ca, wl, wj,
                     wt, wk, wsum, dice + i, u + i);
  }
}

/// Block-pair intersection of strictly increasing uint32 arrays: compare an
/// 8-lane block of `a` against every rotation of an 8-lane block of `b`
/// (each element matches at most one partner, so OR-ing the compare masks
/// and popcounting is an exact count), then advance the block(s) with the
/// smaller maximum.
size_t IntersectAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb) {
  // Typical identifier names produce ~10 gram keys, where the sorted merge
  // is dominated by branch mispredicts. Branchless all-pairs compare: hold
  // the (≤16-lane) shorter array in two registers and test every element
  // of the other against both; each element matches at most one lane, so
  // accumulating the compare masks counts the intersection exactly.
  if (na <= 16 && nb <= 16) {
    if (na > nb) {
      std::swap(a, b);
      std::swap(na, nb);
    }
    const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i vn0 = _mm256_set1_epi32(static_cast<int>(na));
    const __m256i vn1 = _mm256_set1_epi32(static_cast<int>(na) - 8);
    const __m256i mask0 = _mm256_cmpgt_epi32(vn0, idx);
    const __m256i mask1 = _mm256_cmpgt_epi32(vn1, idx);
    const __m256i a0 = _mm256_maskload_epi32(
        reinterpret_cast<const int*>(a), mask0);
    const __m256i a1 = _mm256_maskload_epi32(
        reinterpret_cast<const int*>(a + 8), mask1);
    __m256i acc = _mm256_setzero_si256();
    for (size_t j = 0; j < nb; ++j) {
      const __m256i vb = _mm256_set1_epi32(static_cast<int>(b[j]));
      // Masked lanes are zero-filled by maskload; AND with the validity
      // mask so a genuine key 0 in `b` cannot count a padding lane.
      acc = _mm256_sub_epi32(
          acc, _mm256_and_si256(_mm256_cmpeq_epi32(a0, vb), mask0));
      acc = _mm256_sub_epi32(
          acc, _mm256_and_si256(_mm256_cmpeq_epi32(a1, vb), mask1));
    }
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    __m128i sum = _mm_add_epi32(lo, hi);
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0x4E));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0xB1));
    return static_cast<size_t>(static_cast<uint32_t>(_mm_cvtsi128_si32(sum)));
  }
  size_t i = 0, j = 0, count = 0;
  if (na >= 8 && nb >= 8) {
    const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    while (i + 8 <= na && j + 8 <= nb) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      __m256i eq = _mm256_cmpeq_epi32(va, vb);
      for (int r = 0; r < 7; ++r) {
        vb = _mm256_permutevar8x32_epi32(vb, rotate1);
        eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
      }
      count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
      const uint32_t amax = a[i + 7];
      const uint32_t bmax = b[j + 7];
      if (amax <= bmax) i += 8;
      if (bmax <= amax) j += 8;
    }
  }
  return count + IntersectScalar(a + i, na - i, b + j, nb - j);
}

/// Query-resident batch intersection: the (≤16-key) query side is loaded
/// into two registers once per block, with invalid lanes filled by the
/// 0xFFFFFFFF sentinel (no real key reaches it — gram ids stop at 2^24-2),
/// so the per-target loop is a pure broadcast/compare/accumulate chain with
/// no per-call masking. Two accumulators keep the dependency chains one
/// cycle deep.
void IntersectManyAvx2(const uint32_t* q, size_t nq,
                       const uint32_t* const* tkeys, const uint32_t* tlens,
                       size_t n, uint32_t* counts) {
  if (nq > 16) {
    for (size_t i = 0; i < n; ++i) {
      if (tkeys[i] == nullptr) continue;
      counts[i] = static_cast<uint32_t>(IntersectAvx2(q, nq, tkeys[i],
                                                      tlens[i]));
    }
    return;
  }
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i all_ones32 = _mm256_set1_epi32(-1);
  const __m256i mask0 = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(static_cast<int>(nq)), idx);
  const __m256i q0 = _mm256_or_si256(
      _mm256_maskload_epi32(reinterpret_cast<const int*>(q), mask0),
      _mm256_andnot_si256(mask0, all_ones32));
  if (nq <= 8) {
    // One-register query: a single compare per target key.
    for (size_t i = 0; i < n; ++i) {
      const uint32_t* b = tkeys[i];
      if (b == nullptr) continue;
      const size_t nb = tlens[i];
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      size_t j = 0;
      for (; j + 2 <= nb; j += 2) {
        acc0 = _mm256_sub_epi32(
            acc0, _mm256_cmpeq_epi32(
                      q0, _mm256_set1_epi32(static_cast<int>(b[j]))));
        acc1 = _mm256_sub_epi32(
            acc1, _mm256_cmpeq_epi32(
                      q0, _mm256_set1_epi32(static_cast<int>(b[j + 1]))));
      }
      if (j < nb) {
        acc0 = _mm256_sub_epi32(
            acc0, _mm256_cmpeq_epi32(
                      q0, _mm256_set1_epi32(static_cast<int>(b[j]))));
      }
      const __m256i acc = _mm256_add_epi32(acc0, acc1);
      const __m128i lo = _mm256_castsi256_si128(acc);
      const __m128i hi = _mm256_extracti128_si256(acc, 1);
      __m128i sum = _mm_add_epi32(lo, hi);
      sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0x4E));
      sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0xB1));
      counts[i] =
          static_cast<uint32_t>(_mm_cvtsi128_si32(sum));
    }
    return;
  }
  const __m256i mask1 = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(static_cast<int>(nq) - 8), idx);
  const __m256i q1 = _mm256_or_si256(
      _mm256_maskload_epi32(reinterpret_cast<const int*>(q + 8), mask1),
      _mm256_andnot_si256(mask1, all_ones32));
  for (size_t i = 0; i < n; ++i) {
    const uint32_t* b = tkeys[i];
    if (b == nullptr) continue;
    const size_t nb = tlens[i];
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    size_t j = 0;
    for (; j + 2 <= nb; j += 2) {
      const __m256i vb0 = _mm256_set1_epi32(static_cast<int>(b[j]));
      const __m256i vb1 = _mm256_set1_epi32(static_cast<int>(b[j + 1]));
      acc0 = _mm256_sub_epi32(acc0, _mm256_cmpeq_epi32(q0, vb0));
      acc1 = _mm256_sub_epi32(acc1, _mm256_cmpeq_epi32(q1, vb0));
      acc2 = _mm256_sub_epi32(acc2, _mm256_cmpeq_epi32(q0, vb1));
      acc3 = _mm256_sub_epi32(acc3, _mm256_cmpeq_epi32(q1, vb1));
    }
    if (j < nb) {
      const __m256i vb = _mm256_set1_epi32(static_cast<int>(b[j]));
      acc0 = _mm256_sub_epi32(acc0, _mm256_cmpeq_epi32(q0, vb));
      acc1 = _mm256_sub_epi32(acc1, _mm256_cmpeq_epi32(q1, vb));
    }
    const __m256i acc = _mm256_add_epi32(_mm256_add_epi32(acc0, acc1),
                                         _mm256_add_epi32(acc2, acc3));
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    __m128i sum = _mm_add_epi32(lo, hi);
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0x4E));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 0xB1));
    counts[i] = static_cast<uint32_t>(_mm_cvtsi128_si32(sum));
  }
}

/// One Myers-recurrence step for the four 64-bit lanes of one ymm register.
/// Lanes whose text ended are frozen by blending the old state back in, so
/// every lane finishes with exactly the scalar algorithm's state sequence.
struct MyersChainAvx2 {
  __m256i pv, mv, score, vlens;

  MyersChainAvx2(size_t m, const uint64_t* lens)
      : pv(_mm256_set1_epi64x(-1)),
        mv(_mm256_setzero_si256()),
        score(_mm256_set1_epi64x(static_cast<long long>(m))),
        vlens(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(lens))) {}

  inline void Step(__m256i eq, __m256i last, __m256i all_ones, __m256i one,
                   __m256i vi) {
    const __m256i xv = _mm256_or_si256(eq, mv);
    const __m256i eqpv = _mm256_and_si256(eq, pv);
    const __m256i xh = _mm256_or_si256(
        _mm256_xor_si256(_mm256_add_epi64(eqpv, pv), pv), eq);
    __m256i ph = _mm256_or_si256(
        mv, _mm256_andnot_si256(_mm256_or_si256(xh, pv), all_ones));
    __m256i mh = _mm256_and_si256(pv, xh);
    // score += (ph & last ? 1 : 0) - (mh & last ? 1 : 0); the horizontal
    // bits are disjoint, so both corrections can apply unconditionally.
    const __m256i inc = _mm256_cmpeq_epi64(_mm256_and_si256(ph, last), last);
    const __m256i dec = _mm256_cmpeq_epi64(_mm256_and_si256(mh, last), last);
    __m256i score_new = _mm256_sub_epi64(score, inc);
    score_new = _mm256_add_epi64(score_new, dec);
    ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), one);
    mh = _mm256_slli_epi64(mh, 1);
    const __m256i pv_new = _mm256_or_si256(
        mh, _mm256_andnot_si256(_mm256_or_si256(xv, ph), all_ones));
    const __m256i mv_new = _mm256_and_si256(ph, xv);
    const __m256i active = _mm256_cmpgt_epi64(vlens, vi);
    pv = _mm256_blendv_epi8(pv, pv_new, active);
    mv = _mm256_blendv_epi8(mv, mv_new, active);
    score = _mm256_blendv_epi8(score, score_new, active);
  }
};

/// Eight Myers recurrences: two four-lane register chains advanced in
/// lockstep. The recurrence is a long serial dependency chain, so two
/// independent chains overlap in the pipeline and nearly double throughput.
void MyersBatchAvx2(const uint64_t* peq, size_t m,
                    const uint8_t* const* texts, const uint64_t* lens,
                    size_t maxlen, uint64_t* out) {
  // Texts are read in place. Disabled lanes (len 0) alias lane 0 and frozen
  // lanes clamp their byte index to the last valid byte, so no lane ever
  // reads past its own text; the fetched byte feeds a 256-entry table, so
  // its value is irrelevant once the lane's state is frozen.
  const uint8_t* t[8];
  size_t c[8];
  for (size_t l = 0; l < 8; ++l) {
    t[l] = lens[l] ? texts[l] : texts[0];
    c[l] = lens[l] ? lens[l] - 1 : 0;
  }
  const __m256i all_ones = _mm256_set1_epi64x(-1);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i last = _mm256_set1_epi64x(
      static_cast<long long>(uint64_t{1} << (m - 1)));
  MyersChainAvx2 lo(m, lens);
  MyersChainAvx2 hi(m, lens + 4);
  for (size_t i = 0; i < maxlen; ++i) {
    // Scalar PEQ loads beat vpgatherqq here: the table rows are hot in L1
    // and gather's fixed startup cost dominates on most cores.
    const __m256i eq0 = _mm256_set_epi64x(
        static_cast<long long>(peq[t[3][std::min(i, c[3])]]),
        static_cast<long long>(peq[t[2][std::min(i, c[2])]]),
        static_cast<long long>(peq[t[1][std::min(i, c[1])]]),
        static_cast<long long>(peq[t[0][std::min(i, c[0])]]));
    const __m256i eq1 = _mm256_set_epi64x(
        static_cast<long long>(peq[t[7][std::min(i, c[7])]]),
        static_cast<long long>(peq[t[6][std::min(i, c[6])]]),
        static_cast<long long>(peq[t[5][std::min(i, c[5])]]),
        static_cast<long long>(peq[t[4][std::min(i, c[4])]]));
    const __m256i vi = _mm256_set1_epi64x(static_cast<long long>(i));
    lo.Step(eq0, last, all_ones, one, vi);
    hi.Step(eq1, last, all_ones, one, vi);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), lo.score);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), hi.score);
}

constexpr Ops kAvx2Ops = {
    &BoundFilterAvx2,
    &IntersectAvx2,
    &IntersectManyAvx2,
    &DiceRefineAvx2,
    &MyersBatchAvx2,
    /*lanes=*/8,
};

}  // namespace

const Ops* Avx2OpsOrNull() { return &kAvx2Ops; }

}  // namespace smb::sim::simd

#else  // !(__AVX2__ && x86-64)

namespace smb::sim::simd {
const Ops* Avx2OpsOrNull() { return nullptr; }
}  // namespace smb::sim::simd

#endif
