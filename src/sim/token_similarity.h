#pragma once

#include <string_view>
#include <vector>

#include "sim/synonyms.h"

/// \file token_similarity.h
/// \brief Token-set similarity over identifier word tokens.
///
/// Identifiers are tokenized with `smb::SplitIdentifier` (camelCase,
/// snake_case, digit boundaries). Similarity is a soft Jaccard: tokens are
/// paired greedily by best token-to-token score, where a pair scores 1.0 on
/// equality, `synonym_score` when the synonym table links them, and a
/// Jaro-Winkler fallback otherwise (so "qty2" ~ "qty" still matches).

namespace smb::sim {

/// \brief Options for token-set similarity.
struct TokenSimilarityOptions {
  /// Score for a synonym-table hit.
  double synonym_score = 0.95;
  /// Token pairs scoring below this contribute nothing (noise gate).
  double min_token_score = 0.5;
  /// Optional synonym table; nullptr disables synonym scoring.
  const SynonymTable* synonyms = nullptr;
};

/// \brief Best-pairing score between two token lists, normalized like
/// Jaccard: `sum(best pair scores) / (|A| + |B| - matched_pairs)`.
double TokenListSimilarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           const TokenSimilarityOptions& options = {});

/// \brief Tokenizes both names and applies TokenListSimilarity.
double TokenNameSimilarity(std::string_view a, std::string_view b,
                           const TokenSimilarityOptions& options = {});

}  // namespace smb::sim
