#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/synonyms.h"
#include "sim/token_similarity.h"

/// \file name_similarity.h
/// \brief Composite element-name similarity.
///
/// Combines the individual measures (edit distance, Jaro-Winkler, trigram
/// Dice, token/synonym) into one score, the way matchers like COMA [8] and
/// Cupid [11] aggregate multiple matchers. Weights are configurable; the
/// defaults were picked so that planted perturbations (synonym renames,
/// abbreviations, typos) in the synthetic collections stay clearly above
/// random name pairs.

namespace smb::sim {

/// \brief Weights of the composite measure (normalized internally).
struct NameSimilarityOptions {
  double weight_levenshtein = 0.25;
  double weight_jaro_winkler = 0.25;
  double weight_trigram = 0.2;
  double weight_token = 0.3;
  /// Case-fold before comparing.
  bool case_insensitive = true;
  /// Synonym table consulted by the token measure (nullptr = none) and for
  /// the whole-name synonym shortcut.
  const SynonymTable* synonyms = nullptr;
  /// Score assigned when the full names are listed as synonyms.
  double synonym_score = 0.95;
};

/// \brief A name case-folded and tokenized once, for batch scoring.
///
/// Scoring one name against many (the dense similarity-matrix precompute)
/// re-folds and re-tokenizes each side per pair when the string_view API is
/// used; preparing each side once instead makes the per-pair work pure
/// comparison. Produces bit-identical scores to the string_view overloads.
struct PreparedName {
  /// The name, lower-cased when `case_insensitive` is set.
  std::string folded;
  /// `SplitIdentifier(folded)` — input of the token measure.
  std::vector<std::string> tokens;
};

/// \brief Folds and tokenizes `name` according to `options`.
PreparedName PrepareName(std::string_view name,
                         const NameSimilarityOptions& options = {});

/// \brief Composite similarity in [0, 1]; 1 iff the names are equal
/// (after case folding when enabled).
double NameSimilarity(std::string_view a, std::string_view b,
                      const NameSimilarityOptions& options = {});

/// \brief Same measure over pre-folded, pre-tokenized names.
double NameSimilarity(const PreparedName& a, const PreparedName& b,
                      const NameSimilarityOptions& options = {});

/// \brief Distance counterpart: `1 - NameSimilarity`.
double NameDistance(std::string_view a, std::string_view b,
                    const NameSimilarityOptions& options = {});

/// \brief Distance over prepared names: `1 - NameSimilarity`.
double NameDistance(const PreparedName& a, const PreparedName& b,
                    const NameSimilarityOptions& options = {});

}  // namespace smb::sim
