#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/small_vector.h"
#include "sim/synonyms.h"
#include "sim/token_similarity.h"

/// \file name_similarity.h
/// \brief Composite element-name similarity.
///
/// Combines the individual measures (edit distance, Jaro-Winkler, trigram
/// Dice, token/synonym) into one score, the way matchers like COMA [8] and
/// Cupid [11] aggregate multiple matchers. Weights are configurable; the
/// defaults were picked so that planted perturbations (synonym renames,
/// abbreviations, typos) in the synthetic collections stay clearly above
/// random name pairs.

namespace smb::sim {

/// \brief Weights of the composite measure (normalized internally).
struct NameSimilarityOptions {
  double weight_levenshtein = 0.25;
  double weight_jaro_winkler = 0.25;
  double weight_trigram = 0.2;
  double weight_token = 0.3;
  /// Case-fold before comparing.
  bool case_insensitive = true;
  /// Synonym table consulted by the token measure (nullptr = none) and for
  /// the whole-name synonym shortcut.
  const SynonymTable* synonyms = nullptr;
  /// Score assigned when the full names are listed as synonyms.
  double synonym_score = 0.95;
};

class TokenTable;  // prepared_kernel.h — token-id interner

/// \brief A name case-folded, tokenized and compiled once, for batch
/// scoring.
///
/// Scoring one name against many (the dense similarity-matrix precompute)
/// re-folds and re-tokenizes each side per pair when the string_view API is
/// used; preparing each side once instead makes the per-pair work pure
/// comparison. Produces bit-identical scores to the string_view overloads.
///
/// Beyond folding and tokenizing, `PrepareName` compiles the kernel form
/// consumed by the allocation-free scorer (prepared_kernel.h): interned
/// sorted trigram ids, per-token interned ids and synonym groups, and the
/// per-character `PEQ` bitmasks of Myers' bit-parallel Levenshtein.
struct PreparedName {
  /// Inline capacities of the kernel arrays: one cache-friendly object
  /// with zero heap allocations for typical identifier names (a name of
  /// up to `kInlineGrams - 2` characters produces that many padded
  /// trigrams and at most as many distinct PEQ characters). Longer names
  /// spill to the heap transparently. Millions of these are built per
  /// workload — index build, dense pool fill, snapshot load — so the
  /// allocation count is the dominant non-compute cost.
  static constexpr size_t kInlineGrams = 20;
  static constexpr size_t kInlineTokens = 6;

  /// The name, lower-cased when `case_insensitive` is set.
  std::string folded;
  /// `SplitIdentifier(folded)` — input of the token measure.
  std::vector<std::string> tokens;

  // --- Kernel precompute (see prepared_kernel.h) ---

  /// Sorted packed padded-trigram ids of `folded` (`GramTable::Pack`);
  /// the same multiset `ExtractNgrams(folded, 3)` yields.
  SmallVector<uint32_t, kInlineGrams> gram_ids;
  /// Strictly increasing "augmented" gram keys — `(gram_id << 8) | k` for
  /// the k-th occurrence of a gram in the sorted multiset above (packed
  /// trigram ids use 24 bits, so the key fits a uint32). Turning the
  /// multiset into a set lets the SIMD tiers intersect with plain
  /// set-intersection kernels. Derived from `gram_ids` (never serialized);
  /// left empty when any gram repeats ≥ 256 times, in which case the
  /// kernel falls back to the scalar multiset merge.
  SmallVector<uint32_t, kInlineGrams> gram_keys;
  /// Per-token interned id (parallel to `tokens`); `kUnknownTokenId` for
  /// tokens a lookup-only table did not know. Empty when prepared without
  /// a `TokenTable`.
  SmallVector<uint32_t, kInlineTokens> token_ids;
  /// Per-token synonym group (parallel to `tokens`, -1 = none). Empty when
  /// `options.synonyms == nullptr`.
  SmallVector<int32_t, kInlineTokens> token_groups;
  /// Distinct characters of `folded` with their position bitmasks — the
  /// `PEQ` rows of Myers' algorithm. Filled only when `folded` has 1..64
  /// characters (the single-word fast path).
  SmallVector<char, kInlineGrams> peq_chars;
  SmallVector<uint64_t, kInlineGrams> peq_masks;
  /// Synonym group of the whole folded name (-1 = none).
  int32_t name_group = -1;
  /// Provenance: tables the ids/groups above are valid under. The kernel
  /// falls back to string lookups when a pair's provenance disagrees with
  /// the scoring options, so mixing prepared forms stays correct.
  const SynonymTable* synonyms = nullptr;
  const TokenTable* token_table = nullptr;
  /// True once the kernel fields were compiled (`PrepareName` always sets
  /// it; hand-built instances score through the reference path).
  bool kernel_ready = false;
};

/// \brief Folds, tokenizes and kernel-compiles `name` per `options`.
PreparedName PrepareName(std::string_view name,
                         const NameSimilarityOptions& options = {});

/// \brief As above, additionally interning tokens into `interner` (new
/// tokens are inserted). The index build uses this so one table covers the
/// whole repository.
PreparedName PrepareName(std::string_view name,
                         const NameSimilarityOptions& options,
                         TokenTable* interner);

/// \brief Lookup-only variant: tokens absent from `interner` map to
/// `kUnknownTokenId` instead of being inserted. Queries prepare against an
/// immutable repository table this way — const, hence thread-safe.
PreparedName PrepareName(std::string_view name,
                         const NameSimilarityOptions& options,
                         const TokenTable& interner);

/// \brief Composite similarity in [0, 1]; 1 iff the names are equal
/// (after case folding when enabled).
double NameSimilarity(std::string_view a, std::string_view b,
                      const NameSimilarityOptions& options = {});

/// \brief Same measure over pre-folded, pre-tokenized names.
double NameSimilarity(const PreparedName& a, const PreparedName& b,
                      const NameSimilarityOptions& options = {});

/// \brief Distance counterpart: `1 - NameSimilarity`.
double NameDistance(std::string_view a, std::string_view b,
                    const NameSimilarityOptions& options = {});

/// \brief Distance over prepared names: `1 - NameSimilarity`.
double NameDistance(const PreparedName& a, const PreparedName& b,
                    const NameSimilarityOptions& options = {});

namespace internal {

/// \brief The pre-kernel composite scorer over already-folded names.
///
/// Kept verbatim as the bit-exactness oracle for the kernel's tests, as
/// the fallback for hand-built `PreparedName`s, and as the baseline the
/// perf benches compare against. `ta`/`tb` are the pre-split token lists
/// when the caller has them; when null, tokenization happens inside (and
/// only if the token measure runs).
double ScoreFoldedReference(std::string_view a, std::string_view b,
                            const std::vector<std::string>* ta,
                            const std::vector<std::string>* tb,
                            const NameSimilarityOptions& options);

}  // namespace internal

}  // namespace smb::sim
