#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file synonyms.h
/// \brief Synonym and abbreviation dictionary for name matching.
///
/// Schema vocabularies routinely alias concepts ("customer"/"client",
/// "qty"/"quantity"). The table groups equivalent lowercase tokens;
/// two tokens in the same group score `synonym_similarity` (default 0.95,
/// slightly below exact equality so exact names still rank first).

namespace smb::sim {

/// \brief Union of synonym groups with O(1) group lookup.
class SynonymTable {
 public:
  SynonymTable() = default;

  /// \brief Adds a group of mutually-synonymous tokens (lowercased).
  ///
  /// Groups sharing a token are merged transitively.
  void AddGroup(const std::vector<std::string>& words);

  /// True iff both tokens are known and share a group (or are equal).
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// Group id for a token, -1 when unknown.
  int GroupOf(std::string_view word) const;

  /// Number of distinct groups.
  size_t group_count() const { return group_count_; }

  /// Number of words across all groups.
  size_t word_count() const { return group_of_.size(); }

  /// \brief Order-independent hash of the table's content (every
  /// word → group pair). Two tables built by the same AddGroup sequence
  /// fingerprint identically; persisted artifacts (index snapshots) store
  /// this to reject reuse under a different dictionary.
  uint64_t ContentFingerprint() const;

  /// \brief A built-in table covering the e-commerce / bibliographic /
  /// HR vocabulary used by the synthetic collection generator.
  static SynonymTable Builtin();

 private:
  std::unordered_map<std::string, int> group_of_;
  size_t group_count_ = 0;
};

}  // namespace smb::sim
