#include "sim/name_similarity.h"

#include <algorithm>

#include "common/strings.h"
#include "sim/edit_distance.h"
#include "sim/jaro_winkler.h"
#include "sim/ngram.h"
#include "sim/prepared_kernel.h"

/// \file name_similarity.cc
/// \brief Composite name similarity: tokenization, synonyms, kernel
/// dispatch.

namespace smb::sim {

namespace internal {

double ScoreFoldedReference(std::string_view a, std::string_view b,
                            const std::vector<std::string>* ta,
                            const std::vector<std::string>* tb,
                            const NameSimilarityOptions& options) {
  if (a == b) return 1.0;
  if (options.synonyms != nullptr && options.synonyms->AreSynonyms(a, b)) {
    return options.synonym_score;
  }

  double wl = std::max(0.0, options.weight_levenshtein);
  double wj = std::max(0.0, options.weight_jaro_winkler);
  double wt = std::max(0.0, options.weight_trigram);
  double wk = std::max(0.0, options.weight_token);
  double wsum = wl + wj + wt + wk;
  if (wsum <= 0.0) return 0.0;

  TokenSimilarityOptions token_options;
  token_options.synonyms = options.synonyms;

  double score = 0.0;
  if (wl > 0.0) score += wl * LevenshteinSimilarity(a, b);
  if (wj > 0.0) score += wj * JaroWinklerSimilarity(a, b);
  if (wt > 0.0) score += wt * NgramDiceSimilarity(a, b);
  if (wk > 0.0) {
    score += wk * (ta != nullptr && tb != nullptr
                       ? TokenListSimilarity(*ta, *tb, token_options)
                       : TokenNameSimilarity(a, b, token_options));
  }
  double sim = score / wsum;
  // Exact 1.0 is reserved for equality so that Δ = 0 identifies the
  // planted original copy uniquely.
  return std::min(sim, 0.999);
}

}  // namespace internal

namespace {

/// Fills the kernel precompute of an already folded+tokenized name.
/// `interner` interns new tokens; `lookup` maps through an immutable table;
/// with neither, token ids stay empty (string-compare fallback).
void CompileKernelFields(PreparedName& prepared,
                         const NameSimilarityOptions& options,
                         TokenTable* interner, const TokenTable* lookup) {
  GramTable::AppendPaddedGramIds(prepared.folded, &prepared.gram_ids);
  CompileAugmentedGramKeys(&prepared);

  const TokenTable* table = interner != nullptr ? interner : lookup;
  if (table != nullptr) {
    prepared.token_ids.reserve(prepared.tokens.size());
    for (const std::string& token : prepared.tokens) {
      prepared.token_ids.push_back(interner != nullptr
                                       ? interner->Intern(token)
                                       : lookup->Lookup(token));
    }
    prepared.token_table = table;
  }

  if (options.synonyms != nullptr) {
    prepared.token_groups.reserve(prepared.tokens.size());
    for (const std::string& token : prepared.tokens) {
      prepared.token_groups.push_back(options.synonyms->GroupOf(token));
    }
    prepared.name_group = options.synonyms->GroupOf(prepared.folded);
    prepared.synonyms = options.synonyms;
  }

  const size_t length = prepared.folded.size();
  if (length >= 1 && length <= 64) {
    // PEQ rows of Myers' bit-parallel Levenshtein: for each distinct
    // character, the bitmask of its positions in the name.
    for (size_t i = 0; i < length; ++i) {
      char c = prepared.folded[i];
      size_t slot = 0;
      while (slot < prepared.peq_chars.size() &&
             prepared.peq_chars[slot] != c) {
        ++slot;
      }
      if (slot == prepared.peq_chars.size()) {
        prepared.peq_chars.push_back(c);
        prepared.peq_masks.push_back(0);
      }
      prepared.peq_masks[slot] |= uint64_t{1} << i;
    }
  }
  prepared.kernel_ready = true;
}

PreparedName PrepareImpl(std::string_view name,
                         const NameSimilarityOptions& options,
                         TokenTable* interner, const TokenTable* lookup) {
  PreparedName prepared;
  prepared.folded =
      options.case_insensitive ? ToLower(name) : std::string(name);
  prepared.tokens = SplitIdentifier(prepared.folded);
  CompileKernelFields(prepared, options, interner, lookup);
  return prepared;
}

}  // namespace

PreparedName PrepareName(std::string_view name,
                         const NameSimilarityOptions& options) {
  return PrepareImpl(name, options, nullptr, nullptr);
}

PreparedName PrepareName(std::string_view name,
                         const NameSimilarityOptions& options,
                         TokenTable* interner) {
  return PrepareImpl(name, options, interner, nullptr);
}

PreparedName PrepareName(std::string_view name,
                         const NameSimilarityOptions& options,
                         const TokenTable& interner) {
  return PrepareImpl(name, options, nullptr, &interner);
}

double NameSimilarity(const PreparedName& a, const PreparedName& b,
                      const NameSimilarityOptions& options) {
  if (a.kernel_ready && b.kernel_ready) {
    BlockScorer scorer(a, options);
    return scorer.Score(b);
  }
  return internal::ScoreFoldedReference(a.folded, b.folded, &a.tokens,
                                        &b.tokens, options);
}

double NameSimilarity(std::string_view a, std::string_view b,
                      const NameSimilarityOptions& options) {
  // One prepared-form path for both overloads: fold and tokenize exactly
  // once per side (the string path used to fold here and then re-tokenize
  // inside the token measure).
  PreparedName pa = PrepareName(a, options);
  PreparedName pb = PrepareName(b, options);
  return NameSimilarity(pa, pb, options);
}

double NameDistance(std::string_view a, std::string_view b,
                    const NameSimilarityOptions& options) {
  return 1.0 - NameSimilarity(a, b, options);
}

double NameDistance(const PreparedName& a, const PreparedName& b,
                    const NameSimilarityOptions& options) {
  return 1.0 - NameSimilarity(a, b, options);
}

}  // namespace smb::sim
