#include "sim/name_similarity.h"

#include <algorithm>

#include "common/strings.h"
#include "sim/edit_distance.h"
#include "sim/jaro_winkler.h"
#include "sim/ngram.h"

namespace smb::sim {

namespace {

/// The one scoring body behind both overloads. `ta`/`tb` are the
/// pre-tokenized names when the caller has them; when null, tokenization
/// happens here and only if the token measure actually runs.
double ScoreFolded(std::string_view a, std::string_view b,
                   const std::vector<std::string>* ta,
                   const std::vector<std::string>* tb,
                   const NameSimilarityOptions& options) {
  if (a == b) return 1.0;
  if (options.synonyms != nullptr && options.synonyms->AreSynonyms(a, b)) {
    return options.synonym_score;
  }

  double wl = std::max(0.0, options.weight_levenshtein);
  double wj = std::max(0.0, options.weight_jaro_winkler);
  double wt = std::max(0.0, options.weight_trigram);
  double wk = std::max(0.0, options.weight_token);
  double wsum = wl + wj + wt + wk;
  if (wsum <= 0.0) return 0.0;

  TokenSimilarityOptions token_options;
  token_options.synonyms = options.synonyms;

  double score = 0.0;
  if (wl > 0.0) score += wl * LevenshteinSimilarity(a, b);
  if (wj > 0.0) score += wj * JaroWinklerSimilarity(a, b);
  if (wt > 0.0) score += wt * NgramDiceSimilarity(a, b);
  if (wk > 0.0) {
    score += wk * (ta != nullptr && tb != nullptr
                       ? TokenListSimilarity(*ta, *tb, token_options)
                       : TokenNameSimilarity(a, b, token_options));
  }
  double sim = score / wsum;
  // Exact 1.0 is reserved for equality so that Δ = 0 identifies the
  // planted original copy uniquely.
  return std::min(sim, 0.999);
}

}  // namespace

PreparedName PrepareName(std::string_view name,
                         const NameSimilarityOptions& options) {
  PreparedName prepared;
  prepared.folded =
      options.case_insensitive ? ToLower(name) : std::string(name);
  prepared.tokens = SplitIdentifier(prepared.folded);
  return prepared;
}

double NameSimilarity(const PreparedName& a, const PreparedName& b,
                      const NameSimilarityOptions& options) {
  return ScoreFolded(a.folded, b.folded, &a.tokens, &b.tokens, options);
}

double NameSimilarity(std::string_view a, std::string_view b,
                      const NameSimilarityOptions& options) {
  std::string la, lb;
  if (options.case_insensitive) {
    la = ToLower(a);
    lb = ToLower(b);
    a = la;
    b = lb;
  }
  return ScoreFolded(a, b, nullptr, nullptr, options);
}

double NameDistance(std::string_view a, std::string_view b,
                    const NameSimilarityOptions& options) {
  return 1.0 - NameSimilarity(a, b, options);
}

double NameDistance(const PreparedName& a, const PreparedName& b,
                    const NameSimilarityOptions& options) {
  return 1.0 - NameSimilarity(a, b, options);
}

}  // namespace smb::sim
