#include "sim/prepared_kernel.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "sim/simd_dispatch.h"
#include "sim/token_similarity.h"

/// \file prepared_kernel.cc
/// \brief The allocation-free threshold-aware kernel over prepared names
/// (SIMD tiers behind runtime dispatch).

namespace smb::sim {

namespace {

/// Pruning margin: component bounds are mathematically ≥ the exact score,
/// but the bound and the score are *computed* with a handful of float ops
/// each, so a few ulps of disagreement are possible. Pruning only below
/// `min_score - kCutoffMargin` keeps "never prune a pair whose exact score
/// ≥ the cutoff" true with room to spare (errors are ~1e-15 on [0,1]).
constexpr double kCutoffMargin = 1e-9;

/// Thread-local reusable buffers. Everything grows to a high-water mark and
/// is then reused; `growths` counts the allocations (the test hook).
struct Scratch {
  /// PEQ table owned by the live BlockScorer (query pattern).
  std::array<uint64_t, 256> peq_block{};
  /// PEQ table for transient patterns (target-as-pattern, raw-string API).
  std::array<uint64_t, 256> peq_tmp{};
  std::vector<uint32_t> row_prev, row_cur;   // banded Levenshtein rows
  std::vector<uint8_t> a_matched, b_matched; // Jaro match flags
  struct PairEntry {
    double score;
    uint32_t i, j;
  };
  std::vector<PairEntry> pairs;              // token best-first pairing
  std::vector<uint8_t> used_a, used_b;
  // Structure-of-arrays view of one ScoreMany block: indices into the
  // caller's target array (survivor-compacted between stages) plus the
  // per-candidate columns the SIMD filters consume.
  std::vector<uint32_t> soa_idx;
  std::vector<double> soa_len, soa_grams, soa_bound, soa_dice;
  std::vector<const uint32_t*> soa_tkeys;  // per-target gram-key spans for
  std::vector<uint32_t> soa_tlens;         // the batched intersection
  std::vector<uint32_t> soa_counts;
  std::vector<uint32_t> soa_order;  // length-sorted Myers lane order
  uint64_t growths = 0;
  bool block_live = false;
};

Scratch& Tls() {
  static thread_local Scratch scratch;
  return scratch;
}

template <typename T>
void EnsureSize(std::vector<T>& v, size_t n, Scratch& s) {
  if (v.size() < n) {
    if (v.capacity() < n) ++s.growths;
    v.resize(n);
  }
}

template <typename T>
void EnsureCapacity(std::vector<T>& v, size_t n, Scratch& s) {
  if (v.capacity() < n) {
    ++s.growths;
    v.reserve(n);
  }
}

// ---------------------------------------------------------------------------
// Levenshtein: Myers bit-parallel (pattern ≤ 64) and banded two-row DP.

/// Myers' bit-parallel edit distance: `peq` holds the pattern's
/// per-character position masks, `m` its length (1..64); runs O(|text|)
/// word operations. Exact Levenshtein distance.
size_t MyersDistance(const std::array<uint64_t, 256>& peq, size_t m,
                     std::string_view text) {
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  size_t score = m;
  const uint64_t last = uint64_t{1} << (m - 1);
  for (char tc : text) {
    const uint64_t eq = peq[static_cast<unsigned char>(tc)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

void LoadRawPattern(std::array<uint64_t, 256>& peq, std::string_view pattern) {
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= uint64_t{1} << i;
  }
}

void ClearRawPattern(std::array<uint64_t, 256>& peq, std::string_view pattern) {
  for (char c : pattern) peq[static_cast<unsigned char>(c)] = 0;
}

void LoadPreparedPattern(std::array<uint64_t, 256>& peq,
                         const PreparedName& name) {
  for (size_t s = 0; s < name.peq_chars.size(); ++s) {
    peq[static_cast<unsigned char>(name.peq_chars[s])] = name.peq_masks[s];
  }
}

void ClearPreparedPattern(std::array<uint64_t, 256>& peq,
                          const PreparedName& name) {
  for (char c : name.peq_chars) peq[static_cast<unsigned char>(c)] = 0;
}

/// Banded two-row DP: exact distance when it is ≤ `k`, otherwise `k + 1`.
/// Cells with |i - j| > k cannot lie on a ≤ k-cost path, so each row only
/// visits a 2k+1 window; guard cells around the window hold the saturated
/// sentinel so stale values never leak in as the band slides.
size_t BandedLevenshtein(std::string_view a, std::string_view b, size_t k,
                         Scratch& s) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string
  const size_t m = a.size();
  const size_t n = b.size();
  k = std::min(k, n);  // the distance never exceeds the longer length
  if (n - m > k) return k + 1;
  if (m == 0) return n;

  const uint32_t big = static_cast<uint32_t>(k) + 1;  // saturation sentinel
  EnsureSize(s.row_prev, m + 1, s);
  EnsureSize(s.row_cur, m + 1, s);
  uint32_t* prev = s.row_prev.data();
  uint32_t* cur = s.row_cur.data();
  for (size_t i = 0; i <= m; ++i) {
    prev[i] = static_cast<uint32_t>(std::min<size_t>(i, big));
  }
  for (size_t j = 1; j <= n; ++j) {
    const size_t lo = j > k ? j - k : 0;
    const size_t hi = std::min(m, j + k);
    if (lo == 0) {
      cur[0] = static_cast<uint32_t>(std::min<size_t>(j, big));
    } else {
      cur[lo - 1] = big;
    }
    for (size_t i = std::max<size_t>(lo, 1); i <= hi; ++i) {
      const uint32_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      uint32_t best = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
      cur[i] = std::min(best, big);
    }
    if (hi < m) cur[hi + 1] = big;
    std::swap(prev, cur);
  }
  return prev[m] >= big ? static_cast<size_t>(k) + 1 : prev[m];
}

/// `1 - dist / max(|a|, |b|)` — the exact expression of
/// `LevenshteinSimilarity`, reproduced for bit-identical doubles.
double NormalizedLevSimilarity(size_t dist, size_t la, size_t lb) {
  size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

// ---------------------------------------------------------------------------
// Jaro-Winkler over scratch flags — same algorithm as jaro_winkler.cc,
// minus the two per-call vector<bool> allocations.

double JaroScratch(std::string_view a, std::string_view b, Scratch& s) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t window =
      std::max(a.size(), b.size()) / 2 == 0
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;

  EnsureSize(s.a_matched, a.size(), s);
  EnsureSize(s.b_matched, b.size(), s);
  std::fill_n(s.a_matched.begin(), a.size(), uint8_t{0});
  std::fill_n(s.b_matched.begin(), b.size(), uint8_t{0});
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (s.b_matched[j] || a[i] != b[j]) continue;
      s.a_matched[i] = 1;
      s.b_matched[j] = 1;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!s.a_matched[i]) continue;
    while (!s.b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerScratch(std::string_view a, std::string_view b,
                          Scratch& s) {
  double jaro = JaroScratch(a, b, s);
  const double prefix_scale = 0.1;  // the JaroWinklerSimilarity default
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

// ---------------------------------------------------------------------------
// Trigram Dice over interned sorted gram ids.

/// Multiset intersection of two sorted id arrays — the integer twin of
/// ngram.cc's SortedIntersectionSize (the count is order-invariant, so any
/// consistent sort key gives the same value).
size_t SortedIdIntersection(std::span<const uint32_t> a,
                            std::span<const uint32_t> b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double DiceKernel(const PreparedName& a, const PreparedName& b) {
  if (a.folded.empty() && b.folded.empty()) return 1.0;
  const auto& ga = a.gram_ids;
  const auto& gb = b.gram_ids;
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter =
      SortedIdIntersection({ga.data(), ga.size()}, {gb.data(), gb.size()});
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(ga.size() + gb.size());
}

/// Admissible upper bound on Dice from the gram counts alone:
/// `|A∩B| ≤ min(|A|, |B|)`.
double DiceCountUpperBound(const PreparedName& a, const PreparedName& b) {
  if (a.folded.empty() && b.folded.empty()) return 1.0;
  const size_t ca = a.gram_ids.size();
  const size_t cb = b.gram_ids.size();
  if (ca == 0 && cb == 0) return 1.0;
  if (ca == 0 || cb == 0) return 0.0;
  return 2.0 * static_cast<double>(std::min(ca, cb)) /
         static_cast<double>(ca + cb);
}

/// Admissible upper bound on Levenshtein similarity from the lengths:
/// `dist ≥ ||a| - |b||`.
double LevLengthUpperBound(size_t la, size_t lb) {
  const size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  const size_t gap = la > lb ? la - lb : lb - la;
  return 1.0 - static_cast<double>(gap) / static_cast<double>(longest);
}

// ---------------------------------------------------------------------------
// Token similarity over interned ids, scratch-buffered.

double TokenSimilarityKernel(const PreparedName& a, const PreparedName& b,
                             const NameSimilarityOptions& options,
                             bool ids_valid, bool groups_valid, Scratch& s) {
  const std::vector<std::string>& ta = a.tokens;
  const std::vector<std::string>& tb = b.tokens;
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;

  // The reference scorer hands the token measure a default-constructed
  // TokenSimilarityOptions (only `synonyms` is forwarded) — mirror that.
  const TokenSimilarityOptions token_defaults;
  const double synonym_score = token_defaults.synonym_score;
  const double min_token_score = token_defaults.min_token_score;
  const SynonymTable* synonyms = options.synonyms;

  s.pairs.clear();
  EnsureCapacity(s.pairs, ta.size() * tb.size(), s);
  for (size_t i = 0; i < ta.size(); ++i) {
    for (size_t j = 0; j < tb.size(); ++j) {
      bool equal;
      if (ids_valid) {
        const uint32_t ia = a.token_ids[i];
        const uint32_t ib = b.token_ids[j];
        if (ia != kUnknownTokenId && ib != kUnknownTokenId) {
          equal = ia == ib;
        } else {
          // A lookup-only miss: the id proves nothing, compare strings.
          equal = ta[i] == tb[j];
        }
      } else {
        equal = ta[i] == tb[j];
      }

      double score;
      if (equal) {
        score = 1.0;
      } else {
        bool synonym;
        if (synonyms == nullptr) {
          synonym = false;
        } else if (groups_valid) {
          const int32_t gi = a.token_groups[i];
          synonym = gi >= 0 && gi == b.token_groups[j];
        } else {
          synonym = synonyms->AreSynonyms(ta[i], tb[j]);
        }
        if (synonym) {
          score = synonym_score;
        } else {
          double jw = JaroWinklerScratch(ta[i], tb[j], s);
          score = jw >= min_token_score ? jw : 0.0;
        }
      }
      if (score > 0.0) {
        s.pairs.push_back({score, static_cast<uint32_t>(i),
                           static_cast<uint32_t>(j)});
      }
    }
  }
  std::sort(s.pairs.begin(), s.pairs.end(),
            [](const Scratch::PairEntry& x, const Scratch::PairEntry& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.i != y.i) return x.i < y.i;
              return x.j < y.j;
            });

  EnsureSize(s.used_a, ta.size(), s);
  EnsureSize(s.used_b, tb.size(), s);
  std::fill_n(s.used_a.begin(), ta.size(), uint8_t{0});
  std::fill_n(s.used_b.begin(), tb.size(), uint8_t{0});
  double total = 0.0;
  size_t matched = 0;
  for (const Scratch::PairEntry& p : s.pairs) {
    if (s.used_a[p.i] || s.used_b[p.j]) continue;
    s.used_a[p.i] = 1;
    s.used_b[p.j] = 1;
    total += p.score;
    ++matched;
  }
  double denom = static_cast<double>(ta.size() + tb.size() - matched);
  return denom > 0.0 ? total / denom : 1.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// GramTable / TokenTable

uint32_t GramTable::Pack(std::string_view gram) {
  assert(gram.size() == 3);
  return Pack(static_cast<unsigned char>(gram[0]),
              static_cast<unsigned char>(gram[1]),
              static_cast<unsigned char>(gram[2]));
}

std::string GramTable::Unpack(uint32_t id) {
  std::string gram(3, '\0');
  gram[0] = static_cast<char>((id >> 16) & 0xFF);
  gram[1] = static_cast<char>((id >> 8) & 0xFF);
  gram[2] = static_cast<char>(id & 0xFF);
  return gram;
}

std::vector<uint32_t> GramTable::PaddedGramIds(std::string_view folded) {
  std::vector<uint32_t> ids;
  AppendPaddedGramIds(folded, &ids);
  return ids;
}

void CompileAugmentedGramKeys(PreparedName* name) {
  name->gram_keys.clear();
  const auto& ids = name->gram_ids;
  name->gram_keys.reserve(ids.size());
  uint32_t occurrence = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    occurrence = (i > 0 && ids[i] == ids[i - 1]) ? occurrence + 1 : 0;
    if (occurrence >= 256 || ids[i] >= 0xFFFFFFu) {
      // A gram repeated ≥ 256 times overflows the 8 occurrence bits, and a
      // gram id at/above 2^24-1 would overflow the id bits (and collide
      // with the SIMD kernels' 0xFFFFFFFF padding sentinel); leave the
      // keys empty (the scalar multiset merge handles it).
      name->gram_keys.clear();
      return;
    }
    name->gram_keys.push_back((ids[i] << 8) | occurrence);
  }
}

uint32_t TokenTable::Intern(std::string_view token) {
  auto it = ids_.find(token);  // heterogeneous: no temporary when present
  if (it != ids_.end()) return it->second;
  return ids_.emplace(std::string(token), static_cast<uint32_t>(ids_.size()))
      .first->second;
}

uint32_t TokenTable::Lookup(std::string_view token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kUnknownTokenId : it->second;
}

std::vector<std::string_view> TokenTable::OrderedTokens() const {
  std::vector<std::string_view> tokens(ids_.size());
  for (const auto& [token, id] : ids_) {
    tokens[id] = token;
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Raw-string Levenshtein entry points (tests, one-off callers).

size_t KernelLevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  Scratch& s = Tls();
  if (a.size() > b.size()) std::swap(a, b);
  if (a.size() <= 64) {
    LoadRawPattern(s.peq_tmp, a);
    size_t dist = MyersDistance(s.peq_tmp, a.size(), b);
    ClearRawPattern(s.peq_tmp, a);
    return dist;
  }
  return BandedLevenshtein(a, b, std::max(a.size(), b.size()), s);
}

size_t KernelLevenshteinBounded(std::string_view a, std::string_view b,
                                size_t k) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  Scratch& s = Tls();
  if (a.size() > b.size()) std::swap(a, b);
  if (a.size() <= 64) {
    // The bit-parallel path is O(|b|) words regardless of k — computing the
    // exact distance is cheaper than banding.
    LoadRawPattern(s.peq_tmp, a);
    size_t dist = MyersDistance(s.peq_tmp, a.size(), b);
    ClearRawPattern(s.peq_tmp, a);
    return dist;
  }
  return BandedLevenshtein(a, b, k, s);
}

uint64_t KernelScratchGrowthCount() { return Tls().growths; }

// ---------------------------------------------------------------------------
// BlockScorer

BlockScorer::BlockScorer(const PreparedName& query,
                         const NameSimilarityOptions& options)
    : query_(&query), options_(&options) {
  wl_ = std::max(0.0, options.weight_levenshtein);
  wj_ = std::max(0.0, options.weight_jaro_winkler);
  wt_ = std::max(0.0, options.weight_trigram);
  wk_ = std::max(0.0, options.weight_token);
  wsum_ = wl_ + wj_ + wt_ + wk_;
  groups_valid_ =
      options.synonyms != nullptr && query.synonyms == options.synonyms;
  // The thread-local PEQ table hosts one resident pattern. The first live
  // scorer on a thread claims it; a nested scorer (e.g. a one-shot
  // NameSimilarity call while a block fill is in flight) simply runs
  // without a resident query pattern — its Levenshtein path loads the
  // target side into the transient table per pair instead — so nesting is
  // merely slower, never incorrect.
  Scratch& s = Tls();
  if (!s.block_live) {
    s.block_live = true;
    owns_block_slot_ = true;
    if (!query.peq_chars.empty()) {
      LoadPreparedPattern(s.peq_block, query);
      query_peq_loaded_ = true;
    }
  }
}

BlockScorer::~BlockScorer() {
  Scratch& s = Tls();
  if (query_peq_loaded_) ClearPreparedPattern(s.peq_block, *query_);
  if (owns_block_slot_) s.block_live = false;
}

double BlockScorer::Score(const PreparedName& target) {
  return ScoreWithCutoff(target, 0.0).score;
}

CutoffScore BlockScorer::ScoreWithCutoff(const PreparedName& target,
                                         double min_score) {
  const PreparedName& q = *query_;
  if (!q.kernel_ready || !target.kernel_ready) {
    // Hand-built prepared form: score through the reference path (exact).
    return {internal::ScoreFoldedReference(q.folded, target.folded, &q.tokens,
                                           &target.tokens, *options_),
            true};
  }

  // The reference scorer's two short-circuits, in its order.
  if (q.folded == target.folded) return {1.0, true};
  const SynonymTable* synonyms = options_->synonyms;
  if (synonyms != nullptr) {
    bool whole_name_synonyms;
    if (groups_valid_ && target.synonyms == synonyms) {
      whole_name_synonyms =
          q.name_group >= 0 && q.name_group == target.name_group;
    } else {
      whole_name_synonyms = synonyms->AreSynonyms(q.folded, target.folded);
    }
    if (whole_name_synonyms) return {options_->synonym_score, true};
  }
  if (wsum_ <= 0.0) return {0.0, true};

  const bool cutoff = min_score > 0.0;
  const size_t la = q.folded.size();
  const size_t lb = target.folded.size();

  // Cheapest-first: admissible bounds cost a handful of arithmetic ops —
  // check them before touching any real component.
  if (cutoff) {
    const double u = (wl_ * LevLengthUpperBound(la, lb) + wj_ +
                      wt_ * DiceCountUpperBound(q, target) + wk_) /
                     wsum_;
    if (u < min_score - kCutoffMargin) return {u, false};
  }

  // Exact trigram Dice: one integer merge, no allocation.
  double dice = 0.0;
  if (wt_ > 0.0) {
    dice = DiceKernel(q, target);
    if (cutoff) {
      const double u =
          (wl_ * LevLengthUpperBound(la, lb) + wj_ + wt_ * dice + wk_) /
          wsum_;
      if (u < min_score - kCutoffMargin) return {u, false};
    }
  }

  return FinishFromDice(target, min_score, dice, /*have_dist=*/false, 0);
}

CutoffScore BlockScorer::FinishFromDice(const PreparedName& target,
                                        double min_score, double dice,
                                        bool have_dist, size_t dist_in) {
  const PreparedName& q = *query_;
  const SynonymTable* synonyms = options_->synonyms;
  Scratch& s = Tls();
  const bool cutoff = min_score > 0.0;
  const size_t la = q.folded.size();
  const size_t lb = target.folded.size();

  // Exact Levenshtein: bit-parallel when either side fits one word,
  // banded with an early-exit cutoff otherwise.
  double lev = 0.0;
  if (wl_ > 0.0) {
    size_t dist;
    const size_t longest = std::max(la, lb);
    if (have_dist) {
      dist = dist_in;  // the batch pipeline already ran Myers for this pair
    } else if (la == 0 || lb == 0) {
      dist = la + lb;
    } else if (query_peq_loaded_) {
      dist = MyersDistance(s.peq_block, la, target.folded);
    } else if (!target.peq_chars.empty()) {
      LoadPreparedPattern(s.peq_tmp, target);
      dist = MyersDistance(s.peq_tmp, lb, q.folded);
      ClearPreparedPattern(s.peq_tmp, target);
    } else {
      // Both sides > 64 chars: derive the largest distance that could
      // still reach min_score (with Jaro-Winkler and token at their
      // maxima) and band the DP accordingly.
      size_t k = longest;
      if (cutoff) {
        const double lev_needed =
            (min_score * wsum_ - (wj_ + wt_ * dice + wk_)) / wl_;
        if (lev_needed > 0.0) {
          const double dmax =
              (1.0 - lev_needed) * static_cast<double>(longest);
          k = dmax <= 0.0
                  ? 1
                  : std::min(longest, static_cast<size_t>(dmax) + 1);
        }
      }
      dist = BandedLevenshtein(q.folded, target.folded, k, s);
      if (dist > k) {
        // Early exit certified dist ≥ k+1; re-check the prune condition
        // with that bound (it decides correctness, not the k derivation).
        const double lev_ub =
            1.0 - static_cast<double>(k + 1) / static_cast<double>(longest);
        const double u = (wl_ * lev_ub + wj_ + wt_ * dice + wk_) / wsum_;
        if (u < min_score - kCutoffMargin) return {u, false};
        // Rare: the bound survives the margin — fall back to the exact
        // distance so the returned score stays full-precision.
        dist = BandedLevenshtein(q.folded, target.folded, longest, s);
      }
    }
    lev = NormalizedLevSimilarity(dist, la, lb);
    if (cutoff) {
      const double u = (wl_ * lev + wj_ + wt_ * dice + wk_) / wsum_;
      if (u < min_score - kCutoffMargin) return {u, false};
    }
  }

  // Exact Jaro-Winkler.
  double jw = 0.0;
  if (wj_ > 0.0) {
    jw = JaroWinklerScratch(q.folded, target.folded, s);
    if (cutoff) {
      const double u = (wl_ * lev + wj_ * jw + wt_ * dice + wk_) / wsum_;
      if (u < min_score - kCutoffMargin) return {u, false};
    }
  }

  // Exact token similarity — the most expensive component, last.
  double token = 0.0;
  if (wk_ > 0.0) {
    const bool ids_valid = q.token_table != nullptr &&
                           q.token_table == target.token_table &&
                           q.token_ids.size() == q.tokens.size() &&
                           target.token_ids.size() == target.tokens.size();
    const bool token_groups_valid =
        groups_valid_ && target.synonyms == synonyms &&
        q.token_groups.size() == q.tokens.size() &&
        target.token_groups.size() == target.tokens.size();
    token = TokenSimilarityKernel(q, target, *options_, ids_valid,
                                  token_groups_valid, s);
  }

  // Combine in the reference scorer's exact accumulation order so the
  // final double is bit-identical.
  double score = 0.0;
  if (wl_ > 0.0) score += wl_ * lev;
  if (wj_ > 0.0) score += wj_ * jw;
  if (wt_ > 0.0) score += wt_ * dice;
  if (wk_ > 0.0) score += wk_ * token;
  double sim = score / wsum_;
  return {std::min(sim, 0.999), true};
}

void BlockScorer::ScoreMany(std::span<const PreparedName* const> targets,
                            double min_score, CutoffScore* out) {
  const size_t n = targets.size();
  if (n == 0) return;
  const simd::Ops& ops = simd::OpsForTier(ActiveSimdTier());
  const PreparedName& q = *query_;
  const SynonymTable* synonyms = options_->synonyms;
  Scratch& s = Tls();
  const bool cutoff = min_score > 0.0;
  const double prune_below = min_score - kCutoffMargin;
  const double la = static_cast<double>(q.folded.size());
  const double ga = static_cast<double>(q.gram_ids.size());

  const size_t ca = q.gram_ids.size();
  const bool qkeys_ok = ca > 0 && q.gram_keys.size() == ca;
  // Pairs the batched intersection will need key spans for; filled in
  // stage A while the target's cache lines are hot.
  const bool want_keys = wt_ > 0.0 && ca > 0;
  // Whether any live pair lacks a key span (empty side or overflowed keys)
  // and needs the scalar prefill before the batched intersection. Stage B
  // only removes pairs, so a stage-A false stays exact.
  bool any_null_keys = false;

  EnsureSize(s.soa_idx, n, s);
  EnsureSize(s.soa_len, n, s);
  EnsureSize(s.soa_grams, n, s);
  EnsureSize(s.soa_bound, n, s);
  EnsureSize(s.soa_dice, n, s);
  EnsureSize(s.soa_tkeys, n, s);
  EnsureSize(s.soa_tlens, n, s);
  EnsureSize(s.soa_counts, n, s);

  // Stage A — the per-pair short-circuits of ScoreWithCutoff, in its exact
  // order; undecided pairs land in the SoA columns.
  size_t live = 0;
  for (size_t i = 0; i < n; ++i) {
    const PreparedName& t = *targets[i];
    if (!q.kernel_ready || !t.kernel_ready) {
      out[i] = {internal::ScoreFoldedReference(q.folded, t.folded, &q.tokens,
                                               &t.tokens, *options_),
                true};
      continue;
    }
    if (q.folded == t.folded) {
      out[i] = {1.0, true};
      continue;
    }
    if (synonyms != nullptr) {
      bool whole_name_synonyms;
      if (groups_valid_ && t.synonyms == synonyms) {
        whole_name_synonyms =
            q.name_group >= 0 && q.name_group == t.name_group;
      } else {
        whole_name_synonyms = synonyms->AreSynonyms(q.folded, t.folded);
      }
      if (whole_name_synonyms) {
        out[i] = {options_->synonym_score, true};
        continue;
      }
    }
    if (wsum_ <= 0.0) {
      out[i] = {0.0, true};
      continue;
    }
    s.soa_idx[live] = static_cast<uint32_t>(i);
    s.soa_len[live] = static_cast<double>(t.folded.size());
    const size_t cb = t.gram_ids.size();
    s.soa_grams[live] = static_cast<double>(cb);
    if (want_keys) {
      // Null key pointer + nonzero length marks the rare scalar-merge
      // fallback (a side whose augmented keys overflowed); null + zero
      // length is an empty side (intersection 0 without any work).
      const bool keys_valid = qkeys_ok && t.gram_keys.size() == cb;
      if (keys_valid && cb > 0) {
        s.soa_tkeys[live] = t.gram_keys.data();
      } else {
        s.soa_tkeys[live] = nullptr;
        any_null_keys = true;
      }
      s.soa_tlens[live] = static_cast<uint32_t>(cb);
    }
    ++live;
  }

  // Stage B — lane-parallel admissible pre-filter (the length and
  // gram-count bounds). The equality short-circuit above guarantees no
  // both-empty pair reaches the general formulas, so they reproduce the
  // per-pair special cases bit-for-bit.
  if (cutoff && live > 0) {
    ops.bound_filter(s.soa_len.data(), s.soa_grams.data(), live, la, ga,
                     wl_, wj_, wt_, wk_, wsum_, s.soa_bound.data());
    size_t kept = 0;
    for (size_t k = 0; k < live; ++k) {
      if (s.soa_bound[k] < prune_below) {
        out[s.soa_idx[k]] = {s.soa_bound[k], false};
      } else {
        s.soa_idx[kept] = s.soa_idx[k];
        s.soa_len[kept] = s.soa_len[k];
        s.soa_grams[kept] = s.soa_grams[k];
        if (want_keys) {
          s.soa_tkeys[kept] = s.soa_tkeys[k];
          s.soa_tlens[kept] = s.soa_tlens[k];
        }
        ++kept;
      }
    }
    live = kept;
  }

  // Stage C — exact trigram Dice (SIMD set intersection over the augmented
  // gram keys, the query side held resident across the block) plus the
  // refreshed bound. The length bound is recomputed from the SoA doubles:
  // lengths are exact small integers, so the double arithmetic reproduces
  // the per-pair size_t-based expression bit-for-bit.
  if (wt_ > 0.0 && live > 0 && ca > 0) {
    // Pairs the SIMD kernel cannot take (a side whose augmented keys
    // overflowed) are pre-filled from the scalar multiset merge and
    // skipped by the kernel; empty target sides count zero outright.
    if (any_null_keys) {
      for (size_t k = 0; k < live; ++k) {
        if (s.soa_tkeys[k] != nullptr) continue;
        const uint32_t cb = s.soa_tlens[k];
        s.soa_counts[k] =
            cb == 0
                ? 0u  // dice 2*0/(ca+0) == the per-pair 0.0
                : static_cast<uint32_t>(SortedIdIntersection(
                      {q.gram_ids.data(), ca},
                      {targets[s.soa_idx[k]]->gram_ids.data(), cb}));
      }
    }
    if (qkeys_ok) {
      ops.intersect_many(q.gram_keys.data(), ca, s.soa_tkeys.data(),
                         s.soa_tlens.data(), live, s.soa_counts.data());
    }
    // Exact dice plus the refreshed bound, lane-parallel; `ca + cb` as a
    // double add of two exact small integers matches the per-pair
    // size_t-sum-then-convert bit-for-bit.
    ops.dice_refine(s.soa_len.data(), s.soa_grams.data(), s.soa_counts.data(),
                    live, la, static_cast<double>(ca), wl_, wj_, wt_, wk_,
                    wsum_, s.soa_dice.data(), s.soa_bound.data());
    size_t kept = 0;
    for (size_t k = 0; k < live; ++k) {
      if (cutoff && s.soa_bound[k] < prune_below) {
        out[s.soa_idx[k]] = {s.soa_bound[k], false};
        continue;
      }
      s.soa_idx[kept] = s.soa_idx[k];
      s.soa_len[kept] = s.soa_len[k];
      s.soa_dice[kept] = s.soa_dice[k];
      ++kept;
    }
    live = kept;
  } else if (wt_ > 0.0 && live > 0) {
    // ca == 0: dice is exactly 0.0 for every pair; only the refreshed
    // bound remains (same expression as the per-pair path with dice 0).
    size_t kept = 0;
    for (size_t k = 0; k < live; ++k) {
      if (cutoff) {
        const double lb = s.soa_len[k];
        const double longest = std::max(la, lb);
        const double gap = la > lb ? la - lb : lb - la;
        const double lev_ub = 1.0 - gap / longest;
        const double u = (wl_ * lev_ub + wj_ + wt_ * 0.0 + wk_) / wsum_;
        if (u < prune_below) {
          out[s.soa_idx[k]] = {u, false};
          continue;
        }
      }
      s.soa_idx[kept] = s.soa_idx[k];
      s.soa_len[kept] = s.soa_len[k];
      s.soa_dice[kept] = 0.0;
      ++kept;
    }
    live = kept;
  } else {
    std::fill_n(s.soa_dice.begin(), live, 0.0);
  }

  // Stages D+E — batched Myers fused with the scalar tail: survivors with
  // the resident query pattern are grouped into SIMD lanes (the kernel
  // reads each folded name in place — no packing); each lane's distance is
  // the exact scalar recurrence, so downstream doubles are unchanged. With a
  // cutoff, the per-pair path's post-Levenshtein bound is applied right on
  // the batch output, so only pairs that can still reach `min_score` pay
  // for the tail (Levenshtein fallbacks, Jaro-Winkler, token similarity,
  // final combine).
  if (wl_ > 0.0 && query_peq_loaded_ && ops.lanes > 1 && live > 0) {
    const size_t lanes = ops.lanes;
    uint64_t lens[8] = {0};
    uint64_t dists[8] = {0};
    uint32_t lane_k[8] = {0};
    const uint8_t* texts[8] = {nullptr};
    size_t filled = 0;
    size_t maxlen = 0;
    // Visit survivors in folded-length order (counting sort; lengths clamp
    // into the last bucket): each batch runs max-length iterations across
    // its lanes, so near-equal lanes waste the fewest frozen steps. Results
    // are written per pair, so the visit order cannot change any score.
    constexpr size_t kLenBuckets = 130;
    uint32_t bucket[kLenBuckets] = {0};
    for (size_t k = 0; k < live; ++k) {
      ++bucket[std::min<size_t>(static_cast<size_t>(s.soa_len[k]),
                                kLenBuckets - 1)];
    }
    size_t pos = 0;
    for (size_t b = 0; b < kLenBuckets; ++b) {
      const uint32_t c = bucket[b];
      bucket[b] = static_cast<uint32_t>(pos);
      pos += c;
    }
    EnsureSize(s.soa_order, live, s);
    for (size_t k = 0; k < live; ++k) {
      const size_t b = std::min<size_t>(static_cast<size_t>(s.soa_len[k]),
                                        kLenBuckets - 1);
      s.soa_order[bucket[b]++] = static_cast<uint32_t>(k);
    }
    auto flush = [&]() {
      if (filled == 0) return;
      for (size_t l = filled; l < lanes; ++l) lens[l] = 0;
      ops.myers_batch(s.peq_block.data(), q.folded.size(), texts, lens,
                      maxlen, dists);
      for (size_t l = 0; l < filled; ++l) {
        const size_t k = lane_k[l];
        const uint32_t i = s.soa_idx[k];
        if (cutoff) {
          // The per-pair path's post-Levenshtein bound, verbatim:
          // lev = 1 - dist/longest; u = (wl*lev + wj + wt*dice + wk)/wsum.
          const double lb = s.soa_len[k];
          const double longest = std::max(la, lb);
          const double lev = 1.0 - static_cast<double>(dists[l]) / longest;
          const double u =
              (wl_ * lev + wj_ + wt_ * s.soa_dice[k] + wk_) / wsum_;
          if (u < prune_below) {
            out[i] = {u, false};
            continue;
          }
        }
        out[i] = FinishFromDice(*targets[i], min_score, s.soa_dice[k],
                                /*have_dist=*/true, dists[l]);
      }
      filled = 0;
      maxlen = 0;
    };
    for (size_t o = 0; o < live; ++o) {
      const size_t k = s.soa_order[o];
      const uint32_t i = s.soa_idx[k];
      const std::string& f = targets[i]->folded;
      const size_t lb = f.size();
      if (lb == 0) {  // trivial dist = la + lb, handled by the tail
        out[i] = FinishFromDice(*targets[i], min_score, s.soa_dice[k],
                                /*have_dist=*/false, 0);
        continue;
      }
      lane_k[filled] = static_cast<uint32_t>(k);
      lens[filled] = lb;
      texts[filled] = reinterpret_cast<const uint8_t*>(f.data());
      maxlen = std::max(maxlen, lb);
      if (++filled == lanes) flush();
    }
    flush();
  } else {
    for (size_t k = 0; k < live; ++k) {
      const uint32_t i = s.soa_idx[k];
      out[i] = FinishFromDice(*targets[i], min_score, s.soa_dice[k],
                              /*have_dist=*/false, 0);
    }
  }
}

CutoffScore ScoreWithCutoff(const PreparedName& a, const PreparedName& b,
                            const NameSimilarityOptions& options,
                            double min_score) {
  BlockScorer scorer(a, options);
  return scorer.ScoreWithCutoff(b, min_score);
}

void ScoreBlock(const PreparedName& query,
                std::span<const PreparedName* const> targets,
                const NameSimilarityOptions& options, double min_score,
                CutoffScore* out) {
  BlockScorer scorer(query, options);
  scorer.ScoreMany(targets, min_score, out);
}

}  // namespace smb::sim
