#include "sim/simd_dispatch.h"

/// \file simd_kernels_neon.cc
/// \brief NEON implementations of the dispatch kernels for aarch64 (see
/// simd_dispatch.h). NEON is baseline on aarch64, so no special compile
/// flags are needed; on other targets the TU degrades to a nullptr
/// registration.
///
/// Only the integer kernels (intersection, 2-lane batched Myers) are
/// vectorized. The double-precision bound filter reuses the scalar
/// implementation: aarch64 has fused multiply-add in its baseline ISA and
/// compilers contract `a*b + c` by default, so a hand-written non-fused
/// NEON expression could differ from the surrounding scalar code by an ulp
/// — routing through the one scalar function keeps every tier bit-identical.

#if defined(__aarch64__)

#include <arm_neon.h>

namespace smb::sim::simd {
namespace {

/// 4x4 block intersection of strictly increasing uint32 arrays: compare a
/// block of `a` against every rotation of a block of `b`.
size_t IntersectNeon(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const uint32x4_t va = vld1q_u32(a + i);
    const uint32x4_t vb = vld1q_u32(b + j);
    uint32x4_t eq = vceqq_u32(va, vb);
    eq = vorrq_u32(eq, vceqq_u32(va, vextq_u32(vb, vb, 1)));
    eq = vorrq_u32(eq, vceqq_u32(va, vextq_u32(vb, vb, 2)));
    eq = vorrq_u32(eq, vceqq_u32(va, vextq_u32(vb, vb, 3)));
    count += vaddvq_u32(vshrq_n_u32(eq, 31));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return count + IntersectScalar(a + i, na - i, b + j, nb - j);
}

/// Two Myers recurrences in the two 64-bit lanes of one q register; lanes
/// whose text ended are frozen with a bitwise select.
void MyersBatchNeon(const uint64_t* peq, size_t m,
                    const uint8_t* const* texts, const uint64_t* lens,
                    size_t maxlen, uint64_t* out) {
  const uint64x2_t all_ones = vdupq_n_u64(~uint64_t{0});
  const uint64x2_t one = vdupq_n_u64(1);
  uint64x2_t pv = all_ones;
  uint64x2_t mv = vdupq_n_u64(0);
  uint64x2_t score = vdupq_n_u64(m);
  const uint64x2_t last = vdupq_n_u64(uint64_t{1} << (m - 1));
  const uint64x2_t vlens = vld1q_u64(lens);
  // Texts are read in place: a disabled lane aliases lane 0 and frozen
  // lanes clamp their byte index to the last valid byte (the value is
  // irrelevant once the lane's state stops updating).
  const uint8_t* t0 = texts[0];
  const uint8_t* t1 = lens[1] ? texts[1] : texts[0];
  const size_t c0 = lens[0] - 1;
  const size_t c1 = lens[1] ? lens[1] - 1 : 0;
  for (size_t i = 0; i < maxlen; ++i) {
    const uint64x2_t eq =
        vcombine_u64(vcreate_u64(peq[t0[i < c0 ? i : c0]]),
                     vcreate_u64(peq[t1[i < c1 ? i : c1]]));
    const uint64x2_t xv = vorrq_u64(eq, mv);
    const uint64x2_t eqpv = vandq_u64(eq, pv);
    const uint64x2_t xh =
        vorrq_u64(veorq_u64(vaddq_u64(eqpv, pv), pv), eq);
    uint64x2_t ph =
        vorrq_u64(mv, veorq_u64(vorrq_u64(xh, pv), all_ones));
    uint64x2_t mh = vandq_u64(pv, xh);
    // score += (ph & last ? 1 : 0) - (mh & last ? 1 : 0): the compare masks
    // are all-ones (== -1 mod 2^64) when set, so subtract/add them.
    const uint64x2_t inc = vceqq_u64(vandq_u64(ph, last), last);
    const uint64x2_t dec = vceqq_u64(vandq_u64(mh, last), last);
    uint64x2_t score_new = vsubq_u64(score, inc);
    score_new = vaddq_u64(score_new, dec);
    ph = vorrq_u64(vshlq_n_u64(ph, 1), one);
    mh = vshlq_n_u64(mh, 1);
    const uint64x2_t pv_new =
        vorrq_u64(mh, veorq_u64(vorrq_u64(xv, ph), all_ones));
    const uint64x2_t mv_new = vandq_u64(ph, xv);
    const uint64x2_t active = vcgtq_u64(vlens, vdupq_n_u64(i));
    pv = vbslq_u64(active, pv_new, pv);
    mv = vbslq_u64(active, mv_new, mv);
    score = vbslq_u64(active, score_new, score);
  }
  vst1q_u64(out, score);
}

/// Query-resident batch intersection: the (≤16-key) query side stays in
/// four q registers with 0xFFFFFFFF sentinel padding (never a real key);
/// each target key is broadcast and compared against all four.
void IntersectManyNeon(const uint32_t* q, size_t nq,
                       const uint32_t* const* tkeys, const uint32_t* tlens,
                       size_t n, uint32_t* counts) {
  if (nq > 16) {
    for (size_t i = 0; i < n; ++i) {
      if (tkeys[i] == nullptr) continue;
      counts[i] = static_cast<uint32_t>(IntersectNeon(q, nq, tkeys[i],
                                                      tlens[i]));
    }
    return;
  }
  uint32_t padded[16];
  for (size_t i = 0; i < 16; ++i) padded[i] = i < nq ? q[i] : 0xFFFFFFFFu;
  const uint32x4_t q0 = vld1q_u32(padded);
  const uint32x4_t q1 = vld1q_u32(padded + 4);
  const uint32x4_t q2 = vld1q_u32(padded + 8);
  const uint32x4_t q3 = vld1q_u32(padded + 12);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t* b = tkeys[i];
    if (b == nullptr) continue;
    const size_t nb = tlens[i];
    uint32x4_t acc0 = vdupq_n_u32(0);
    uint32x4_t acc1 = vdupq_n_u32(0);
    for (size_t j = 0; j < nb; ++j) {
      const uint32x4_t vb = vdupq_n_u32(b[j]);
      acc0 = vsubq_u32(acc0, vceqq_u32(q0, vb));
      acc0 = vsubq_u32(acc0, vceqq_u32(q1, vb));
      acc1 = vsubq_u32(acc1, vceqq_u32(q2, vb));
      acc1 = vsubq_u32(acc1, vceqq_u32(q3, vb));
    }
    counts[i] = vaddvq_u32(vaddq_u32(acc0, acc1));
  }
}

constexpr Ops kNeonOps = {
    &BoundFilterScalar,
    &IntersectNeon,
    &IntersectManyNeon,
    &DiceRefineScalar,  // double math stays scalar: aarch64 FMA contraction
    &MyersBatchNeon,
    /*lanes=*/2,
};

}  // namespace

const Ops* NeonOpsOrNull() { return &kNeonOps; }

}  // namespace smb::sim::simd

#else  // !__aarch64__

namespace smb::sim::simd {
const Ops* NeonOpsOrNull() { return nullptr; }
}  // namespace smb::sim::simd

#endif
