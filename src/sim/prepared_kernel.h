#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/name_similarity.h"

/// \file prepared_kernel.h
/// \brief Allocation-free, threshold-aware similarity kernel over prepared
/// names.
///
/// The composite measure of name_similarity.h sits in the innermost loop of
/// every matcher, index fill and Δ-bound computation — millions of pairwise
/// scores per workload. The original per-pair implementation heap-allocates
/// on every call: a sorted `std::vector<std::string>` of padded trigrams
/// (one string per gram), two Levenshtein DP rows, two Jaro match-flag
/// vectors and a token-pair buffer. This kernel removes all of it:
///
///  * trigrams are interned to `uint32_t` ids by `GramTable` — a *pure*
///    packing of the three gram bytes, so every thread and every table
///    agrees on ids without sharing state — and stored sorted in
///    `PreparedName::gram_ids`; the exact multiset Dice is then one
///    allocation-free merge of two int arrays;
///  * identifier tokens are interned by a `TokenTable` (the repository-wide
///    instance lives in `index::PreparedRepository`); token equality becomes
///    an integer compare, synonym lookups become precomputed group ids;
///  * Levenshtein runs Myers' bit-parallel algorithm for patterns ≤ 64
///    chars (per-character `PEQ` bitmasks precomputed in the prepared form,
///    scattered into a reusable 256-entry table) and a banded two-row DP
///    with an early-exit cutoff `k` for longer names;
///  * every scratch buffer is thread-local and grows to a high-water mark —
///    zero heap allocations per pair in steady state
///    (`KernelScratchGrowthCount` is the test hook that proves it).
///
/// Scores are **bit-identical** to `NameSimilarity`: each component is the
/// same mathematical value produced by the same floating-point expression,
/// and the weighted combination accumulates in the same order.
///
/// Threshold-aware scoring (`ScoreWithCutoff`, `BlockScorer`) evaluates
/// components cheapest-first — whole-name equality, whole-name synonym,
/// length and gram-count admissible upper bounds, exact trigram Dice,
/// Levenshtein, Jaro-Winkler, token similarity — and short-circuits as soon
/// as the remaining weighted mass provably cannot reach `min_score`. A
/// pruned pair reports an admissible *upper bound* on its exact score
/// (strictly below `min_score`), never a wrong exact value, so top-C
/// selections that feed their current C-th score back as the cutoff keep
/// their results bit-identical to exhaustive scoring.

namespace smb::sim {

/// \brief Interner for character trigrams.
///
/// Three gram bytes pack injectively (and order-preservingly) into a
/// `uint32_t`, so the "table" is a pure function: no state, no locking, and
/// ids are consistent across threads, repositories and queries for free.
/// Sorting packed ids orders grams exactly like sorting the gram strings.
struct GramTable {
  static constexpr uint32_t Pack(unsigned char c0, unsigned char c1,
                                 unsigned char c2) {
    return (static_cast<uint32_t>(c0) << 16) |
           (static_cast<uint32_t>(c1) << 8) | static_cast<uint32_t>(c2);
  }

  /// Packs a 3-character gram (as produced by `ExtractNgrams(s, 3)`).
  static uint32_t Pack(std::string_view gram);

  /// The gram string back from its id (for diagnostics and tests).
  static std::string Unpack(uint32_t id);

  /// \brief Appends the packed padded trigrams of `folded` — the exact
  /// multiset `ExtractNgrams(folded, 3)` produces — and sorts the ids.
  /// Empty input yields no grams. Works on any push_back/sortable id
  /// container (`std::vector`, the inline arrays of `PreparedName`).
  template <typename Container>
  static void AppendPaddedGramIds(std::string_view folded, Container* out) {
    if (folded.empty()) return;
    const size_t n = folded.size();
    // Conceptually "##" + folded + "##" without materializing the padding.
    auto at = [&](size_t i) -> unsigned char {
      return (i < 2 || i >= n + 2)
                 ? static_cast<unsigned char>('#')
                 : static_cast<unsigned char>(folded[i - 2]);
    };
    const size_t grams = n + 2;
    out->reserve(out->size() + grams);
    for (size_t i = 0; i < grams; ++i) {
      out->push_back(Pack(at(i), at(i + 1), at(i + 2)));
    }
    // Packing is order-preserving for byte strings, so sorted ids are the
    // sorted grams of ExtractNgrams — same multiset, integer
    // representation.
    std::sort(out->begin(), out->end());
  }

  /// Convenience wrapper returning a fresh sorted id vector.
  static std::vector<uint32_t> PaddedGramIds(std::string_view folded);
};

/// \brief Fills `name->gram_keys` from the sorted `name->gram_ids` (see the
/// field's docs for the augmented-key encoding). Called by `PrepareName`
/// and the snapshot loader; leaves the keys empty when a gram repeats ≥ 256
/// times so the kernel falls back to the scalar multiset merge.
void CompileAugmentedGramKeys(PreparedName* name);

/// \brief Id of a token a lookup-only `TokenTable` query did not know.
/// Unknown ids never compare equal; the kernel falls back to a string
/// compare for them, so lookup-only preparation stays exact.
inline constexpr uint32_t kUnknownTokenId = 0xFFFFFFFFu;

/// \brief Interner mapping identifier tokens to dense `uint32_t` ids.
///
/// One instance is shared by everything that must agree on ids — the
/// repository index stores one (`index::PreparedRepository::token_table`)
/// and interns every element token at build time; queries then prepare
/// against it lookup-only (const, thread-safe), mapping unseen tokens to
/// `kUnknownTokenId`.
class TokenTable {
 public:
  /// Returns the id of `token`, inserting it if new. Ids are dense and
  /// assigned in first-seen order.
  uint32_t Intern(std::string_view token);

  /// Pre-sizes the hash table for `n` tokens (bulk loads).
  void Reserve(size_t n) { ids_.reserve(n); }

  /// Returns the id of `token`, or `kUnknownTokenId` if it was never
  /// interned. Never mutates — safe for concurrent readers.
  uint32_t Lookup(std::string_view token) const;

  /// Number of distinct interned tokens.
  size_t size() const { return ids_.size(); }

  /// \brief The interned tokens in id order (`result[i]` has id `i`).
  /// Interning `result[0..n)` into a fresh table reproduces this table's
  /// ids exactly — the snapshot round-trip relies on that.
  std::vector<std::string_view> OrderedTokens() const;

 private:
  /// Transparent hashing: lookups probe with the string_view directly, no
  /// per-call std::string temporary.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, uint32_t, Hash, std::equal_to<>> ids_;
};

/// \brief Result of a threshold-aware score.
///
/// When `exact`, `score` is the full-precision composite similarity —
/// bit-identical to `NameSimilarity`. Otherwise the pair was pruned:
/// `score` is an admissible upper bound on the exact similarity and is
/// strictly below the `min_score` the caller passed.
struct CutoffScore {
  double score = 0.0;
  bool exact = true;
};

/// \brief Exact Levenshtein distance via the kernel's fast paths (Myers
/// bit-parallel when either side fits 64 chars, banded DP otherwise).
/// Always equals `LevenshteinDistance`.
size_t KernelLevenshteinDistance(std::string_view a, std::string_view b);

/// \brief Early-exit Levenshtein: returns the exact distance when it is
/// ≤ `k`, otherwise some value > `k` (a certificate that the distance
/// exceeds the cutoff; the banded DP never visits cells it can prove
/// irrelevant).
size_t KernelLevenshteinBounded(std::string_view a, std::string_view b,
                                size_t k);

/// \brief Scores one prepared query against many prepared targets with the
/// query-side state (weights, PEQ bitmask table) loaded once.
///
/// The scorer borrows thread-local scratch; `query`/`options` must outlive
/// it. The first live scorer on a thread keeps its query pattern resident
/// in the scratch PEQ table; further (nested) scorers on the same thread
/// stay correct but fall back to transient per-pair pattern loads.
class BlockScorer {
 public:
  BlockScorer(const PreparedName& query, const NameSimilarityOptions& options);
  ~BlockScorer();

  BlockScorer(const BlockScorer&) = delete;
  BlockScorer& operator=(const BlockScorer&) = delete;

  /// Full-precision composite similarity — bit-identical to
  /// `NameSimilarity(query, target, options)`.
  double Score(const PreparedName& target);

  /// Threshold-aware score: exact when the result can reach `min_score`,
  /// otherwise a pruned admissible upper bound (see `CutoffScore`).
  CutoffScore ScoreWithCutoff(const PreparedName& target, double min_score);

  /// Batched `ScoreWithCutoff` over a block of targets through the
  /// structure-of-arrays pipeline: the cheap admissible filters run
  /// lane-parallel via the active SIMD tier (simd_dispatch.h) and Myers
  /// distances are batched across pairs. `out[i]` is bit-identical —
  /// score and exact flag — to `ScoreWithCutoff(*targets[i], min_score)`
  /// on every tier. `out` must have `targets.size()` capacity.
  void ScoreMany(std::span<const PreparedName* const> targets,
                 double min_score, CutoffScore* out);

 private:
  /// The per-pair tail shared by `ScoreWithCutoff` and the batched
  /// pipeline: exact Levenshtein (skipped when the batch already computed
  /// `dist`), Jaro-Winkler, token similarity, final combine.
  CutoffScore FinishFromDice(const PreparedName& target, double min_score,
                             double dice, bool have_dist, size_t dist);

  const PreparedName* query_;
  const NameSimilarityOptions* options_;
  // Clamped weights, mirroring the reference scorer.
  double wl_ = 0.0, wj_ = 0.0, wt_ = 0.0, wk_ = 0.0, wsum_ = 0.0;
  /// This scorer claimed the thread's resident-pattern slot. A nested
  /// scorer runs without it (transient per-pair pattern loads) — slower,
  /// never incorrect.
  bool owns_block_slot_ = false;
  bool query_peq_loaded_ = false;
  bool groups_valid_ = false;  // prepared synonym groups match options_
};

/// \brief One-shot threshold-aware score of a prepared pair.
CutoffScore ScoreWithCutoff(const PreparedName& a, const PreparedName& b,
                            const NameSimilarityOptions& options,
                            double min_score);

/// \brief Batched scoring of `query` against `targets` (the dense-fill
/// entry point): loads query-side state once and runs the SoA/SIMD pipeline
/// (`BlockScorer::ScoreMany`), writing one `CutoffScore` per target into
/// `out` (which must have `targets.size()` capacity). With `min_score <= 0`
/// every result is exact.
void ScoreBlock(const PreparedName& query,
                std::span<const PreparedName* const> targets,
                const NameSimilarityOptions& options, double min_score,
                CutoffScore* out);

/// \brief Test hook: number of times this thread's kernel scratch buffers
/// grew (each growth is one heap allocation). Steady-state scoring must not
/// move this counter — that is the "zero allocations per pair" guarantee.
uint64_t KernelScratchGrowthCount();

}  // namespace smb::sim
