#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file ngram.h
/// \brief Character n-gram similarity (Dice and Jaccard coefficients).

namespace smb::sim {

/// \brief Extracts character n-grams with boundary padding.
///
/// The string is padded with `n - 1` '#' characters on both sides, so
/// "ab" with n=3 yields {"##a", "#ab", "ab#", "b##"}. Grams are returned
/// sorted (with duplicates kept), which makes multiset intersection linear.
/// An empty string yields no grams (padding never runs on empty input).
std::vector<std::string> ExtractNgrams(std::string_view s, size_t n);

/// \brief Dice coefficient on n-gram multisets: `2|A∩B| / (|A|+|B|)`.
double NgramDiceSimilarity(std::string_view a, std::string_view b,
                           size_t n = 3);

/// \brief Jaccard coefficient on n-gram sets: `|A∩B| / |A∪B|`.
double NgramJaccardSimilarity(std::string_view a, std::string_view b,
                              size_t n = 3);

}  // namespace smb::sim
