#include "sim/token_similarity.h"

#include <algorithm>

#include "common/strings.h"
#include "sim/jaro_winkler.h"

/// \file token_similarity.cc
/// \brief Token-set similarity with greedy best-pair alignment.

namespace smb::sim {

namespace {

double TokenPairScore(const std::string& a, const std::string& b,
                      const TokenSimilarityOptions& options) {
  if (a == b) return 1.0;
  if (options.synonyms != nullptr && options.synonyms->AreSynonyms(a, b)) {
    return options.synonym_score;
  }
  double jw = JaroWinklerSimilarity(a, b);
  return jw >= options.min_token_score ? jw : 0.0;
}

}  // namespace

double TokenListSimilarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           const TokenSimilarityOptions& options) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;

  // Greedy best-first pairing: score all pairs, take them best-first while
  // both sides are unused. Token lists are short (identifier words), so the
  // quadratic pass is fine.
  struct Pair {
    double score;
    size_t i, j;
  };
  std::vector<Pair> pairs;
  pairs.reserve(a.size() * b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      double s = TokenPairScore(a[i], b[j], options);
      if (s > 0.0) pairs.push_back({s, i, j});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.i != y.i) return x.i < y.i;
    return x.j < y.j;
  });

  std::vector<bool> used_a(a.size(), false);
  std::vector<bool> used_b(b.size(), false);
  double total = 0.0;
  size_t matched = 0;
  for (const Pair& p : pairs) {
    if (used_a[p.i] || used_b[p.j]) continue;
    used_a[p.i] = true;
    used_b[p.j] = true;
    total += p.score;
    ++matched;
  }
  // Soft Jaccard: unmatched tokens on either side dilute the score.
  double denom = static_cast<double>(a.size() + b.size() - matched);
  return denom > 0.0 ? total / denom : 1.0;
}

double TokenNameSimilarity(std::string_view a, std::string_view b,
                           const TokenSimilarityOptions& options) {
  return TokenListSimilarity(SplitIdentifier(a), SplitIdentifier(b), options);
}

}  // namespace smb::sim
