#include "sim/edit_distance.h"

#include <algorithm>
#include <vector>

/// \file edit_distance.cc
/// \brief Banded Levenshtein distance with early cutoff.

namespace smb::sim {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return n;
  // Two-row rolling DP over the shorter dimension.
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t i = 0; i <= m; ++i) prev[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= m; ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return n;
  if (n == 0) return m;
  // Three-row rolling DP (needs i-2 for transpositions).
  std::vector<size_t> two(n + 1);
  std::vector<size_t> prev(n + 1);
  std::vector<size_t> cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = j;
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= n; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two[j - 2] + 1);
      }
    }
    std::swap(two, prev);
    std::swap(prev, cur);
  }
  return prev[n];
}

namespace {

double NormalizedSimilarity(size_t dist, size_t la, size_t lb) {
  size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

}  // namespace

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(LevenshteinDistance(a, b), a.size(), b.size());
}

double DamerauLevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(DamerauLevenshteinDistance(a, b), a.size(),
                              b.size());
}

}  // namespace smb::sim
