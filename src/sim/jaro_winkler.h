#pragma once

#include <string_view>

/// \file jaro_winkler.h
/// \brief Jaro and Jaro-Winkler string similarity.

namespace smb::sim {

/// \brief Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro-Winkler similarity: Jaro boosted by a shared prefix.
///
/// \param prefix_scale Winkler scaling factor (standard 0.1, capped at 0.25
///        so the result stays <= 1 with the 4-character prefix cap).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace smb::sim
