#include "sim/simd_dispatch.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

/// \file simd_dispatch.cc
/// \brief Tier detection + the scalar reference kernels (see
/// simd_dispatch.h for the dispatch contract).

// Sanitizer builds pin the scalar tier: the sanitized suite must exercise
// the portable code, and instrumented intrinsics add noise without value.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SMB_SIMD_FORCE_SCALAR 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SMB_SIMD_FORCE_SCALAR 1
#endif
#endif
#ifndef SMB_SIMD_FORCE_SCALAR
#define SMB_SIMD_FORCE_SCALAR 0
#endif

namespace smb::sim {

namespace simd {

void BoundFilterScalar(const double* len, const double* grams, size_t n,
                       double la, double ga, double wl, double wj, double wt,
                       double wk, double wsum, double* u) {
  for (size_t i = 0; i < n; ++i) {
    const double lb = len[i];
    const double longest = std::max(la, lb);
    const double gap = la > lb ? la - lb : lb - la;
    const double lev_ub = 1.0 - gap / longest;
    const double gb = grams[i];
    const double dice_ub = 2.0 * std::min(ga, gb) / (ga + gb);
    u[i] = (wl * lev_ub + wj + wt * dice_ub + wk) / wsum;
  }
}

size_t IntersectScalar(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

void IntersectManyScalar(const uint32_t* q, size_t nq,
                         const uint32_t* const* tkeys, const uint32_t* tlens,
                         size_t n, uint32_t* counts) {
  for (size_t i = 0; i < n; ++i) {
    if (tkeys[i] == nullptr) continue;
    counts[i] =
        static_cast<uint32_t>(IntersectScalar(q, nq, tkeys[i], tlens[i]));
  }
}

void DiceRefineScalar(const double* len, const double* grams,
                      const uint32_t* counts, size_t n, double la, double ca,
                      double wl, double wj, double wt, double wk, double wsum,
                      double* dice, double* u) {
  for (size_t i = 0; i < n; ++i) {
    const double d = 2.0 * static_cast<double>(counts[i]) / (ca + grams[i]);
    dice[i] = d;
    const double lb = len[i];
    const double longest = std::max(la, lb);
    const double gap = la > lb ? la - lb : lb - la;
    const double lev_ub = 1.0 - gap / longest;
    u[i] = (wl * lev_ub + wj + wt * d + wk) / wsum;
  }
}

namespace {

/// Single-lane Myers reading the text in place — the batch-API twin of
/// prepared_kernel.cc's MyersDistance, byte-for-byte the same recurrence.
void MyersBatchScalar(const uint64_t* peq, size_t m,
                      const uint8_t* const* texts, const uint64_t* lens,
                      size_t maxlen, uint64_t* out) {
  (void)maxlen;
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  uint64_t score = m;
  const uint64_t last = uint64_t{1} << (m - 1);
  const uint8_t* bytes = texts[0];
  const uint64_t n = lens[0];
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t eq = peq[bytes[i]];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  out[0] = score;
}

constexpr Ops kScalarOps = {
    &BoundFilterScalar,
    &IntersectScalar,
    &IntersectManyScalar,
    &DiceRefineScalar,
    &MyersBatchScalar,
    /*lanes=*/1,
};

}  // namespace

const Ops& ScalarOps() { return kScalarOps; }

}  // namespace simd

namespace {

bool CpuSupportsTier(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdTier::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// Clamps a requested tier to something this process can actually run.
SimdTier ClampTier(SimdTier tier) {
  return SimdTierAvailable(tier) ? tier : SimdTier::kScalar;
}

SimdTier DetectTier() {
  const char* env = std::getenv("SMB_SIMD");
  if (env != nullptr && *env != '\0') {
    const std::string_view v(env);
    if (v == "scalar") return SimdTier::kScalar;
    if (v == "avx2") return ClampTier(SimdTier::kAvx2);
    if (v == "neon") return ClampTier(SimdTier::kNeon);
    if (v != "auto") {
      std::fprintf(stderr,
                   "matchbounds: unknown SMB_SIMD=%s "
                   "(want scalar|avx2|neon|auto); auto-detecting\n",
                   env);
    }
  }
  if (SimdTierAvailable(SimdTier::kAvx2)) return SimdTier::kAvx2;
  if (SimdTierAvailable(SimdTier::kNeon)) return SimdTier::kNeon;
  return SimdTier::kScalar;
}

/// -1 = no override; otherwise the (already clamped) forced tier.
std::atomic<int> g_tier_override{-1};

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SimdTierAvailable(SimdTier tier) {
  if (tier == SimdTier::kScalar) return true;
  if (SMB_SIMD_FORCE_SCALAR) return false;
  const simd::Ops* ops = tier == SimdTier::kAvx2 ? simd::Avx2OpsOrNull()
                                                 : simd::NeonOpsOrNull();
  return ops != nullptr && CpuSupportsTier(tier);
}

SimdTier ActiveSimdTier() {
  const int forced = g_tier_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdTier>(forced);
  static const SimdTier detected = DetectTier();
  return detected;
}

namespace simd {

const Ops& OpsForTier(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2:
      if (const Ops* ops = Avx2OpsOrNull()) return *ops;
      break;
    case SimdTier::kNeon:
      if (const Ops* ops = NeonOpsOrNull()) return *ops;
      break;
    case SimdTier::kScalar:
      break;
  }
  return ScalarOps();
}

}  // namespace simd

namespace internal {

void OverrideSimdTierForTest(SimdTier tier) {
  g_tier_override.store(static_cast<int>(ClampTier(tier)),
                        std::memory_order_relaxed);
}

void ClearSimdTierOverrideForTest() {
  g_tier_override.store(-1, std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace smb::sim
