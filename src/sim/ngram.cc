#include "sim/ngram.h"

#include <algorithm>

/// \file ngram.cc
/// \brief Character n-gram profile construction and cosine overlap.

namespace smb::sim {

std::vector<std::string> ExtractNgrams(std::string_view s, size_t n) {
  std::vector<std::string> grams;
  if (n == 0) return grams;
  // An empty string has no n-grams. Without this guard the padding alone
  // produced n-1 phantom all-'#' grams (e.g. {"###", "###"} for n = 3),
  // which polluted trigram postings for blank element names.
  if (s.empty()) return grams;
  std::string padded;
  padded.reserve(s.size() + 2 * (n - 1));
  padded.append(n - 1, '#');
  padded.append(s);
  padded.append(n - 1, '#');
  if (padded.size() < n) return grams;
  grams.reserve(padded.size() - n + 1);
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, n));
  }
  std::sort(grams.begin(), grams.end());
  return grams;
}

namespace {

/// Multiset intersection size of two sorted vectors.
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t UniqueCount(const std::vector<std::string>& sorted) {
  size_t count = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i] != sorted[i - 1]) ++count;
  }
  return count;
}

/// Set (deduplicated) intersection size of two sorted vectors.
size_t SortedSetIntersectionSize(const std::vector<std::string>& a,
                                 const std::vector<std::string>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      const std::string& g = a[i];
      while (i < a.size() && a[i] == g) ++i;
      while (j < b.size() && b[j] == g) ++j;
    }
  }
  return count;
}

}  // namespace

double NgramDiceSimilarity(std::string_view a, std::string_view b, size_t n) {
  if (a.empty() && b.empty()) return 1.0;
  auto ga = ExtractNgrams(a, n);
  auto gb = ExtractNgrams(b, n);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = SortedIntersectionSize(ga, gb);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(ga.size() + gb.size());
}

double NgramJaccardSimilarity(std::string_view a, std::string_view b,
                              size_t n) {
  if (a.empty() && b.empty()) return 1.0;
  auto ga = ExtractNgrams(a, n);
  auto gb = ExtractNgrams(b, n);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = SortedSetIntersectionSize(ga, gb);
  size_t uni = UniqueCount(ga) + UniqueCount(gb) - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace smb::sim
