#include "schema/repository.h"

/// \file repository.cc
/// \brief Repository loading: directory scan, per-file parse dispatch, id
/// assignment.

namespace smb::schema {

Result<int32_t> SchemaRepository::Add(Schema schema) {
  SMB_RETURN_IF_ERROR(schema.Validate());
  if (schema.empty()) {
    return Status::InvalidArgument("cannot add an empty schema");
  }
  total_elements_ += schema.size();
  schemas_.push_back(std::move(schema));
  return static_cast<int32_t>(schemas_.size() - 1);
}

std::vector<ElementRef> SchemaRepository::AllElements() const {
  std::vector<ElementRef> out;
  out.reserve(total_elements_);
  for (size_t s = 0; s < schemas_.size(); ++s) {
    for (NodeId id : schemas_[s].PreOrder()) {
      out.push_back(ElementRef{static_cast<int32_t>(s), id});
    }
  }
  return out;
}

int32_t SchemaRepository::FindByName(const std::string& name) const {
  for (size_t s = 0; s < schemas_.size(); ++s) {
    if (schemas_[s].name() == name) return static_cast<int32_t>(s);
  }
  return -1;
}

}  // namespace smb::schema
