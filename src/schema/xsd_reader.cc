#include "schema/xsd_reader.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <vector>

#include "common/strings.h"
#include "xml/xml_parser.h"

/// \file xsd_reader.cc
/// \brief XSD subset reader: XML events to schema trees, refs and nesting.

namespace smb::schema {

namespace {

using xml::XmlNode;

/// Strips an `xs:`-style prefix from a type or ref name.
std::string StripPrefix(std::string_view name) {
  size_t colon = name.find(':');
  if (colon != std::string_view::npos) {
    return std::string(name.substr(colon + 1));
  }
  return std::string(name);
}

class XsdConverter {
 public:
  XsdConverter(const XmlNode& schema_element, const XsdReadOptions& options)
      : options_(options) {
    // Index top-level named complexTypes and elements for ref/type lookup.
    for (const XmlNode* child : schema_element.ChildElements()) {
      std::string_view local = child->LocalName();
      if (local == "complexType") {
        auto name = child->GetAttribute("name");
        if (name.has_value()) named_types_[std::string(*name)] = child;
      } else if (local == "element") {
        auto name = child->GetAttribute("name");
        if (name.has_value()) top_elements_[std::string(*name)] = child;
      }
    }
  }

  Status Convert(const XmlNode& schema_element, Schema* out) {
    const XmlNode* root_element = nullptr;
    for (const XmlNode* child : schema_element.ChildElements()) {
      if (child->LocalName() == "element") {
        if (root_element != nullptr) {
          return Status::InvalidArgument(
              "XSD has multiple top-level elements; expected exactly one "
              "schema root");
        }
        root_element = child;
      }
    }
    if (root_element == nullptr) {
      return Status::InvalidArgument("XSD has no top-level element");
    }
    auto name = root_element->GetAttribute("name");
    if (!name.has_value() || name->empty()) {
      return Status::ParseError("top-level element lacks a name attribute");
    }
    SMB_ASSIGN_OR_RETURN(NodeId root,
                         out->AddRoot(std::string(*name),
                                      ElementTypeName(*root_element)));
    return ExpandElementContent(*root_element, root, out, /*depth=*/0);
  }

 private:
  /// The declared simple type of an element, "" when complex/untyped.
  std::string ElementTypeName(const XmlNode& element) const {
    auto type = element.GetAttribute("type");
    if (!type.has_value()) return "";
    std::string local = StripPrefix(*type);
    // A reference to a named complexType is structure, not a simple type.
    if (named_types_.count(local) > 0) return "";
    return local;
  }

  /// Expands children (complexType content and attributes) of `element`
  /// under `parent_id`.
  Status ExpandElementContent(const XmlNode& element, NodeId parent_id,
                              Schema* out, int depth) {
    if (depth > options_.max_depth) return Status::OK();  // recursion cut
    // Inline complexType.
    const XmlNode* complex = nullptr;
    for (const XmlNode* child : element.ChildElements()) {
      if (child->LocalName() == "complexType") {
        complex = child;
        break;
      }
    }
    // type= reference to a named complexType.
    if (complex == nullptr) {
      auto type = element.GetAttribute("type");
      if (type.has_value()) {
        auto it = named_types_.find(StripPrefix(*type));
        if (it != named_types_.end()) complex = it->second;
      }
    }
    if (complex == nullptr) return Status::OK();
    return ExpandComplexType(*complex, parent_id, out, depth);
  }

  Status ExpandComplexType(const XmlNode& complex, NodeId parent_id,
                           Schema* out, int depth) {
    for (const XmlNode* child : complex.ChildElements()) {
      std::string_view local = child->LocalName();
      if (local == "sequence" || local == "all" || local == "choice") {
        SMB_RETURN_IF_ERROR(ExpandGroup(*child, parent_id, out, depth));
      } else if (local == "attribute" && options_.include_attributes) {
        SMB_RETURN_IF_ERROR(AddAttribute(*child, parent_id, out));
      } else if (local == "complexContent" || local == "simpleContent") {
        // extension/restriction: expand the nested group if present.
        for (const XmlNode* inner : child->ChildElements()) {
          if (inner->LocalName() == "extension" ||
              inner->LocalName() == "restriction") {
            SMB_RETURN_IF_ERROR(ExpandComplexType(*inner, parent_id, out,
                                                  depth));
          }
        }
      }
    }
    return Status::OK();
  }

  Status ExpandGroup(const XmlNode& group, NodeId parent_id, Schema* out,
                     int depth) {
    for (const XmlNode* child : group.ChildElements()) {
      std::string_view local = child->LocalName();
      if (local == "element") {
        SMB_RETURN_IF_ERROR(AddElement(*child, parent_id, out, depth));
      } else if (local == "sequence" || local == "all" || local == "choice") {
        // Nested groups flatten into the same parent.
        SMB_RETURN_IF_ERROR(ExpandGroup(*child, parent_id, out, depth));
      }
      // annotations, any, etc. are skipped.
    }
    return Status::OK();
  }

  Status AddElement(const XmlNode& element, NodeId parent_id, Schema* out,
                    int depth) {
    const XmlNode* decl = &element;
    auto name = element.GetAttribute("name");
    if (!name.has_value()) {
      auto ref = element.GetAttribute("ref");
      if (!ref.has_value()) {
        return Status::ParseError("element lacks both name and ref");
      }
      std::string local = StripPrefix(*ref);
      auto it = top_elements_.find(local);
      if (it == top_elements_.end()) {
        return Status::NotFound("element ref '" + local +
                                "' has no top-level declaration");
      }
      decl = it->second;
      name = decl->GetAttribute("name");
      if (!name.has_value()) {
        return Status::ParseError("referenced element lacks a name");
      }
    }
    if (depth + 1 > options_.max_depth) return Status::OK();
    SMB_ASSIGN_OR_RETURN(NodeId id,
                         out->AddChild(parent_id, std::string(*name),
                                       ElementTypeName(*decl)));
    return ExpandElementContent(*decl, id, out, depth + 1);
  }

  Status AddAttribute(const XmlNode& attribute, NodeId parent_id,
                      Schema* out) {
    auto name = attribute.GetAttribute("name");
    if (!name.has_value()) {
      return Status::ParseError("attribute lacks a name");
    }
    std::string type = StripPrefix(attribute.GetAttributeOr("type", ""));
    return out->AddChild(parent_id, "@" + std::string(*name), type).status();
  }

  const XsdReadOptions& options_;
  std::map<std::string, const XmlNode*> named_types_;
  std::map<std::string, const XmlNode*> top_elements_;
};

}  // namespace

Result<Schema> ReadXsd(std::string_view xsd_text, std::string document_name,
                       const XsdReadOptions& options) {
  SMB_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::ParseXml(xsd_text));
  if (doc.root.LocalName() != "schema") {
    return Status::InvalidArgument("root element is <" + doc.root.name() +
                                   ">, expected an XSD <schema>");
  }
  Schema schema(std::move(document_name));
  XsdConverter converter(doc.root, options);
  SMB_RETURN_IF_ERROR(converter.Convert(doc.root, &schema));
  SMB_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

Result<Schema> ReadXsdFile(const std::string& path,
                           const XsdReadOptions& options) {
  SMB_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::ParseXmlFile(path));
  if (doc.root.LocalName() != "schema") {
    return Status::InvalidArgument("root element is <" + doc.root.name() +
                                   ">, expected an XSD <schema>");
  }
  Schema schema(path);
  XsdConverter converter(doc.root, options);
  SMB_RETURN_IF_ERROR(converter.Convert(doc.root, &schema));
  SMB_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

Result<SchemaRepository> LoadRepositoryDir(const std::string& dir,
                                           const XsdReadOptions& options) {
  namespace fs = std::filesystem;
  SchemaRepository repo;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".xsd") files.push_back(entry.path());
  }
  if (ec) {
    return Status::IOError("cannot list directory " + dir + ": " +
                           ec.message());
  }
  // Sorted load order + bare-filename schema names make the repository
  // fingerprint a pure function of the directory contents.
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    SMB_ASSIGN_OR_RETURN(Schema schema,
                         ReadXsdFile(file.string(), options));
    schema.set_name(file.filename().string());
    SMB_RETURN_IF_ERROR(repo.Add(std::move(schema)).status());
  }
  if (repo.schema_count() == 0) {
    return Status::NotFound("no .xsd files in " + dir);
  }
  return repo;
}

}  // namespace smb::schema
