#pragma once

#include <string>

#include "schema/schema.h"

/// \file xsd_writer.h
/// \brief Serializes a schema tree back to an XSD document.
///
/// Inverse of the reader for the supported subset: elements become nested
/// `xs:element`/`xs:complexType`/`xs:sequence` declarations, `@`-prefixed
/// leaves become `xs:attribute` declarations, and recorded simple types
/// become `type="xs:..."` attributes. `ReadXsd(WriteXsd(s))` is
/// structurally equal to `s` for every valid schema.

namespace smb::schema {

/// \brief XSD serialization options.
struct XsdWriteOptions {
  /// Namespace prefix used for XSD constructs.
  std::string prefix = "xs";
  /// Indentation width.
  int indent = 2;
};

/// Serializes `schema` (must be non-empty and valid) as an XSD document.
std::string WriteXsd(const Schema& schema, const XsdWriteOptions& options = {});

}  // namespace smb::schema
