#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "schema/schema.h"

/// \file text_format.h
/// \brief Compact indented text format for schema trees.
///
/// Handy for tests, examples and fixtures. Two spaces per nesting level;
/// an optional `:type` suffix declares a simple type; `#` starts a comment
/// line; an optional leading `schema <name>` line names the document:
///
/// \code
/// schema library
/// library
///   book
///     title :string
///     author
///       name :string
/// \endcode

namespace smb::schema {

/// Parses the text format. Fails on inconsistent indentation or multiple
/// roots.
Result<Schema> ParseSchemaText(std::string_view text);

/// Renders a schema in the text format; round-trips with ParseSchemaText.
std::string WriteSchemaText(const Schema& schema);

}  // namespace smb::schema
