#include "schema/xsd_writer.h"

#include "common/strings.h"
#include "xml/xml_node.h"
#include "xml/xml_writer.h"

/// \file xsd_writer.cc
/// \brief Schema-tree to XSD serialization (round-trips the reader subset).

namespace smb::schema {

namespace {

using xml::XmlNode;

bool IsAttribute(const SchemaNode& node) {
  return !node.name.empty() && node.name[0] == '@';
}

/// Builds the xs:element node for `id`, recursing into children.
XmlNode BuildElement(const Schema& schema, NodeId id,
                     const std::string& prefix) {
  const SchemaNode& node = schema.node(id);
  XmlNode element = XmlNode::Element(prefix + ":element");
  element.SetAttribute("name", node.name);

  // Partition children into sub-elements and attributes.
  std::vector<NodeId> elements;
  std::vector<NodeId> attributes;
  for (NodeId child : node.children) {
    if (IsAttribute(schema.node(child))) {
      attributes.push_back(child);
    } else {
      elements.push_back(child);
    }
  }

  if (elements.empty() && attributes.empty()) {
    if (!node.type.empty()) {
      element.SetAttribute("type", prefix + ":" + node.type);
    }
    return element;
  }

  // Complex content. A declared simple type on a complex element cannot be
  // represented in this subset; the structure wins (the matcher ignores
  // types on inner nodes anyway).
  XmlNode complex = XmlNode::Element(prefix + ":complexType");
  if (!elements.empty()) {
    XmlNode sequence = XmlNode::Element(prefix + ":sequence");
    for (NodeId child : elements) {
      sequence.AddChild(BuildElement(schema, child, prefix));
    }
    complex.AddChild(std::move(sequence));
  }
  for (NodeId child : attributes) {
    const SchemaNode& attr = schema.node(child);
    XmlNode attribute = XmlNode::Element(prefix + ":attribute");
    attribute.SetAttribute("name", attr.name.substr(1));
    if (!attr.type.empty()) {
      attribute.SetAttribute("type", prefix + ":" + attr.type);
    }
    complex.AddChild(std::move(attribute));
  }
  element.AddChild(std::move(complex));
  return element;
}

}  // namespace

std::string WriteXsd(const Schema& schema, const XsdWriteOptions& options) {
  xml::XmlDocument doc;
  doc.root = XmlNode::Element(options.prefix + ":schema");
  doc.root.SetAttribute("xmlns:" + options.prefix,
                        "http://www.w3.org/2001/XMLSchema");
  if (!schema.empty()) {
    doc.root.AddChild(BuildElement(schema, schema.root(), options.prefix));
  }
  xml::XmlWriteOptions write_options;
  write_options.indent = options.indent;
  return xml::WriteXml(doc, write_options);
}

}  // namespace smb::schema
