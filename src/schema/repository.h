#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/schema.h"

/// \file repository.h
/// \brief A collection of schemas that queries are matched against.
///
/// Models the paper's "large schema repository" (§1): the search space of a
/// matching problem is the set of mappings from a small personal schema into
/// the elements of these schemas.

namespace smb::schema {

/// \brief Addresses one element inside a repository:
/// (schema index, node within that schema).
struct ElementRef {
  int32_t schema_index = -1;
  NodeId node = kInvalidNode;

  bool operator==(const ElementRef& other) const {
    return schema_index == other.schema_index && node == other.node;
  }
  bool operator<(const ElementRef& other) const {
    if (schema_index != other.schema_index) {
      return schema_index < other.schema_index;
    }
    return node < other.node;
  }
};

/// \brief An immutable-after-build set of schemas.
class SchemaRepository {
 public:
  SchemaRepository() = default;

  /// \brief Adds a schema (validated first). Returns its index.
  Result<int32_t> Add(Schema schema);

  /// Number of schemas.
  size_t schema_count() const { return schemas_.size(); }

  /// Total number of elements across all schemas.
  size_t total_elements() const { return total_elements_; }

  /// True iff `index` addresses a schema.
  bool IsValidIndex(int32_t index) const {
    return index >= 0 && static_cast<size_t>(index) < schemas_.size();
  }

  /// Schema accessor; `index` must be valid.
  const Schema& schema(int32_t index) const {
    return schemas_[static_cast<size_t>(index)];
  }

  /// All schemas.
  const std::vector<Schema>& schemas() const { return schemas_; }

  /// Every element of every schema, in (schema, pre-order) order.
  std::vector<ElementRef> AllElements() const;

  /// The node behind a reference; the reference must be valid.
  const SchemaNode& Resolve(const ElementRef& ref) const {
    return schema(ref.schema_index).node(ref.node);
  }

  /// True iff `ref` addresses an element of this repository.
  bool IsValidRef(const ElementRef& ref) const {
    return IsValidIndex(ref.schema_index) &&
           schema(ref.schema_index).IsValid(ref.node);
  }

  /// Finds a schema by document name; -1 when absent.
  int32_t FindByName(const std::string& name) const;

 private:
  std::vector<Schema> schemas_;
  size_t total_elements_ = 0;
};

}  // namespace smb::schema
