#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>

#include "schema/repository.h"

/// \file stats.h
/// \brief Descriptive statistics of schemas and repositories.
///
/// Used by the bench preambles and the synthetic-collection sanity tests:
/// a generated repository should look like a plausible population of web
/// schemas (shallow trees, modest fanout, shared vocabulary), and these
/// numbers make that checkable.

namespace smb::schema {

/// \brief Aggregate shape statistics.
struct RepositoryStats {
  size_t schema_count = 0;
  size_t total_elements = 0;
  size_t min_elements = 0;     ///< smallest schema
  size_t max_elements = 0;     ///< largest schema
  double mean_elements = 0.0;  ///< average schema size
  int max_depth = 0;           ///< deepest element anywhere
  double mean_depth = 0.0;     ///< average element depth
  double mean_fanout = 0.0;    ///< average children per internal node
  size_t leaf_count = 0;
  size_t typed_leaf_count = 0;   ///< leaves with a declared simple type
  size_t distinct_names = 0;     ///< case-folded distinct element names
  /// Histogram of element depths (depth -> count).
  std::map<int, size_t> depth_histogram;
};

/// Computes statistics over every schema of the repository.
RepositoryStats ComputeStats(const SchemaRepository& repo);

/// Renders the statistics as a small report.
void PrintStats(const RepositoryStats& stats, std::ostream& os);

}  // namespace smb::schema
