#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file schema.h
/// \brief The schema tree model.
///
/// A schema is a rooted, ordered, labelled tree of *elements*. This is the
/// abstraction the matching layer consumes: it deliberately ignores XSD
/// details (facets, cardinalities, namespaces) that the paper's matching
/// problem does not use. Personal (query) schemas and repository schemas use
/// the same representation.

namespace smb::schema {

/// Index of a node within its schema; dense, stable, pre-order by creation.
using NodeId = int32_t;

/// Sentinel for "no node" (e.g., the parent of the root).
inline constexpr NodeId kInvalidNode = -1;

/// \brief One element of a schema tree.
struct SchemaNode {
  /// Element tag name, e.g. "author".
  std::string name;
  /// Optional simple-type name, e.g. "string"; empty when untyped.
  std::string type;
  /// Parent node, `kInvalidNode` for the root.
  NodeId parent = kInvalidNode;
  /// Children in document order.
  std::vector<NodeId> children;
  /// Root has depth 0.
  int depth = 0;
};

/// \brief A rooted labelled tree of elements, stored in a node arena.
///
/// Nodes are created through `AddRoot`/`AddChild` and addressed by `NodeId`.
/// Ids are never invalidated (nodes cannot be removed; build a new schema
/// instead — the synthetic generator works that way).
class Schema {
 public:
  /// Creates an empty schema with the given document name.
  explicit Schema(std::string name = "") : name_(std::move(name)) {}

  /// \brief Creates the root element. Fails if a root already exists.
  Result<NodeId> AddRoot(std::string element_name, std::string type = "");

  /// \brief Appends a child element under `parent`.
  ///
  /// Fails with `kInvalidArgument` when `parent` is out of range.
  Result<NodeId> AddChild(NodeId parent, std::string element_name,
                          std::string type = "");

  /// Document name (not an element label).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// True when no root has been added yet.
  bool empty() const { return nodes_.empty(); }

  /// Number of elements in the tree.
  size_t size() const { return nodes_.size(); }

  /// Root id; `kInvalidNode` when empty.
  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  /// True iff `id` addresses a node of this schema.
  bool IsValid(NodeId id) const {
    return id >= 0 && static_cast<size_t>(id) < nodes_.size();
  }

  /// Node accessor; `id` must be valid.
  const SchemaNode& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }

  /// Mutable name/type access (used by the perturbation generator).
  void RenameNode(NodeId id, std::string new_name);
  void SetNodeType(NodeId id, std::string new_type);

  /// All node ids in pre-order (root first).
  std::vector<NodeId> PreOrder() const;

  /// All leaf node ids in pre-order.
  std::vector<NodeId> Leaves() const;

  /// \brief Slash-joined name path from the root, e.g. "library/book/title".
  std::string PathOf(NodeId id) const;

  /// Number of edges between two nodes of this schema (tree distance).
  /// Returns -1 if either id is invalid.
  int TreeDistance(NodeId a, NodeId b) const;

  /// True iff `ancestor` lies on the root path of `descendant`
  /// (a node is its own ancestor).
  bool IsAncestor(NodeId ancestor, NodeId descendant) const;

  /// \brief Structural verification: parent/child links consistent, depths
  /// correct, exactly one root, no cycles. Used by tests and after
  /// deserialization.
  Status Validate() const;

  /// Deep structural equality (names, types, shape; document name ignored).
  bool StructurallyEquals(const Schema& other) const;

 private:
  std::string name_;
  std::vector<SchemaNode> nodes_;
};

/// \brief Rebuilds `schema` with node ids assigned in pre-order (document)
/// order — the id assignment any reader reconstructs from a serialized
/// form (XSD, text format). In-memory construction may interleave subtrees,
/// so ids must be canonicalized before mapping keys are persisted next to a
/// serialized repository.
///
/// `old_to_new`, when non-null, receives the id translation
/// (`(*old_to_new)[old_id] == new_id`).
Schema CanonicalizePreOrder(const Schema& schema,
                            std::vector<NodeId>* old_to_new = nullptr);

/// \brief Removes declared simple types from internal nodes.
///
/// XSD cannot express an element that has both child elements and a simple
/// type, so trees built incrementally (where a typed leaf later gains
/// children) must drop those types to remain serializable. The synthetic
/// generator applies this before returning a collection.
void ClearInternalTypes(Schema* schema);

}  // namespace smb::schema
