#include "schema/schema.h"

/// \file schema.cc
/// \brief Schema tree construction, traversal helpers and path rendering.

namespace smb::schema {

Result<NodeId> Schema::AddRoot(std::string element_name, std::string type) {
  if (!nodes_.empty()) {
    return Status::FailedPrecondition("schema already has a root");
  }
  if (element_name.empty()) {
    return Status::InvalidArgument("element name must not be empty");
  }
  SchemaNode node;
  node.name = std::move(element_name);
  node.type = std::move(type);
  node.parent = kInvalidNode;
  node.depth = 0;
  nodes_.push_back(std::move(node));
  return NodeId{0};
}

Result<NodeId> Schema::AddChild(NodeId parent, std::string element_name,
                                std::string type) {
  if (!IsValid(parent)) {
    return Status::InvalidArgument("invalid parent node id " +
                                   std::to_string(parent));
  }
  if (element_name.empty()) {
    return Status::InvalidArgument("element name must not be empty");
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  SchemaNode node;
  node.name = std::move(element_name);
  node.type = std::move(type);
  node.parent = parent;
  node.depth = nodes_[static_cast<size_t>(parent)].depth + 1;
  nodes_.push_back(std::move(node));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

void Schema::RenameNode(NodeId id, std::string new_name) {
  if (IsValid(id) && !new_name.empty()) {
    nodes_[static_cast<size_t>(id)].name = std::move(new_name);
  }
}

void Schema::SetNodeType(NodeId id, std::string new_type) {
  if (IsValid(id)) nodes_[static_cast<size_t>(id)].type = std::move(new_type);
}

std::vector<NodeId> Schema::PreOrder() const {
  std::vector<NodeId> order;
  if (nodes_.empty()) return order;
  order.reserve(nodes_.size());
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    const auto& kids = node(id).children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

std::vector<NodeId> Schema::Leaves() const {
  std::vector<NodeId> out;
  for (NodeId id : PreOrder()) {
    if (node(id).children.empty()) out.push_back(id);
  }
  return out;
}

std::string Schema::PathOf(NodeId id) const {
  if (!IsValid(id)) return "";
  std::vector<const std::string*> parts;
  for (NodeId cur = id; cur != kInvalidNode; cur = node(cur).parent) {
    parts.push_back(&node(cur).name);
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!path.empty()) path += '/';
    path += **it;
  }
  return path;
}

int Schema::TreeDistance(NodeId a, NodeId b) const {
  if (!IsValid(a) || !IsValid(b)) return -1;
  // Walk the deeper node up until depths match, then walk both up.
  int dist = 0;
  while (node(a).depth > node(b).depth) {
    a = node(a).parent;
    ++dist;
  }
  while (node(b).depth > node(a).depth) {
    b = node(b).parent;
    ++dist;
  }
  while (a != b) {
    a = node(a).parent;
    b = node(b).parent;
    dist += 2;
  }
  return dist;
}

bool Schema::IsAncestor(NodeId ancestor, NodeId descendant) const {
  if (!IsValid(ancestor) || !IsValid(descendant)) return false;
  NodeId cur = descendant;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    cur = node(cur).parent;
  }
  return false;
}

Status Schema::Validate() const {
  if (nodes_.empty()) return Status::OK();
  size_t roots = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const SchemaNode& n = nodes_[i];
    if (n.name.empty()) {
      return Status::Internal("node " + std::to_string(i) + " has empty name");
    }
    if (n.parent == kInvalidNode) {
      ++roots;
      if (n.depth != 0) {
        return Status::Internal("root node has nonzero depth");
      }
    } else {
      if (!IsValid(n.parent)) {
        return Status::Internal("node " + std::to_string(i) +
                                " has invalid parent");
      }
      const SchemaNode& p = nodes_[static_cast<size_t>(n.parent)];
      if (n.depth != p.depth + 1) {
        return Status::Internal("node " + std::to_string(i) +
                                " has inconsistent depth");
      }
      bool linked = false;
      for (NodeId c : p.children) {
        if (static_cast<size_t>(c) == i) {
          linked = true;
          break;
        }
      }
      if (!linked) {
        return Status::Internal("node " + std::to_string(i) +
                                " missing from parent's child list");
      }
    }
    for (NodeId c : n.children) {
      if (!IsValid(c) ||
          nodes_[static_cast<size_t>(c)].parent != static_cast<NodeId>(i)) {
        return Status::Internal("child link of node " + std::to_string(i) +
                                " is inconsistent");
      }
    }
  }
  if (roots != 1) {
    return Status::Internal("schema must have exactly one root, found " +
                            std::to_string(roots));
  }
  // Reachability: pre-order must visit every node exactly once (no cycles,
  // no orphans).
  if (PreOrder().size() != nodes_.size()) {
    return Status::Internal("schema contains unreachable nodes or cycles");
  }
  return Status::OK();
}

Schema CanonicalizePreOrder(const Schema& schema,
                            std::vector<NodeId>* old_to_new) {
  std::vector<NodeId> local_map;
  std::vector<NodeId>* map = old_to_new != nullptr ? old_to_new : &local_map;
  map->assign(schema.size(), kInvalidNode);
  Schema out(schema.name());
  for (NodeId old_id : schema.PreOrder()) {
    const SchemaNode& node = schema.node(old_id);
    NodeId new_id;
    if (node.parent == kInvalidNode) {
      new_id = out.AddRoot(node.name, node.type).value();
    } else {
      // The parent was visited earlier in pre-order, so its new id is known.
      NodeId new_parent = (*map)[static_cast<size_t>(node.parent)];
      new_id = out.AddChild(new_parent, node.name, node.type).value();
    }
    (*map)[static_cast<size_t>(old_id)] = new_id;
  }
  return out;
}

void ClearInternalTypes(Schema* schema) {
  if (schema == nullptr) return;
  for (NodeId id : schema->PreOrder()) {
    if (!schema->node(id).children.empty() &&
        !schema->node(id).type.empty()) {
      schema->SetNodeType(id, "");
    }
  }
}

bool Schema::StructurallyEquals(const Schema& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  auto a_order = PreOrder();
  auto b_order = other.PreOrder();
  if (a_order.size() != b_order.size()) return false;
  for (size_t i = 0; i < a_order.size(); ++i) {
    const SchemaNode& a = node(a_order[i]);
    const SchemaNode& b = other.node(b_order[i]);
    if (a.name != b.name || a.type != b.type ||
        a.children.size() != b.children.size() || a.depth != b.depth) {
      return false;
    }
  }
  return true;
}

}  // namespace smb::schema
