#include "schema/text_format.h"

#include <vector>

#include "common/strings.h"

/// \file text_format.cc
/// \brief Parser and writer for the indented text schema format.

namespace smb::schema {

Result<Schema> ParseSchemaText(std::string_view text) {
  Schema schema;
  // Stack of (indent, node) pairs for the current root path.
  std::vector<std::pair<int, NodeId>> stack;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    // Strip trailing CR for CRLF inputs.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    std::string_view content = Trim(line);
    if (content.empty() || content[0] == '#') continue;

    if (schema.empty() && StartsWith(content, "schema ")) {
      schema.set_name(std::string(Trim(content.substr(7))));
      continue;
    }

    int indent = 0;
    while (static_cast<size_t>(indent) < line.size() &&
           line[static_cast<size_t>(indent)] == ' ') {
      ++indent;
    }
    if (indent % 2 != 0) {
      return Status::ParseError(StrFormat(
          "line %zu: odd indentation (%d spaces); use 2 per level", line_no,
          indent));
    }

    // "name :type" or just "name".
    std::string name;
    std::string type;
    size_t colon = content.find(" :");
    if (colon != std::string_view::npos) {
      name = std::string(Trim(content.substr(0, colon)));
      type = std::string(Trim(content.substr(colon + 2)));
    } else {
      name = std::string(content);
    }
    if (name.find(' ') != std::string::npos) {
      return Status::ParseError(
          StrFormat("line %zu: element name contains a space", line_no));
    }

    while (!stack.empty() && stack.back().first >= indent) stack.pop_back();

    if (stack.empty()) {
      if (indent != 0) {
        return Status::ParseError(StrFormat(
            "line %zu: first element must not be indented", line_no));
      }
      if (!schema.empty()) {
        return Status::ParseError(StrFormat(
            "line %zu: multiple root elements ('%s')", line_no, name.c_str()));
      }
      SMB_ASSIGN_OR_RETURN(NodeId root, schema.AddRoot(name, type));
      stack.emplace_back(indent, root);
    } else {
      if (indent != stack.back().first + 2) {
        return Status::ParseError(StrFormat(
            "line %zu: indentation jumps from %d to %d", line_no,
            stack.back().first, indent));
      }
      SMB_ASSIGN_OR_RETURN(NodeId id,
                           schema.AddChild(stack.back().second, name, type));
      stack.emplace_back(indent, id);
    }
  }
  if (schema.empty()) {
    return Status::ParseError("schema text contains no elements");
  }
  SMB_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

std::string WriteSchemaText(const Schema& schema) {
  std::string out;
  if (!schema.name().empty()) {
    out += "schema " + schema.name() + "\n";
  }
  for (NodeId id : schema.PreOrder()) {
    const SchemaNode& node = schema.node(id);
    out.append(static_cast<size_t>(node.depth) * 2, ' ');
    out += node.name;
    if (!node.type.empty()) {
      out += " :" + node.type;
    }
    out += "\n";
  }
  return out;
}

}  // namespace smb::schema
