#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "schema/repository.h"
#include "schema/schema.h"

/// \file xsd_reader.h
/// \brief Converts an XSD-subset document into a `Schema` tree.
///
/// Supported XSD constructs (with any namespace prefix for the XSD
/// namespace):
///  * one top-level `element` (the schema root), further top-level elements
///    rejected,
///  * inline `complexType` with `sequence`, `all` or `choice` groups
///    (group kind is flattened away — the matcher only uses the tree),
///  * named top-level `complexType` definitions referenced via `type=`,
///  * `element` `ref=` to top-level elements,
///  * `attribute` declarations (mapped to leaf children prefixed with `@`),
///  * `simpleType`/built-in types recorded as the node's type
///    (the `xs:` prefix is stripped).
///
/// Recursive type references are expanded up to `max_depth` and then cut:
/// the matcher operates on finite trees, which is faithful to how the
/// paper's personal-schema problems use repository schemas.

namespace smb::schema {

/// \brief Options for XSD conversion.
struct XsdReadOptions {
  /// Depth cut-off for recursive type expansion.
  int max_depth = 16;
  /// Include `attribute` declarations as `@name` leaf nodes.
  bool include_attributes = true;
};

/// Parses XSD text into a schema named `document_name`.
Result<Schema> ReadXsd(std::string_view xsd_text, std::string document_name,
                       const XsdReadOptions& options = {});

/// Reads an `.xsd` file; the document name defaults to the file path.
Result<Schema> ReadXsdFile(const std::string& path,
                           const XsdReadOptions& options = {});

/// \brief Loads every `.xsd` file in `dir` (sorted by path, schema names
/// set to the bare file names) into a repository. `kNotFound` when the
/// directory holds no `.xsd` files. This is the canonical on-disk →
/// repository path shared by the CLI and the serving reload logic, so
/// both always agree on ordering and naming (and therefore on the
/// repository fingerprint).
Result<SchemaRepository> LoadRepositoryDir(
    const std::string& dir, const XsdReadOptions& options = {});

}  // namespace smb::schema
