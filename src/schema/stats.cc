#include "schema/stats.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

/// \file stats.cc
/// \brief Collection statistics (element/depth histograms) over a
/// repository.

namespace smb::schema {

RepositoryStats ComputeStats(const SchemaRepository& repo) {
  RepositoryStats stats;
  stats.schema_count = repo.schema_count();
  stats.total_elements = repo.total_elements();
  if (repo.schema_count() == 0) return stats;

  stats.min_elements = SIZE_MAX;
  size_t depth_sum = 0;
  size_t internal_nodes = 0;
  size_t child_links = 0;
  std::set<std::string> names;
  for (const Schema& schema : repo.schemas()) {
    stats.min_elements = std::min(stats.min_elements, schema.size());
    stats.max_elements = std::max(stats.max_elements, schema.size());
    for (NodeId id : schema.PreOrder()) {
      const SchemaNode& node = schema.node(id);
      stats.max_depth = std::max(stats.max_depth, node.depth);
      depth_sum += static_cast<size_t>(node.depth);
      ++stats.depth_histogram[node.depth];
      names.insert(ToLower(node.name));
      if (node.children.empty()) {
        ++stats.leaf_count;
        if (!node.type.empty()) ++stats.typed_leaf_count;
      } else {
        ++internal_nodes;
        child_links += node.children.size();
      }
    }
  }
  stats.mean_elements = static_cast<double>(stats.total_elements) /
                        static_cast<double>(stats.schema_count);
  stats.mean_depth = static_cast<double>(depth_sum) /
                     static_cast<double>(stats.total_elements);
  stats.mean_fanout = internal_nodes > 0
      ? static_cast<double>(child_links) / static_cast<double>(internal_nodes)
      : 0.0;
  stats.distinct_names = names.size();
  return stats;
}

void PrintStats(const RepositoryStats& stats, std::ostream& os) {
  os << "repository: " << stats.schema_count << " schemas, "
     << stats.total_elements << " elements (" << stats.min_elements << "-"
     << stats.max_elements << " per schema, mean "
     << StrFormat("%.1f", stats.mean_elements) << ")\n";
  os << "  depth: max " << stats.max_depth << ", mean "
     << StrFormat("%.2f", stats.mean_depth) << "; mean fanout "
     << StrFormat("%.2f", stats.mean_fanout) << "\n";
  os << "  leaves: " << stats.leaf_count << " (" << stats.typed_leaf_count
     << " typed); distinct names: " << stats.distinct_names << "\n";
  os << "  depth histogram:";
  for (const auto& [depth, count] : stats.depth_histogram) {
    os << " " << depth << ":" << count;
  }
  os << "\n";
}

}  // namespace smb::schema
