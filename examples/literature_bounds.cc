// The paper's headline use case (§1, §3.1): you read precision/recall
// figures for someone else's matching system S1 in a paper, you rebuild S1
// from its published objective function (same Δ => same ranking => the
// published effectiveness carries over), and you build your own faster,
// non-exhaustive S2 on top. The original test collection is NOT available,
// so S2's quality cannot be measured directly.
//
// This example computes guaranteed P/R bounds for S2 from nothing but
//   (a) the published (P, R) values of S1 at a series of thresholds, and
//   (b) the answer-size ratios Â = |A2|/|A1| you measure yourself on any
//       large unjudged collection.
//
// No |H|, no counts, no judgments — Equation (7) is |H|-independent and the
// whole computation runs on |H|-normalized masses.
//
// Build & run:  ./build/examples/literature_bounds

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/table.h"

using namespace smb;

int main() {
  // (a) Published measured P/R curve of the original system (imagine these
  //     came out of a paper's table; thresholds in the authors' Δ units).
  std::vector<double> thresholds = {0.05, 0.10, 0.15, 0.20, 0.25};
  std::vector<double> s1_precision = {0.92, 0.85, 0.70, 0.52, 0.38};
  std::vector<double> s1_recall = {0.15, 0.34, 0.52, 0.66, 0.78};

  // (b) Answer-size ratios measured by running both the rebuilt S1 and the
  //     improvement S2 on a large unjudged collection.
  std::vector<double> ratios = {0.98, 0.93, 0.81, 0.64, 0.45};

  auto input =
      bounds::InputFromPrAndRatios(thresholds, s1_precision, s1_recall, ratios);
  if (!input.ok()) {
    std::cerr << "input: " << input.status() << "\n";
    return 1;
  }
  auto report = bounds::ComputeBoundsReport(*input);
  if (!report.ok()) {
    std::cerr << "bounds: " << report.status() << "\n";
    return 1;
  }

  std::cout << "published S1 curve + measured size ratios -> guaranteed "
               "bounds for S2\n\n";
  TextTable table({"δ", "S1 P", "S1 R", "Â", "worst P", "best P", "rand P",
                   "worst R", "best R"});
  for (size_t i = 0; i < thresholds.size(); ++i) {
    const auto& b = report->incremental.points[i];
    table.AddRow({FormatDouble(thresholds[i], 2),
                  FormatDouble(s1_precision[i], 2),
                  FormatDouble(s1_recall[i], 2), FormatDouble(ratios[i], 2),
                  FormatDouble(b.worst.precision, 3),
                  FormatDouble(b.best.precision, 3),
                  FormatDouble(b.random.precision, 3),
                  FormatDouble(b.worst.recall, 3),
                  FormatDouble(b.best.recall, 3)});
  }
  table.Print(std::cout);

  double guaranteed = bounds::GuaranteedRecallAt(report->incremental, 0.5);
  std::cout << "\nclaim you can now publish (paper §5): the efficiency "
               "improvement costs at\nmost x% effectiveness — here, S2 "
               "guarantees precision ≥ 0.5 up to recall "
            << FormatDouble(guaranteed, 3) << ".\n";

  std::cout << "\nfor comparison, the naive per-threshold bounds (§3.1) "
               "would claim only:\n";
  TextTable naive({"δ", "worst P (naive)", "worst P (incremental)"});
  for (size_t i = 0; i < thresholds.size(); ++i) {
    naive.AddRow({FormatDouble(thresholds[i], 2),
                  FormatDouble(report->naive.points[i].worst.precision, 3),
                  FormatDouble(
                      report->incremental.points[i].worst.precision, 3)});
  }
  naive.Print(std::cout);
  return 0;
}
