// Matching a personal schema against real XSD documents (the paper's
// setting: "matching of a small user-given schema against a large
// repository of XML schemas as part of a personal schema based querying
// system").
//
// Demonstrates the XML/XSD substrate: XSDs are parsed with the built-in
// XML parser, lowered to schema trees, and matched with both the
// exhaustive system and the clustering improvement.
//
// Build & run:  ./build/examples/xsd_matching

#include <iostream>

#include "common/table.h"
#include "match/cluster_matcher.h"
#include "match/exhaustive_matcher.h"
#include "schema/text_format.h"
#include "schema/xsd_reader.h"

using namespace smb;

namespace {

constexpr const char* kPurchaseOrderXsd =
    R"(<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="purchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="shipTo" type="AddressType"/>
        <xs:element name="billTo" type="AddressType"/>
        <xs:element name="items">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="item">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="productName" type="xs:string"/>
                    <xs:element name="quantity" type="xs:int"/>
                    <xs:element name="price" type="xs:decimal"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="orderDate" type="xs:date"/>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="AddressType">
    <xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="street" type="xs:string"/>
      <xs:element name="city" type="xs:string"/>
      <xs:element name="zip" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>)";

constexpr const char* kInvoiceXsd =
    R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="invoice">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="client">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="name" type="xs:string"/>
              <xs:element name="location" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="line">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="article" type="xs:string"/>
              <xs:element name="qty" type="xs:int"/>
              <xs:element name="cost" type="xs:decimal"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="total" type="xs:decimal"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>)";

constexpr const char* kLibraryXsd =
    R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="book">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="author" type="xs:string"/>
              <xs:element name="year" type="xs:int"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>)";

}  // namespace

int main() {
  // Personal schema: what the user thinks an order line looks like.
  auto query = schema::ParseSchemaText(R"(schema my-view
item
  product :string
  quantity :int
  price :decimal
)");
  if (!query.ok()) {
    std::cerr << "query: " << query.status() << "\n";
    return 1;
  }

  schema::SchemaRepository repo;
  struct Doc {
    const char* name;
    const char* xsd;
  };
  for (const Doc& doc : {Doc{"purchase-order.xsd", kPurchaseOrderXsd},
                         Doc{"invoice.xsd", kInvoiceXsd},
                         Doc{"library.xsd", kLibraryXsd}}) {
    auto parsed = schema::ReadXsd(doc.xsd, doc.name);
    if (!parsed.ok()) {
      std::cerr << doc.name << ": " << parsed.status() << "\n";
      return 1;
    }
    std::cout << "loaded " << doc.name << " (" << parsed->size()
              << " elements)\n";
    if (auto added = repo.Add(std::move(parsed).value()); !added.ok()) {
      std::cerr << "add: " << added.status() << "\n";
      return 1;
    }
  }

  static const sim::SynonymTable kSynonyms = sim::SynonymTable::Builtin();
  match::MatchOptions options;
  options.delta_threshold = 0.5;
  options.objective.name.synonyms = &kSynonyms;

  match::ExhaustiveMatcher matcher;
  auto answers = matcher.Match(*query, repo, options);
  if (!answers.ok()) {
    std::cerr << "match: " << answers.status() << "\n";
    return 1;
  }

  std::cout << "\ntop mappings for the personal schema "
               "(item/product/quantity/price):\n";
  TextTable table({"rank", "Δ", "schema", "product ->", "quantity ->",
                   "price ->"});
  for (size_t i = 0; i < std::min<size_t>(8, answers->size()); ++i) {
    const match::Mapping& m = answers->mappings()[i];
    const schema::Schema& s = repo.schema(m.schema_index);
    table.AddRow({std::to_string(i + 1), FormatDouble(m.delta, 3), s.name(),
                  s.PathOf(m.targets[1]), s.PathOf(m.targets[2]),
                  s.PathOf(m.targets[3])});
  }
  table.Print(std::cout);

  // The clustering improvement finds the same leaders at a fraction of the
  // search effort.
  Rng rng(5);
  match::ClusterMatcherOptions copts;
  copts.top_m_clusters = 3;
  copts.clustering.num_clusters = 8;
  auto cluster_matcher = match::ClusterMatcher::Create(repo, copts, &rng);
  if (!cluster_matcher.ok()) {
    std::cerr << "cluster: " << cluster_matcher.status() << "\n";
    return 1;
  }
  match::MatchStats s1_stats, s2_stats;
  (void)matcher.Match(*query, repo, options, &s1_stats);
  auto a2 = cluster_matcher->Match(*query, repo, options, &s2_stats);
  if (!a2.ok()) {
    std::cerr << "cluster match: " << a2.status() << "\n";
    return 1;
  }
  std::cout << "\nexhaustive explored " << s1_stats.states_explored
            << " states; cluster matcher " << s2_stats.states_explored
            << " (" << a2->size() << "/" << answers->size()
            << " answers retained)\n";
  if (!a2->empty() && !answers->empty() &&
      a2->mappings()[0].key() == answers->mappings()[0].key()) {
    std::cout << "the best mapping survived the non-exhaustive search.\n";
  }
  return 0;
}
