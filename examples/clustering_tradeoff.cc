// The efficiency/effectiveness trade-off study the paper motivates (§1 use
// case 2: "get an impression on the efficiency-effectiveness trade-off in
// an automated way allowing quick evaluation of many different parameter
// settings").
//
// Sweeps the cluster matcher's search budget (clusters examined per query
// element) and reports, for each setting, the search effort (states
// explored), the answer-size ratio, and the *guaranteed* worst-case
// precision at the top of the ranking — all without judging a single answer
// of the improved configurations.
//
// Build & run:  ./build/examples/clustering_tradeoff

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/table.h"
#include "eval/pr_curve.h"
#include "match/cluster_matcher.h"
#include "match/exhaustive_matcher.h"
#include "synth/generator.h"

using namespace smb;

int main() {
  // One synthetic collection; the small judged part is the planted truth.
  Rng rng(77);
  synth::SynthOptions sopts;
  sopts.num_schemas = 200;
  auto collection = synth::GenerateProblem(4, sopts, &rng);
  if (!collection.ok()) {
    std::cerr << "collection: " << collection.status() << "\n";
    return 1;
  }

  static const sim::SynonymTable kSynonyms = sim::SynonymTable::Builtin();
  match::MatchOptions options;
  options.delta_threshold = 0.25;
  options.objective.name.synonyms = &kSynonyms;

  match::ExhaustiveMatcher s1;
  match::MatchStats s1_stats;
  auto a1 = s1.Match(collection->query, collection->repository, options,
                     &s1_stats);
  if (!a1.ok()) {
    std::cerr << "S1: " << a1.status() << "\n";
    return 1;
  }
  std::vector<double> thresholds = eval::UniformThresholds(0.25, 0.01);
  auto s1_curve = eval::PrCurve::Measure(*a1, collection->truth, thresholds);
  if (!s1_curve.ok()) {
    std::cerr << "curve: " << s1_curve.status() << "\n";
    return 1;
  }

  // Shared clustering; the budget knob is how many clusters each query
  // element examines.
  cluster::ElementClusteringOptions copts;
  copts.num_clusters = 16;
  auto clustering = cluster::ElementClustering::Build(
      collection->repository, copts, &rng);
  if (!clustering.ok()) {
    std::cerr << "clustering: " << clustering.status() << "\n";
    return 1;
  }
  auto shared = std::make_shared<cluster::ElementClustering>(
      std::move(clustering).value());

  std::cout << "S1 explored " << s1_stats.states_explored
            << " states and produced " << a1->size() << " answers (|H| = "
            << collection->truth.size() << ")\n\n";

  TextTable table({"clusters/element", "states", "speedup", "|A2|/|A1|",
                   "guaranteed P≥0.5 up to R", "random-case up to R"});
  for (size_t top_m : {1u, 2u, 4u, 6u, 8u, 12u, 16u}) {
    match::ClusterMatcherOptions mopts;
    mopts.top_m_clusters = top_m;
    match::ClusterMatcher s2(shared, mopts);
    match::MatchStats stats;
    auto a2 = s2.Match(collection->query, collection->repository, options,
                       &stats);
    if (!a2.ok()) {
      std::cerr << "S2: " << a2.status() << "\n";
      return 1;
    }
    auto input =
        bounds::InputFromMeasuredCurve(*s1_curve, a2->SizesAt(thresholds));
    if (!input.ok()) {
      std::cerr << "input: " << input.status() << "\n";
      return 1;
    }
    auto curve = bounds::ComputeIncrementalBounds(*input);
    if (!curve.ok()) {
      std::cerr << "bounds: " << curve.status() << "\n";
      return 1;
    }
    bounds::BoundsCurve random_as_worst = *curve;
    for (auto& point : random_as_worst.points) point.worst = point.random;

    double ratio = a1->empty()
        ? 1.0
        : static_cast<double>(a2->size()) / static_cast<double>(a1->size());
    double speedup = stats.states_explored > 0
        ? static_cast<double>(s1_stats.states_explored) /
              static_cast<double>(stats.states_explored)
        : 0.0;
    table.AddRow({std::to_string(top_m) + "/16",
                  std::to_string(stats.states_explored),
                  FormatDouble(speedup, 1) + "x", FormatDouble(ratio, 3),
                  FormatDouble(bounds::GuaranteedRecallAt(*curve, 0.5), 3),
                  FormatDouble(
                      bounds::GuaranteedRecallAt(random_as_worst, 0.5), 3)});
  }
  table.Print(std::cout);

  std::cout << "\nreading: a small cluster budget buys large speedups; the "
               "bounds quantify\nexactly how much guaranteed effectiveness "
               "each budget level still offers\n(without any human "
               "judgments of the improved configurations).\n";
  return 0;
}
