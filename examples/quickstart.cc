// Quickstart: the full MatchBounds workflow in one file.
//
//  1. define a personal (query) schema and a small repository,
//  2. run the exhaustive system S1 and a beam-search improvement S2,
//  3. verify the same-objective contract (A2 ⊆ A1, identical Δ),
//  4. compute guaranteed effectiveness bounds for S2 from S1's measured
//     curve and the answer sizes alone — no judgments of S2 needed.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/table.h"
#include "eval/pr_curve.h"
#include "match/beam_matcher.h"
#include "match/exhaustive_matcher.h"
#include "schema/text_format.h"

using namespace smb;

int main() {
  // --- 1. Schemas (compact text format; see schema/text_format.h) -------
  auto query = schema::ParseSchemaText(R"(schema personal
order
  orderId :string
  customer
)");
  if (!query.ok()) {
    std::cerr << "query: " << query.status() << "\n";
    return 1;
  }

  schema::SchemaRepository repo;
  for (const char* text : {
           // An exact copy of the query inside a web-shop schema.
           R"(schema shop-a
store
  order
    orderId :string
    customer
  inventory
    product
)",
           // A synonym-renamed copy.
           R"(schema shop-b
shop
  purchase
    purchaseId :string
    client
  misc
)",
           // A distractor.
           R"(schema zoo
zoo
  animals
    giraffe
    zebra
  keeper
)"}) {
    auto parsed = schema::ParseSchemaText(text);
    if (!parsed.ok()) {
      std::cerr << "repo schema: " << parsed.status() << "\n";
      return 1;
    }
    if (auto added = repo.Add(std::move(parsed).value()); !added.ok()) {
      std::cerr << "repo add: " << added.status() << "\n";
      return 1;
    }
  }

  // --- 2. Match with S1 (exhaustive) and S2 (beam) ----------------------
  static const sim::SynonymTable kSynonyms = sim::SynonymTable::Builtin();
  match::MatchOptions options;
  options.delta_threshold = 0.5;
  options.objective.name.synonyms = &kSynonyms;

  match::ExhaustiveMatcher s1;
  match::BeamMatcher s2(match::BeamMatcherOptions{3});
  auto a1 = s1.Match(*query, repo, options);
  auto a2 = s2.Match(*query, repo, options);
  if (!a1.ok() || !a2.ok()) {
    std::cerr << (a1.ok() ? a2.status() : a1.status()) << "\n";
    return 1;
  }
  std::cout << "S1 (exhaustive) found " << a1->size() << " answers, "
            << "S2 (beam-3) found " << a2->size() << ":\n";
  for (size_t i = 0; i < std::min<size_t>(5, a1->size()); ++i) {
    const match::Mapping& m = a1->mappings()[i];
    std::cout << "  #" << i + 1 << "  " << m.ToString() << "  -> targets: ";
    const schema::Schema& s = repo.schema(m.schema_index);
    for (size_t q = 0; q < m.targets.size(); ++q) {
      std::cout << (q ? ", " : "") << s.PathOf(m.targets[q]);
    }
    std::cout << "\n";
  }

  // --- 3. The contract behind the technique -----------------------------
  if (Status st = match::AnswerSet::VerifySameObjective(*a2, *a1); !st.ok()) {
    std::cerr << "contract violated: " << st << "\n";
    return 1;
  }
  std::cout << "\ncontract holds: A2 ⊆ A1 with identical Δ scores\n\n";

  // --- 4. Bounds from sizes + S1's judged curve -------------------------
  // Tiny judged set: the two planted copies are the correct mappings.
  eval::GroundTruth truth;
  truth.AddCorrect(a1->mappings()[0].key());  // the exact copy (Δ = 0)
  truth.AddCorrect(a1->mappings()[1].key());  // the synonym copy
  std::vector<double> thresholds = {0.1, 0.2, 0.3, 0.4, 0.5};
  auto s1_curve = eval::PrCurve::Measure(*a1, truth, thresholds);
  if (!s1_curve.ok()) {
    std::cerr << "curve: " << s1_curve.status() << "\n";
    return 1;
  }
  auto input =
      bounds::InputFromMeasuredCurve(*s1_curve, a2->SizesAt(thresholds));
  if (!input.ok()) {
    std::cerr << "input: " << input.status() << "\n";
    return 1;
  }
  auto bounds_curve = bounds::ComputeIncrementalBounds(*input);
  if (!bounds_curve.ok()) {
    std::cerr << "bounds: " << bounds_curve.status() << "\n";
    return 1;
  }

  TextTable table({"δ", "|A1|", "|A2|", "S2 worst P", "S2 best P",
                   "S2 worst R", "S2 best R"});
  for (size_t i = 0; i < thresholds.size(); ++i) {
    const auto& b = bounds_curve->points[i];
    table.AddRow({FormatDouble(thresholds[i], 1),
                  std::to_string(a1->CountAtThreshold(thresholds[i])),
                  std::to_string(a2->CountAtThreshold(thresholds[i])),
                  FormatDouble(b.worst.precision, 3),
                  FormatDouble(b.best.precision, 3),
                  FormatDouble(b.worst.recall, 3),
                  FormatDouble(b.best.recall, 3)});
  }
  std::cout << "guaranteed effectiveness bounds for S2 "
               "(no human judged S2's answers):\n";
  table.Print(std::cout);
  return 0;
}
