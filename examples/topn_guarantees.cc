// Top-N guarantees — the paper's closing point (§5): "for schema matching
// systems as well as information retrieval systems in general, the top-N is
// usually the most interesting and for such recall levels, we can give
// useful, i.e., narrow, effectiveness bounds."
//
// Runs a workload of several personal schemas, builds two improvements
// (beam and per-schema top-k), and prints guaranteed P/R intervals for the
// improvements' top-N answers, plus rank-based summary metrics.
//
// Build & run:  ./build/examples/topn_guarantees

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/table.h"
#include "eval/ir_metrics.h"
#include "eval/workload.h"
#include "match/beam_matcher.h"
#include "match/exhaustive_matcher.h"
#include "match/topk_matcher.h"
#include "synth/generator.h"

using namespace smb;

int main() {
  // Collection + query.
  Rng rng(321);
  synth::SynthOptions sopts;
  sopts.num_schemas = 200;
  auto collection = synth::GenerateProblem(4, sopts, &rng);
  if (!collection.ok()) {
    std::cerr << "collection: " << collection.status() << "\n";
    return 1;
  }

  static const sim::SynonymTable kSynonyms = sim::SynonymTable::Builtin();
  match::MatchOptions options;
  options.delta_threshold = 0.25;
  options.objective.name.synonyms = &kSynonyms;

  match::ExhaustiveMatcher s1;
  auto a1 = s1.Match(collection->query, collection->repository, options);
  if (!a1.ok()) {
    std::cerr << "S1: " << a1.status() << "\n";
    return 1;
  }

  struct System {
    std::string name;
    match::AnswerSet answers;
  };
  std::vector<System> systems;
  {
    match::BeamMatcher beam(match::BeamMatcherOptions{6});
    auto a = beam.Match(collection->query, collection->repository, options);
    if (!a.ok()) {
      std::cerr << "beam: " << a.status() << "\n";
      return 1;
    }
    systems.push_back({"beam-6", std::move(a).value()});
  }
  {
    match::TopKMatcher topk(match::TopKMatcherOptions{5, 100000});
    auto a = topk.Match(collection->query, collection->repository, options);
    if (!a.ok()) {
      std::cerr << "topk: " << a.status() << "\n";
      return 1;
    }
    systems.push_back({"topk-5", std::move(a).value()});
  }

  std::cout << "rank-based summaries (oracle-judged, for reference):\n";
  TextTable summary({"system", "answers", "AP", "R-precision", "P@10",
                     "break-even"});
  auto add_summary = [&](const std::string& name,
                         const match::AnswerSet& answers) {
    summary.AddRow(
        {name, std::to_string(answers.size()),
         FormatDouble(eval::AveragePrecision(answers, collection->truth), 3),
         FormatDouble(eval::RPrecision(answers, collection->truth), 3),
         FormatDouble(eval::PrecisionAtN(answers, collection->truth, 10), 3),
         FormatDouble(eval::BreakEvenPoint(answers, collection->truth), 3)});
  };
  add_summary("S1 exhaustive", *a1);
  for (const System& system : systems) {
    add_summary(system.name, system.answers);
  }
  summary.Print(std::cout);

  std::cout << "\nguaranteed top-N effectiveness intervals (no judgments of "
               "the improvements used):\n";
  for (const System& system : systems) {
    auto topn = bounds::ComputeTopNBounds(*a1, collection->truth,
                                          system.answers,
                                          {5, 10, 25, 50, 100});
    if (!topn.ok()) {
      std::cerr << system.name << ": " << topn.status() << "\n";
      return 1;
    }
    std::cout << "\n--- " << system.name << " ---\n";
    TextTable table({"N", "δ(N)", "P interval", "R interval",
                     "F1 interval"});
    for (const auto& entry : *topn) {
      bounds::F1Bounds f1 = bounds::F1BoundsAt(entry.bounds);
      table.AddRow(
          {std::to_string(entry.n), FormatDouble(entry.threshold, 3),
           "[" + FormatDouble(entry.bounds.worst.precision, 3) + ", " +
               FormatDouble(entry.bounds.best.precision, 3) + "]",
           "[" + FormatDouble(entry.bounds.worst.recall, 3) + ", " +
               FormatDouble(entry.bounds.best.recall, 3) + "]",
           "[" + FormatDouble(f1.worst, 3) + ", " + FormatDouble(f1.best, 3) +
               "]"});
    }
    table.Print(std::cout);
  }

  std::cout << "\nreading: intervals are narrow for small N (where the "
               "improvements retain\nnearly everything) and widen with N — "
               "exactly the paper's closing claim.\n";
  return 0;
}
