// Reproduces Figure 13: boundaries for interpolation on sub-increment level
// (§4.2), with the paper's exact numbers: |H| = 100, measured points
// (50 answers, 30 correct) at δ1 and (70 answers, 36 correct) at δ2; a
// rebuilt system observes intermediate answer counts between 50 and 70.
//
// For each intermediate count the P/R point is confined to a segment whose
// endpoints are "all new answers incorrect" (worst) and "all new answers
// correct" (best). The paper highlights δ' with 54 answers.

#include <iostream>

#include "bounds/sub_increment.h"
#include "common/ascii_chart.h"
#include "common/table.h"

int main() {
  using namespace smb;
  std::cout << "=== Figure 13: sub-increment interpolation boundaries "
               "(|H| = 100) ===\n\n";

  const bounds::MassPoint at_d1{50.0, 30.0};
  const bounds::MassPoint at_d2{70.0, 36.0};
  const double h = 100.0;

  std::cout << "measured points: δ1 -> (R=30/100, P=30/50), δ2 -> "
               "(R=36/100, P=36/70)\n\n";

  auto sweep = bounds::SubIncrementSweep(at_d1, at_d2, h, 20);
  if (!sweep.ok()) {
    std::cerr << "sweep failed: " << sweep.status() << "\n";
    return 1;
  }

  TextTable table({"answers a'", "worst (R, P)", "best (R, P)",
                   "midpoint (R, P)"});
  std::vector<double> wr, wp, br, bp, mr, mp;
  for (const auto& point : *sweep) {
    auto fmt = [](const bounds::PrValue& v) {
      return "(" + FormatDouble(v.recall, 3) + ", " +
             FormatDouble(v.precision, 3) + ")";
    };
    table.AddRow({FormatDouble(point.answers, 0), fmt(point.worst),
                  fmt(point.best), fmt(point.midpoint)});
    wr.push_back(point.worst.recall);
    wp.push_back(point.worst.precision);
    br.push_back(point.best.recall);
    bp.push_back(point.best.precision);
    mr.push_back(point.midpoint.recall);
    mp.push_back(point.midpoint.precision);
  }
  table.Print(std::cout);

  // The paper's highlighted intermediate threshold: 54 answers.
  auto highlight = bounds::SubIncrementBoundsAt(at_d1, at_d2, h, 54.0);
  if (!highlight.ok()) {
    std::cerr << "highlight failed: " << highlight.status() << "\n";
    return 1;
  }
  std::cout << "\nδ' (54 answers): interpolated point must lie on the line "
               "between\n  worst (R=" << FormatDouble(highlight->worst.recall, 2)
            << ", P=" << FormatDouble(highlight->worst.precision, 4)
            << " = 30/54) and best (R="
            << FormatDouble(highlight->best.recall, 2)
            << ", P=" << FormatDouble(highlight->best.precision, 4)
            << " = 34/54)\n";

  ChartSeries worst{"worst endpoints", '-', wr, wp};
  ChartSeries best{"best endpoints", '+', br, bp};
  ChartSeries mid{"midpoints (safest interpolation)", 'o', mr, mp};
  ChartOptions chart;
  chart.x_min = 0.28;
  chart.x_max = 0.40;
  chart.y_min = 0.45;
  chart.y_max = 0.70;
  chart.x_label = "Recall";
  chart.y_label = "Precision";
  std::cout << "\n";
  RenderChart({worst, best, mid}, chart, std::cout);

  std::cout << "\nnote (paper): taking the point halfway between worst and "
               "best case is NOT\nthe same as linear interpolation between "
               "δ1 and δ2; near the measured points\nthe segments shorten "
               "because few answers are of unknown correctness.\n";

  bool exact = std::abs(highlight->worst.precision - 30.0 / 54.0) < 1e-12 &&
               std::abs(highlight->best.precision - 34.0 / 54.0) < 1e-12 &&
               std::abs(highlight->worst.recall - 0.30) < 1e-12 &&
               std::abs(highlight->best.recall - 0.34) < 1e-12;
  std::cout << "\nexact reproduction of the paper's numbers: "
            << (exact ? "YES" : "NO") << "\n";
  return exact ? 0 : 1;
}
