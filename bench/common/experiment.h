#pragma once

#include <cstdint>
#include <ostream>

#include "common/result.h"
#include "eval/pr_curve.h"
#include "match/answer_set.h"
#include "match/matcher.h"
#include "synth/generator.h"

/// \file experiment.h
/// \brief The shared experimental setup behind the paper-figure benches.
///
/// One synthetic collection (seeded, reproducible), three systems:
///  * S1       — exhaustive matcher (the original system),
///  * S2-one   — clustering-based improvement (smooth ratio decline),
///  * S2-two   — beam-search improvement (aggressive ratio cliff),
/// plus S1's measured P/R curve on the collection's planted ground truth.
/// Every figure bench derives its series from this object so the figures
/// are mutually consistent, like the paper's.

namespace smb::bench {

/// \brief Knobs of the standard experiment.
struct ExperimentOptions {
  uint64_t seed = 2006;  ///< ICDE year; any fixed value works
  size_t num_schemas = 400;
  size_t query_elements = 4;
  size_t min_host_elements = 10;
  size_t max_host_elements = 22;
  /// δ_max: matchers produce answers up to here (the paper's Figure 10
  /// x-axis also ends at 0.25).
  double delta_max = 0.25;
  /// Threshold sweep step.
  double threshold_step = 0.01;
  /// S2-two beam width (narrow => the paper's aggressive ratio cliff).
  size_t beam_width = 6;
  /// S2-one: clusters examined per query element / total cluster count
  /// (generous => the paper's smooth decline).
  size_t cluster_top_m = 10;
  size_t num_clusters = 16;
};

/// \brief Everything the figure benches consume.
struct Experiment {
  ExperimentOptions options;
  synth::SyntheticCollection collection;
  match::MatchOptions match_options;
  std::vector<double> thresholds;
  match::AnswerSet s1;
  match::AnswerSet s2_one;
  match::AnswerSet s2_two;
  match::MatchStats stats_s1;
  match::MatchStats stats_one;
  match::MatchStats stats_two;
  eval::PrCurve s1_curve;

  /// Answer-size ratio Â^δ = |A2^δ|/|A1^δ| at each sweep threshold
  /// (1 where |A1| = 0).
  std::vector<double> RatiosOf(const match::AnswerSet& s2) const;
};

/// \brief Generates the collection, runs all three systems, measures S1.
Result<Experiment> BuildExperiment(const ExperimentOptions& options = {});

/// \brief Prints collection/system statistics (shared bench preamble).
void PrintExperimentSummary(const Experiment& experiment, std::ostream& os);

}  // namespace smb::bench
