#include "common/experiment.h"

#include "common/strings.h"
#include "common/table.h"
#include "match/beam_matcher.h"
#include "match/cluster_matcher.h"
#include "match/exhaustive_matcher.h"

namespace smb::bench {

std::vector<double> Experiment::RatiosOf(const match::AnswerSet& s2) const {
  std::vector<double> ratios;
  ratios.reserve(thresholds.size());
  for (double delta : thresholds) {
    size_t a1 = s1.CountAtThreshold(delta);
    size_t a2 = s2.CountAtThreshold(delta);
    ratios.push_back(a1 > 0 ? static_cast<double>(a2) /
                                  static_cast<double>(a1)
                            : 1.0);
  }
  return ratios;
}

Result<Experiment> BuildExperiment(const ExperimentOptions& options) {
  Experiment experiment;
  experiment.options = options;

  Rng rng(options.seed);
  synth::SynthOptions sopts;
  sopts.num_schemas = options.num_schemas;
  sopts.min_schema_elements = options.min_host_elements;
  sopts.max_schema_elements = options.max_host_elements;
  SMB_ASSIGN_OR_RETURN(
      experiment.collection,
      synth::GenerateProblem(options.query_elements, sopts, &rng));

  static const sim::SynonymTable kSynonyms = sim::SynonymTable::Builtin();
  experiment.match_options.delta_threshold = options.delta_max;
  experiment.match_options.objective.name.synonyms = &kSynonyms;

  const schema::Schema& query = experiment.collection.query;
  const schema::SchemaRepository& repo = experiment.collection.repository;

  match::ExhaustiveMatcher s1;
  SMB_ASSIGN_OR_RETURN(experiment.s1,
                       s1.Match(query, repo, experiment.match_options,
                                &experiment.stats_s1));

  match::ClusterMatcherOptions copts;
  copts.top_m_clusters = options.cluster_top_m;
  copts.clustering.num_clusters = options.num_clusters;
  SMB_ASSIGN_OR_RETURN(match::ClusterMatcher s2_one,
                       match::ClusterMatcher::Create(repo, copts, &rng));
  SMB_ASSIGN_OR_RETURN(experiment.s2_one,
                       s2_one.Match(query, repo, experiment.match_options,
                                    &experiment.stats_one));

  match::BeamMatcher s2_two(match::BeamMatcherOptions{options.beam_width});
  SMB_ASSIGN_OR_RETURN(experiment.s2_two,
                       s2_two.Match(query, repo, experiment.match_options,
                                    &experiment.stats_two));

  experiment.thresholds =
      eval::UniformThresholds(options.delta_max, options.threshold_step);
  SMB_ASSIGN_OR_RETURN(
      experiment.s1_curve,
      eval::PrCurve::Measure(experiment.s1, experiment.collection.truth,
                             experiment.thresholds));
  return experiment;
}

void PrintExperimentSummary(const Experiment& experiment, std::ostream& os) {
  const auto& collection = experiment.collection;
  os << "collection: " << collection.repository.schema_count()
     << " schemas, " << collection.repository.total_elements()
     << " elements, |H| = " << collection.truth.size()
     << " planted correct mappings, " << collection.near_misses
     << " near-miss plants (seed " << experiment.options.seed << ")\n";
  os << "query (" << collection.query.size() << " elements):\n";
  for (schema::NodeId id : collection.query.PreOrder()) {
    const auto& node = collection.query.node(id);
    os << "  " << std::string(static_cast<size_t>(node.depth) * 2, ' ')
       << node.name << (node.type.empty() ? "" : " :" + node.type) << "\n";
  }
  TextTable table({"system", "answers@δmax", "states explored", "pruned"});
  auto row = [&](const std::string& name, const match::AnswerSet& answers,
                 const match::MatchStats& stats) {
    table.AddRow({name, std::to_string(answers.size()),
                  std::to_string(stats.states_explored),
                  std::to_string(stats.states_pruned)});
  };
  row("S1 exhaustive", experiment.s1, experiment.stats_s1);
  row("S2-one cluster", experiment.s2_one, experiment.stats_one);
  row("S2-two beam", experiment.s2_two, experiment.stats_two);
  table.Print(os);
  os << "\n";
}

}  // namespace smb::bench
