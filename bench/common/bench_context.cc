#include <benchmark/benchmark.h>

#include "sim/simd_dispatch.h"

/// \file bench_context.cc
/// \brief Registers context that makes a benchmark JSON self-describing:
///
///  * `smb_build_type` — how *this repository's* code was compiled
///    (optimized vs debug). Google Benchmark's own `library_build_type`
///    describes the benchmark *library*, which distro packages often ship
///    as a debug build even when our code is -O3, so it cannot be used to
///    judge whether numbers are comparable. `tools/bench_diff.py` refuses
///    debug inputs based on this field.
///  * `smb_simd` — the SIMD tier the kernels dispatched to at load time
///    (scalar / avx2 / neon, including any `SMB_SIMD` override), so two
///    JSONs compared across machines or env configs carry the reason for
///    a kernel-speed delta.
///
/// Linked into every perf_* target; registration runs before main() so
/// the fields appear in every output format without per-bench code.

namespace {

bool RegisterBenchContext() {
#if defined(__OPTIMIZE__) || (defined(NDEBUG) && !defined(_DEBUG))
  benchmark::AddCustomContext("smb_build_type", "release");
#else
  benchmark::AddCustomContext("smb_build_type", "debug");
#endif
  benchmark::AddCustomContext(
      "smb_simd", smb::sim::SimdTierName(smb::sim::ActiveSimdTier()));
  return true;
}

const bool kRegistered = RegisterBenchContext();

}  // namespace
