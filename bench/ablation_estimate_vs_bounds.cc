// Ablation Abl-6 (use case 3 of §1): "assess the accuracy of an
// effectiveness estimate acquired using other validation techniques."
//
// The conventional route to S2's precision is to judge a random sample of
// its answers (human budget k) and report an estimate with a confidence
// interval. This bench runs that estimator at several budgets and puts the
// result next to the guaranteed best/worst bounds and the true value:
//
//  * the guaranteed interval requires ZERO judgments of S2's answers,
//  * the sampled CI shrinks with budget but is only probabilistic,
//  * the bounds certify (or refute) a sampled estimate: an estimate outside
//    [worst, best] is provably wrong.

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/experiment.h"
#include "common/table.h"
#include "eval/sampling_estimator.h"

int main() {
  using namespace smb;
  std::cout << "=== Ablation: sampled precision estimate vs guaranteed "
               "bounds ===\n\n";
  bench::ExperimentOptions options;
  options.num_schemas = 200;
  auto experiment = bench::BuildExperiment(options);
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }
  const auto& s2 = experiment->s2_one;
  const auto& truth = experiment->collection.truth;
  auto oracle = [&truth](const match::Mapping& m) {
    return truth.Contains(m);
  };

  auto input = bounds::InputFromMeasuredCurve(
      experiment->s1_curve, s2.SizesAt(experiment->thresholds));
  if (!input.ok()) {
    std::cerr << "input: " << input.status() << "\n";
    return 1;
  }
  auto curve = bounds::ComputeIncrementalBounds(*input);
  if (!curve.ok()) {
    std::cerr << "bounds: " << curve.status() << "\n";
    return 1;
  }

  // Study the final threshold (largest answer set).
  const double delta = experiment->thresholds.back();
  const auto& b = curve->points.back();
  eval::ConfusionCounts actual = eval::Evaluate(s2, truth, delta);
  double true_p = eval::Precision(actual);

  std::cout << "system: S2-one (cluster), δ = " << FormatDouble(delta, 2)
            << ", |A2| = " << s2.CountAtThreshold(delta) << "\n";
  std::cout << "guaranteed (0 judgments of S2): worst P = "
            << FormatDouble(b.worst.precision, 3)
            << ", best P = " << FormatDouble(b.best.precision, 3)
            << ", random baseline = " << FormatDouble(b.random.precision, 3)
            << "\n";
  std::cout << "true precision (oracle): " << FormatDouble(true_p, 3)
            << "\n\n";

  TextTable table({"budget k", "sampled P", "95% CI", "CI width",
                   "inside [worst, best]?", "covers true P?"});
  Rng rng(424242);
  for (size_t budget : {10u, 25u, 50u, 100u, 250u, 500u}) {
    auto estimate =
        eval::EstimatePrecisionBySampling(s2, oracle, delta, budget, &rng);
    if (!estimate.ok()) {
      std::cerr << "estimate: " << estimate.status() << "\n";
      return 1;
    }
    bool inside = estimate->precision >= b.worst.precision - 1e-9 &&
                  estimate->precision <= b.best.precision + 1e-9;
    bool covers =
        true_p >= estimate->ci_low - 1e-9 && true_p <= estimate->ci_high + 1e-9;
    table.AddRow({std::to_string(estimate->sample_size),
                  FormatDouble(estimate->precision, 3),
                  "[" + FormatDouble(estimate->ci_low, 3) + ", " +
                      FormatDouble(estimate->ci_high, 3) + "]",
                  FormatDouble(estimate->ci_high - estimate->ci_low, 3),
                  inside ? "yes" : "NO (estimate provably wrong)",
                  covers ? "yes" : "no (sampling miss)"});
  }
  table.Print(std::cout);

  std::cout << "\nreading: the sampled estimate needs a real judging budget "
               "and is only\nprobabilistic; the bounds cost nothing beyond "
               "the size measurements and give\ncertainty — and they "
               "certify whether a sampled estimate is even plausible.\n";
  return 0;
}
