// Ablation Abl-3: empirical soundness of the technique. The bounds are an
// analytical result ("not an estimate for which experimental validation is
// necessary", §5) — this bench closes the loop anyway: across several seeded
// collections it checks that the *actual* P/R of every improvement lies
// within the computed bounds at every threshold, and that a genuinely random
// system lands on the Equations (9)/(10) prediction.

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/experiment.h"
#include "common/table.h"
#include "match/random_prune.h"

namespace {

using namespace smb;

struct Tally {
  size_t thresholds_checked = 0;
  size_t violations = 0;
  double total_width = 0.0;
  double max_random_error = 0.0;
};

int ValidateSystem(const bench::Experiment& experiment,
                   const match::AnswerSet& s2, Tally* tally) {
  auto input = bounds::InputFromMeasuredCurve(
      experiment.s1_curve, s2.SizesAt(experiment.thresholds));
  if (!input.ok()) {
    std::cerr << "input failed: " << input.status() << "\n";
    return 1;
  }
  auto curve = bounds::ComputeIncrementalBounds(*input);
  if (!curve.ok()) {
    std::cerr << "bounds failed: " << curve.status() << "\n";
    return 1;
  }
  for (size_t i = 0; i < experiment.thresholds.size(); ++i) {
    eval::ConfusionCounts actual = eval::Evaluate(
        s2, experiment.collection.truth, experiment.thresholds[i]);
    double p = eval::Precision(actual);
    double r = eval::Recall(actual);
    const auto& b = curve->points[i];
    ++tally->thresholds_checked;
    tally->total_width += b.best.precision - b.worst.precision;
    if (p < b.worst.precision - 1e-9 || p > b.best.precision + 1e-9 ||
        r < b.worst.recall - 1e-9 || r > b.best.recall + 1e-9) {
      ++tally->violations;
    }
  }
  return 0;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: empirical validation of the bounds ===\n\n";
  TextTable table({"seed", "|H|", "|A1|@δmax", "checked", "violations",
                   "avg P-width", "random-pred error"});

  Tally global;
  for (uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    bench::ExperimentOptions options;
    options.seed = seed;
    options.num_schemas = 150;  // smaller per-seed runs, five seeds
    auto experiment = bench::BuildExperiment(options);
    if (!experiment.ok()) {
      std::cerr << "experiment failed: " << experiment.status() << "\n";
      return 1;
    }

    Tally tally;
    if (ValidateSystem(*experiment, experiment->s2_one, &tally) != 0) return 1;
    if (ValidateSystem(*experiment, experiment->s2_two, &tally) != 0) return 1;

    // A true random system: keep 50% of every increment, compare its actual
    // recall with the Eq (9)/(10) prediction at δmax.
    Rng rng(seed * 7919);
    std::vector<size_t> s1_sizes =
        experiment->s1.SizesAt(experiment->thresholds);
    std::vector<size_t> targets;
    for (size_t s : s1_sizes) targets.push_back(s / 2);
    for (size_t i = 1; i < targets.size(); ++i) {
      targets[i] = std::max(targets[i], targets[i - 1]);
    }
    auto random_system = match::RandomPrunePerIncrement(
        experiment->s1, experiment->thresholds, targets, &rng);
    if (!random_system.ok()) {
      std::cerr << "random prune failed: " << random_system.status() << "\n";
      return 1;
    }
    if (ValidateSystem(*experiment, *random_system, &tally) != 0) return 1;

    auto input = bounds::InputFromMeasuredCurve(
        experiment->s1_curve, random_system->SizesAt(experiment->thresholds));
    auto curve = bounds::ComputeIncrementalBounds(*input).value();
    eval::ConfusionCounts actual =
        eval::Evaluate(*random_system, experiment->collection.truth,
                       experiment->thresholds.back());
    double random_error = std::abs(eval::Recall(actual) -
                                   curve.points.back().random.recall);
    tally.max_random_error = random_error;

    table.AddRow({std::to_string(seed),
                  std::to_string(experiment->collection.truth.size()),
                  std::to_string(experiment->s1.size()),
                  std::to_string(tally.thresholds_checked),
                  std::to_string(tally.violations),
                  FormatDouble(tally.total_width /
                                   static_cast<double>(
                                       tally.thresholds_checked),
                               4),
                  FormatDouble(random_error, 4)});
    global.thresholds_checked += tally.thresholds_checked;
    global.violations += tally.violations;
    global.total_width += tally.total_width;
    global.max_random_error =
        std::max(global.max_random_error, tally.max_random_error);
  }
  table.Print(std::cout);

  std::cout << "\ntotals: " << global.thresholds_checked
            << " (threshold × system) checks, " << global.violations
            << " bound violations (must be 0)\n";
  std::cout << "max |actual − predicted| recall for the 50% random system: "
            << FormatDouble(global.max_random_error, 4) << "\n";
  return global.violations == 0 ? 0 : 1;
}
