// Ablation Abl-1: how much tighter are the incremental bounds of §3.2 than
// the per-threshold bounds of §3.1 ("unnecessarily pessimistic")?
//
// Runs both algorithms on the standard experiment for both improvements and
// reports the bound interval widths (best − worst, in precision) plus the
// relative tightening.

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/experiment.h"
#include "common/table.h"

namespace {

using namespace smb;

int Report(const bench::Experiment& experiment, const match::AnswerSet& s2,
           const std::string& name) {
  auto input = bounds::InputFromMeasuredCurve(
      experiment.s1_curve, s2.SizesAt(experiment.thresholds));
  if (!input.ok()) {
    std::cerr << "input failed: " << input.status() << "\n";
    return 1;
  }
  auto report = bounds::ComputeBoundsReport(*input);
  if (!report.ok()) {
    std::cerr << "bounds failed: " << report.status() << "\n";
    return 1;
  }

  std::cout << "--- " << name << " ---\n";
  TextTable table({"δ", "naive width", "incremental width", "tightening",
                   "naive worst P", "incr worst P"});
  double total_naive = 0.0, total_incr = 0.0;
  for (size_t i = 0; i < report->naive.points.size(); ++i) {
    const auto& n = report->naive.points[i];
    const auto& c = report->incremental.points[i];
    double naive_width = n.best.precision - n.worst.precision;
    double incr_width = c.best.precision - c.worst.precision;
    total_naive += naive_width;
    total_incr += incr_width;
    double gain = naive_width > 0 ? 1.0 - incr_width / naive_width : 0.0;
    table.AddRow({FormatDouble(n.threshold, 2), FormatDouble(naive_width, 4),
                  FormatDouble(incr_width, 4),
                  FormatDouble(100.0 * gain, 1) + "%",
                  FormatDouble(n.worst.precision, 4),
                  FormatDouble(c.worst.precision, 4)});
  }
  table.Print(std::cout);
  double avg_gain = total_naive > 0 ? 1.0 - total_incr / total_naive : 0.0;
  std::cout << "average precision-interval tightening: "
            << FormatDouble(100.0 * avg_gain, 1) << "%\n\n";
  return 0;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: naive (§3.1) vs incremental (§3.2) bound "
               "tightness ===\n\n";
  auto experiment = bench::BuildExperiment();
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }
  if (Report(*experiment, experiment->s2_one, "S2-one (cluster)") != 0) {
    return 1;
  }
  if (Report(*experiment, experiment->s2_two, "S2-two (beam)") != 0) {
    return 1;
  }
  std::cout << "expectation (paper §3.2): the incremental bounds are never "
               "looser, and\nstrictly tighter wherever the ratio varies "
               "across increments.\n";
  return 0;
}
