// Ablation Abl-2: sensitivity of the §4.1 interpolated-input pipeline to the
// |H| guess. The paper suspects "a rough estimate suffices"; this bench
// quantifies it by sweeping guesses over three orders of magnitude around
// the true |H| and measuring the deviation of the resulting worst-case
// precision bounds from the true-|H| reference.

#include <cmath>
#include <iostream>

#include "bounds/bounds_report.h"
#include "bounds/interpolated_input.h"
#include "common/experiment.h"
#include "common/table.h"
#include "eval/interpolation.h"

namespace {

using namespace smb;

Result<bounds::BoundsCurve> BoundsFromGuess(
    const bench::Experiment& experiment,
    const eval::ElevenPointCurve& eleven, double h_guess) {
  SMB_ASSIGN_OR_RETURN(bounds::ReconstructedCurve reconstructed,
                       bounds::ReconstructFromElevenPoint(eleven, h_guess));
  SMB_ASSIGN_OR_RETURN(
      std::vector<double> deltas,
      bounds::CorrelateThresholds(reconstructed, experiment.thresholds,
                                  experiment.s1.SizesAt(
                                      experiment.thresholds)));
  std::vector<double> ratios;
  for (double delta : deltas) {
    size_t a1 = experiment.s1.CountAtThreshold(delta);
    size_t a2 = experiment.s2_one.CountAtThreshold(delta);
    ratios.push_back(a1 > 0 ? static_cast<double>(a2) /
                                  static_cast<double>(a1)
                            : 1.0);
  }
  SMB_ASSIGN_OR_RETURN(bounds::BoundsInput input,
                       bounds::InputFromReconstructed(reconstructed, ratios));
  input = bounds::ClampToContainment(std::move(input));
  return bounds::ComputeIncrementalBounds(input);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: sensitivity of §4.1 bounds to the |H| guess "
               "===\n\n";
  auto experiment = bench::BuildExperiment();
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }
  auto eleven = eval::InterpolateElevenPoint(experiment->s1_curve);
  if (!eleven.ok()) {
    std::cerr << "interpolation failed: " << eleven.status() << "\n";
    return 1;
  }
  const double true_h =
      static_cast<double>(experiment->collection.truth.size());
  auto reference = BoundsFromGuess(*experiment, *eleven, true_h);
  if (!reference.ok()) {
    std::cerr << "reference failed: " << reference.status() << "\n";
    return 1;
  }

  std::cout << "true |H| = " << true_h
            << "; system under study: S2-one (cluster)\n\n";
  TextTable table({"|H| guess", "guess / true", "max |Δ worst P|",
                   "mean |Δ worst P|", "max |Δ best P|"});
  for (double factor : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0, 100.0}) {
    double guess = true_h * factor;
    auto curve = BoundsFromGuess(*experiment, *eleven, guess);
    if (!curve.ok()) {
      table.AddRow({FormatDouble(guess, 0), FormatDouble(factor, 2),
                    "error: " + curve.status().ToString(), "", ""});
      continue;
    }
    double max_worst = 0.0, sum_worst = 0.0, max_best = 0.0;
    size_t n = std::min(curve->points.size(), reference->points.size());
    for (size_t i = 0; i < n; ++i) {
      double dw = std::fabs(curve->points[i].worst.precision -
                            reference->points[i].worst.precision);
      double db = std::fabs(curve->points[i].best.precision -
                            reference->points[i].best.precision);
      max_worst = std::max(max_worst, dw);
      max_best = std::max(max_best, db);
      sum_worst += dw;
    }
    table.AddRow({FormatDouble(guess, 0), FormatDouble(factor, 2),
                  FormatDouble(max_worst, 4),
                  FormatDouble(sum_worst / static_cast<double>(n), 4),
                  FormatDouble(max_best, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: deviations stay small across orders of magnitude "
               "in the guess,\nsupporting the paper's suspicion that \"a "
               "rough estimate suffices\" (§4.1).\n";
  return 0;
}
