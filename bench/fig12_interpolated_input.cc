// Reproduces Figure 12: effectiveness bounds computed from an *interpolated*
// 11-point P/R curve instead of the measured one (§4.1).
//
// The interpolated curve lacks thresholds and answer counts; a guess for |H|
// recovers them via |A| = R·|H|/P, after which the reconstructed counts are
// correlated with the rebuilt system's threshold sweep. The paper uses the
// guess |H| = 15000; we additionally run the true |H| of our collection to
// expose the (small) accuracy loss a wrong guess causes.

#include <iostream>

#include "bounds/bounds_report.h"
#include "bounds/interpolated_input.h"
#include "common/ascii_chart.h"
#include "common/experiment.h"
#include "common/table.h"
#include "eval/interpolation.h"

namespace {

using namespace smb;

/// Runs the §4.1 pipeline for one |H| guess; returns the bounds curve over
/// the usable recall levels.
Result<bounds::BoundsCurve> BoundsFromGuess(
    const bench::Experiment& experiment,
    const eval::ElevenPointCurve& eleven, double h_guess) {
  SMB_ASSIGN_OR_RETURN(bounds::ReconstructedCurve reconstructed,
                       bounds::ReconstructFromElevenPoint(eleven, h_guess));
  // Correlate reconstructed |A1| levels with the rebuilt S1's sweep to
  // recover δ values for each 11-point level.
  SMB_ASSIGN_OR_RETURN(
      std::vector<double> deltas,
      bounds::CorrelateThresholds(reconstructed, experiment.thresholds,
                                  experiment.s1.SizesAt(
                                      experiment.thresholds)));
  // Ratio of the improved system at the correlated thresholds.
  std::vector<double> ratios;
  for (double delta : deltas) {
    size_t a1 = experiment.s1.CountAtThreshold(delta);
    size_t a2 = experiment.s2_one.CountAtThreshold(delta);
    ratios.push_back(a1 > 0 ? static_cast<double>(a2) /
                                  static_cast<double>(a1)
                            : 1.0);
  }
  SMB_ASSIGN_OR_RETURN(bounds::BoundsInput input,
                       bounds::InputFromReconstructed(reconstructed, ratios));
  input = bounds::ClampToContainment(std::move(input));
  return bounds::ComputeIncrementalBounds(input);
}

}  // namespace

int main() {
  std::cout << "=== Figure 12: bounds from an interpolated P/R curve "
               "(guess |H| = 15000) ===\n\n";
  auto experiment = bench::BuildExperiment();
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }
  auto eleven = eval::InterpolateElevenPoint(experiment->s1_curve);
  if (!eleven.ok()) {
    std::cerr << "interpolation failed: " << eleven.status() << "\n";
    return 1;
  }

  const double true_h =
      static_cast<double>(experiment->collection.truth.size());
  const double paper_guess = 15000.0;

  auto guessed = BoundsFromGuess(*experiment, *eleven, paper_guess);
  auto reference = BoundsFromGuess(*experiment, *eleven, true_h);
  if (!guessed.ok() || !reference.ok()) {
    std::cerr << "bounds failed: "
              << (guessed.ok() ? reference.status() : guessed.status())
              << "\n";
    return 1;
  }

  std::cout << "system under study: S2-one (cluster); true |H| = " << true_h
            << ", paper-style guess |H| = " << paper_guess << "\n\n";

  TextTable table({"recall level", "best P (guess)", "worst P (guess)",
                   "rand P (guess)", "worst P (true |H|)", "|Δ worst|"});
  std::vector<ChartSeries> series;
  ChartSeries best{"best (guess)", '+', {}, {}};
  ChartSeries worst{"worst (guess)", '-', {}, {}};
  ChartSeries random{"random (guess)", 'r', {}, {}};
  double max_dev = 0.0;
  for (size_t i = 0; i < guessed->points.size(); ++i) {
    const auto& g = guessed->points[i];
    const auto& t = reference->points[i];
    double dev = std::abs(g.worst.precision - t.worst.precision);
    max_dev = std::max(max_dev, dev);
    table.AddRow({FormatDouble(g.threshold, 1),
                  FormatDouble(g.best.precision, 3),
                  FormatDouble(g.worst.precision, 3),
                  FormatDouble(g.random.precision, 3),
                  FormatDouble(t.worst.precision, 3), FormatDouble(dev, 3)});
    best.x.push_back(g.best.recall);
    best.y.push_back(g.best.precision);
    worst.x.push_back(g.worst.recall);
    worst.y.push_back(g.worst.precision);
    random.x.push_back(g.random.recall);
    random.y.push_back(g.random.precision);
  }
  table.Print(std::cout);

  std::vector<double> sr, sp;
  for (const eval::PrPoint& p : experiment->s1_curve.points()) {
    sr.push_back(p.recall);
    sp.push_back(p.precision);
  }
  series.push_back(ChartSeries{"S1 interpolated base", '.', sr, sp});
  series.push_back(best);
  series.push_back(random);
  series.push_back(worst);
  ChartOptions chart;
  chart.x_label = "Recall";
  chart.y_label = "Precision";
  std::cout << "\n";
  RenderChart(series, chart, std::cout);

  std::cout << "\nmax worst-precision deviation caused by the wrong |H| "
               "guess: " << FormatDouble(max_dev, 4)
            << "\n(paper §4.1: \"the impact of varying |H| is that the "
               "effectiveness bounds\nbecome a little bit less accurate\" — "
               "a rough estimate suffices)\n";
  return 0;
}
