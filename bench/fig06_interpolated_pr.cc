// Reproduces Figure 6: the interpolated 11-point P/R curve constructed from
// the measured curve of Figure 5 with the standard interpolation
// P_interp(r) = max { P(r') : r' >= r }.

#include <iostream>

#include "common/ascii_chart.h"
#include "common/experiment.h"
#include "common/table.h"
#include "eval/interpolation.h"

int main() {
  using namespace smb;
  std::cout << "=== Figure 6: interpolated 11-point P/R curve of S1 ===\n\n";
  auto experiment = bench::BuildExperiment();
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }
  auto eleven = eval::InterpolateElevenPoint(experiment->s1_curve);
  if (!eleven.ok()) {
    std::cerr << "interpolation failed: " << eleven.status() << "\n";
    return 1;
  }

  TextTable table({"recall level", "interpolated precision"});
  std::vector<double> recalls, precisions;
  for (size_t i = 0; i < eval::ElevenPointCurve::kLevels; ++i) {
    double r = eval::ElevenPointCurve::RecallLevel(i);
    table.AddRow({FormatDouble(r, 1), FormatDouble(eleven->precision[i], 4)});
    recalls.push_back(r);
    precisions.push_back(eleven->precision[i]);
  }
  table.Print(std::cout);
  std::cout << "\nmean 11-point precision = "
            << FormatDouble(eleven->MeanPrecision(), 4) << "\n\n";

  std::vector<double> mr, mp;
  for (const eval::PrPoint& p : experiment->s1_curve.points()) {
    mr.push_back(p.recall);
    mp.push_back(p.precision);
  }
  ChartSeries measured{"measured (fig 5)", '.', mr, mp};
  ChartSeries interpolated{"interpolated", 'O', recalls, precisions};
  ChartOptions chart;
  chart.x_label = "Recall";
  chart.y_label = "Precision";
  RenderChart({measured, interpolated}, chart, std::cout);

  std::cout << "\nnote: the 11-point curve drops the thresholds and answer "
               "counts — the\ninformation gap §4.1 is about.\n";
  return 0;
}
