// Perf-2: throughput of the similarity measures that make up the objective
// function Δ. These dominate matcher run time (they sit in the innermost
// loop before caching), so their cost motivates both the name-cost cache
// and the paper's broader efficiency agenda.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sim/edit_distance.h"
#include "sim/jaro_winkler.h"
#include "sim/name_similarity.h"
#include "sim/ngram.h"
#include "sim/token_similarity.h"
#include "synth/vocabulary.h"

namespace {

using namespace smb;

std::vector<std::string> MakeNames(size_t n) {
  synth::Vocabulary vocab = synth::Vocabulary::ForDomain(
      synth::Domain::kECommerce);
  Rng rng(42);
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(vocab.RandomElementName(&rng));
  }
  return names;
}

const std::vector<std::string>& Names() {
  static const std::vector<std::string> kNames = MakeNames(256);
  return kNames;
}

void BM_Levenshtein(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::LevenshteinSimilarity(a, b));
    ++i;
  }
}
BENCHMARK(BM_Levenshtein);

void BM_DamerauLevenshtein(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::DamerauLevenshteinSimilarity(a, b));
    ++i;
  }
}
BENCHMARK(BM_DamerauLevenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::JaroWinklerSimilarity(a, b));
    ++i;
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_TrigramDice(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::NgramDiceSimilarity(a, b));
    ++i;
  }
}
BENCHMARK(BM_TrigramDice);

void BM_TokenSimilarity(benchmark::State& state) {
  const auto& names = Names();
  static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();
  sim::TokenSimilarityOptions options;
  options.synonyms = &kTable;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::TokenNameSimilarity(a, b, options));
    ++i;
  }
}
BENCHMARK(BM_TokenSimilarity);

void BM_CompositeNameSimilarity(benchmark::State& state) {
  const auto& names = Names();
  static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();
  sim::NameSimilarityOptions options;
  options.synonyms = &kTable;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::NameSimilarity(a, b, options));
    ++i;
  }
}
BENCHMARK(BM_CompositeNameSimilarity);

}  // namespace

// The bounds computation itself must be negligible next to matching — the
// paper's pitch is "quick evaluation of many parameter settings". Scaling
// in the number of thresholds:

#include "bounds/incremental_bounds.h"

namespace {

void BM_IncrementalBounds(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  bounds::BoundsInput input;
  double a1 = 0, t1 = 0, a2 = 0;
  for (size_t i = 0; i < n; ++i) {
    double inc_a1 = 1.0 + rng.UniformDouble() * 50.0;
    double inc_t1 = rng.UniformDouble() * inc_a1;
    a1 += inc_a1;
    t1 += inc_t1;
    a2 += rng.UniformDouble() * inc_a1;
    input.thresholds.push_back(static_cast<double>(i + 1));
    input.s1_answers.push_back(a1);
    input.s1_correct.push_back(t1);
    input.s2_answers.push_back(a2);
  }
  input.total_correct = t1 + 1.0;
  for (auto _ : state) {
    auto curve = bounds::ComputeIncrementalBounds(input);
    benchmark::DoNotOptimize(curve);
  }
  state.counters["thresholds"] = static_cast<double>(n);
}
BENCHMARK(BM_IncrementalBounds)->Arg(25)->Arg(250)->Arg(2500);

}  // namespace
