// Perf-2: throughput of the similarity measures that make up the objective
// function Δ. These dominate matcher run time (they sit in the innermost
// loop before caching), so their cost motivates both the name-cost cache
// and the paper's broader efficiency agenda.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sim/edit_distance.h"
#include "sim/jaro_winkler.h"
#include "sim/name_similarity.h"
#include "sim/ngram.h"
#include "sim/prepared_kernel.h"
#include "sim/token_similarity.h"
#include "synth/vocabulary.h"

namespace {

using namespace smb;

std::vector<std::string> MakeNames(size_t n) {
  synth::Vocabulary vocab = synth::Vocabulary::ForDomain(
      synth::Domain::kECommerce);
  Rng rng(42);
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(vocab.RandomElementName(&rng));
  }
  return names;
}

const std::vector<std::string>& Names() {
  static const std::vector<std::string> kNames = MakeNames(256);
  return kNames;
}

sim::NameSimilarityOptions SynonymOptions() {
  static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();
  sim::NameSimilarityOptions options;
  options.synonyms = &kTable;
  return options;
}

const std::vector<sim::PreparedName>& PreparedNames() {
  static const std::vector<sim::PreparedName> kPrepared = [] {
    sim::NameSimilarityOptions options = SynonymOptions();
    std::vector<sim::PreparedName> prepared;
    prepared.reserve(Names().size());
    for (const std::string& name : Names()) {
      prepared.push_back(sim::PrepareName(name, options));
    }
    return prepared;
  }();
  return kPrepared;
}

void BM_Levenshtein(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::LevenshteinSimilarity(a, b));
    ++i;
  }
}
BENCHMARK(BM_Levenshtein);

void BM_DamerauLevenshtein(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::DamerauLevenshteinSimilarity(a, b));
    ++i;
  }
}
BENCHMARK(BM_DamerauLevenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::JaroWinklerSimilarity(a, b));
    ++i;
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_TrigramDice(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::NgramDiceSimilarity(a, b));
    ++i;
  }
}
BENCHMARK(BM_TrigramDice);

void BM_TokenSimilarity(benchmark::State& state) {
  const auto& names = Names();
  static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();
  sim::TokenSimilarityOptions options;
  options.synonyms = &kTable;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::TokenNameSimilarity(a, b, options));
    ++i;
  }
}
BENCHMARK(BM_TokenSimilarity);

void BM_CompositeNameSimilarity(benchmark::State& state) {
  const auto& names = Names();
  static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();
  sim::NameSimilarityOptions options;
  options.synonyms = &kTable;
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::NameSimilarity(a, b, options));
    ++i;
  }
}
BENCHMARK(BM_CompositeNameSimilarity);

// --- Allocation-free kernel vs the legacy per-pair path ----------------
//
// The pairwise benches score *prepared* names — the shape of every hot
// loop (dense pool fill, candidate scoring): preparation is amortized over
// thousands of pairs, so per-pair cost is what matters. "Legacy" is the
// pre-kernel scorer kept as `internal::ScoreFoldedReference` (it
// heap-allocates the padded-trigram string multisets, DP rows, Jaro flags
// and token pairs on every call); "kernel" is the bit-identical
// allocation-free scorer. `tools/bench_diff.py BENCH_sim.json
// BENCH_sim.json --a-filter Legacy --b-filter Kernel --strip 'Legacy|Kernel'`
// prints the per-pair speedups from one snapshot.

void BM_NameSimilarityPairLegacy(benchmark::State& state) {
  const auto& prepared = PreparedNames();
  sim::NameSimilarityOptions options = SynonymOptions();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = prepared[i % prepared.size()];
    const auto& b = prepared[(i * 7 + 3) % prepared.size()];
    benchmark::DoNotOptimize(sim::internal::ScoreFoldedReference(
        a.folded, b.folded, &a.tokens, &b.tokens, options));
    ++i;
  }
}
BENCHMARK(BM_NameSimilarityPairLegacy);

void BM_NameSimilarityPairKernel(benchmark::State& state) {
  const auto& prepared = PreparedNames();
  sim::NameSimilarityOptions options = SynonymOptions();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = prepared[i % prepared.size()];
    const auto& b = prepared[(i * 7 + 3) % prepared.size()];
    benchmark::DoNotOptimize(sim::NameSimilarity(a, b, options));
    ++i;
  }
}
BENCHMARK(BM_NameSimilarityPairKernel);

void BM_NameDistancePairLegacy(benchmark::State& state) {
  const auto& prepared = PreparedNames();
  sim::NameSimilarityOptions options = SynonymOptions();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = prepared[i % prepared.size()];
    const auto& b = prepared[(i * 7 + 3) % prepared.size()];
    benchmark::DoNotOptimize(
        1.0 - sim::internal::ScoreFoldedReference(a.folded, b.folded,
                                                  &a.tokens, &b.tokens,
                                                  options));
    ++i;
  }
}
BENCHMARK(BM_NameDistancePairLegacy);

void BM_NameDistancePairKernel(benchmark::State& state) {
  const auto& prepared = PreparedNames();
  sim::NameSimilarityOptions options = SynonymOptions();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = prepared[i % prepared.size()];
    const auto& b = prepared[(i * 7 + 3) % prepared.size()];
    benchmark::DoNotOptimize(sim::NameDistance(a, b, options));
    ++i;
  }
}
BENCHMARK(BM_NameDistancePairKernel);

// One query against a block of targets — the dense-fill row pattern where
// the query-side PEQ table loads once. Reported per pair.
void BM_NameSimilarityBlockKernel(benchmark::State& state) {
  const auto& prepared = PreparedNames();
  sim::NameSimilarityOptions options = SynonymOptions();
  std::vector<const sim::PreparedName*> targets;
  targets.reserve(prepared.size());
  for (const sim::PreparedName& p : prepared) targets.push_back(&p);
  std::vector<sim::CutoffScore> scores(targets.size());
  size_t i = 0;
  for (auto _ : state) {
    const auto& query = prepared[i % prepared.size()];
    sim::ScoreBlock(query, targets, options, 0.0, scores.data());
    benchmark::DoNotOptimize(scores.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(targets.size()));
}
BENCHMARK(BM_NameSimilarityBlockKernel);

// Threshold-aware block scoring at a selective cutoff — the candidate
// generator's regime, where most targets die on the cheap bounds.
void BM_NameSimilarityBlockCutoff(benchmark::State& state) {
  const auto& prepared = PreparedNames();
  sim::NameSimilarityOptions options = SynonymOptions();
  std::vector<const sim::PreparedName*> targets;
  targets.reserve(prepared.size());
  for (const sim::PreparedName& p : prepared) targets.push_back(&p);
  std::vector<sim::CutoffScore> scores(targets.size());
  const double min_score = 0.7;
  size_t pruned = 0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& query = prepared[i % prepared.size()];
    sim::ScoreBlock(query, targets, options, min_score, scores.data());
    for (const sim::CutoffScore& s : scores) pruned += s.exact ? 0 : 1;
    benchmark::DoNotOptimize(scores.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(targets.size()));
  state.counters["pruned_frac"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(pruned) /
                (static_cast<double>(state.iterations()) *
                 static_cast<double>(targets.size()));
}
BENCHMARK(BM_NameSimilarityBlockCutoff);

// The per-pair baseline for the vectorized block above: identical scores
// and pruning decisions, but each target goes through the scalar
// ScoreWithCutoff path one at a time. CI gates
// BlockCutoffPairwise / BlockCutoff ≥ 2 via tools/bench_diff.py — the
// SIMD batching must stay worth at least 2x on this workload.
void BM_NameSimilarityBlockCutoffPairwise(benchmark::State& state) {
  const auto& prepared = PreparedNames();
  sim::NameSimilarityOptions options = SynonymOptions();
  std::vector<sim::CutoffScore> scores(prepared.size());
  const double min_score = 0.7;
  size_t i = 0;
  for (auto _ : state) {
    const auto& query = prepared[i % prepared.size()];
    for (size_t t = 0; t < prepared.size(); ++t) {
      scores[t] = sim::ScoreWithCutoff(query, prepared[t], options,
                                       min_score);
    }
    benchmark::DoNotOptimize(scores.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(prepared.size()));
}
BENCHMARK(BM_NameSimilarityBlockCutoffPairwise);

// The bit-parallel Levenshtein against the two-row reference DP.
void BM_LevenshteinKernel(benchmark::State& state) {
  const auto& names = Names();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = names[i % names.size()];
    const auto& b = names[(i * 7 + 3) % names.size()];
    benchmark::DoNotOptimize(sim::KernelLevenshteinDistance(a, b));
    ++i;
  }
}
BENCHMARK(BM_LevenshteinKernel);

// Preparation itself (fold + tokenize + intern + PEQ compile) — the
// one-time cost the per-pair benches amortize away.
void BM_PrepareName(benchmark::State& state) {
  const auto& names = Names();
  sim::NameSimilarityOptions options = SynonymOptions();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::PrepareName(names[i % names.size()], options));
    ++i;
  }
}
BENCHMARK(BM_PrepareName);

}  // namespace

// The bounds computation itself must be negligible next to matching — the
// paper's pitch is "quick evaluation of many parameter settings". Scaling
// in the number of thresholds:

#include "bounds/incremental_bounds.h"

namespace {

void BM_IncrementalBounds(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  bounds::BoundsInput input;
  double a1 = 0, t1 = 0, a2 = 0;
  for (size_t i = 0; i < n; ++i) {
    double inc_a1 = 1.0 + rng.UniformDouble() * 50.0;
    double inc_t1 = rng.UniformDouble() * inc_a1;
    a1 += inc_a1;
    t1 += inc_t1;
    a2 += rng.UniformDouble() * inc_a1;
    input.thresholds.push_back(static_cast<double>(i + 1));
    input.s1_answers.push_back(a1);
    input.s1_correct.push_back(t1);
    input.s2_answers.push_back(a2);
  }
  input.total_correct = t1 + 1.0;
  for (auto _ : state) {
    auto curve = bounds::ComputeIncrementalBounds(input);
    benchmark::DoNotOptimize(curve);
  }
  state.counters["thresholds"] = static_cast<double>(n);
}
BENCHMARK(BM_IncrementalBounds)->Arg(25)->Arg(250)->Arg(2500);

}  // namespace
