// Ablation Abl-5: collection difficulty. The bounds technique takes S1's
// effectiveness as given; this bench shows how the synthetic collection's
// perturbation strength shapes that input curve — and that the bounds stay
// sound at every difficulty level (the technique itself is
// difficulty-agnostic).

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/table.h"
#include "eval/ir_metrics.h"
#include "eval/pr_curve.h"
#include "match/beam_matcher.h"
#include "match/exhaustive_matcher.h"
#include "synth/generator.h"

int main() {
  using namespace smb;
  std::cout << "=== Ablation: collection difficulty (perturbation strength) "
               "===\n\n";

  static const sim::SynonymTable kSynonyms = sim::SynonymTable::Builtin();
  match::MatchOptions options;
  options.delta_threshold = 0.25;
  options.objective.name.synonyms = &kSynonyms;
  std::vector<double> thresholds = eval::UniformThresholds(0.25, 0.01);

  TextTable table({"strength", "|H|", "|A1|@δmax", "R1@δmax", "AP(S1)",
                   "bounds sound?"});
  for (double strength : {0.25, 0.5, 1.0, 1.5, 2.0}) {
    Rng rng(314159);  // same seed: only the strength varies
    synth::SynthOptions sopts;
    sopts.num_schemas = 120;
    sopts.plant_perturb.strength = strength;
    auto collection = synth::GenerateProblem(4, sopts, &rng);
    if (!collection.ok()) {
      std::cerr << "collection: " << collection.status() << "\n";
      return 1;
    }
    match::ExhaustiveMatcher s1;
    auto a1 = s1.Match(collection->query, collection->repository, options);
    if (!a1.ok()) {
      std::cerr << "S1: " << a1.status() << "\n";
      return 1;
    }
    auto curve = eval::PrCurve::Measure(*a1, collection->truth, thresholds);
    if (!curve.ok()) {
      std::cerr << "curve: " << curve.status() << "\n";
      return 1;
    }
    match::BeamMatcher beam(match::BeamMatcherOptions{6});
    auto a2 = beam.Match(collection->query, collection->repository, options);
    if (!a2.ok()) {
      std::cerr << "S2: " << a2.status() << "\n";
      return 1;
    }
    auto input = bounds::InputFromMeasuredCurve(*curve,
                                                a2->SizesAt(thresholds));
    if (!input.ok()) {
      std::cerr << "input: " << input.status() << "\n";
      return 1;
    }
    auto bounds_curve = bounds::ComputeIncrementalBounds(*input);
    if (!bounds_curve.ok()) {
      std::cerr << "bounds: " << bounds_curve.status() << "\n";
      return 1;
    }
    bool sound = true;
    for (size_t i = 0; i < thresholds.size(); ++i) {
      eval::ConfusionCounts actual =
          eval::Evaluate(*a2, collection->truth, thresholds[i]);
      double p = eval::Precision(actual);
      double r = eval::Recall(actual);
      const auto& b = bounds_curve->points[i];
      if (p < b.worst.precision - 1e-9 || p > b.best.precision + 1e-9 ||
          r < b.worst.recall - 1e-9 || r > b.best.recall + 1e-9) {
        sound = false;
      }
    }
    table.AddRow({FormatDouble(strength, 2),
                  std::to_string(collection->truth.size()),
                  std::to_string(a1->size()),
                  FormatDouble(curve->points().back().recall, 3),
                  FormatDouble(eval::AveragePrecision(*a1, collection->truth),
                               3),
                  sound ? "yes" : "VIOLATED"});
  }
  table.Print(std::cout);
  std::cout << "\nreading: heavier perturbation pushes correct answers to "
               "higher Δ (recall at\nδmax falls, AP falls), but the bounds "
               "stay sound at every difficulty level.\n";
  return 0;
}
