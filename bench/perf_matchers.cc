// Perf-1: matcher wall time vs repository size — the paper's efficiency
// motivation (§1, §2.3: "exhaustive search of schema mappings needs
// exponential time; efficient techniques restrict the search space").
// Compares the exhaustive system against its two non-exhaustive
// improvements on identical collections.

#include <map>

#include <benchmark/benchmark.h>

#include "match/beam_matcher.h"
#include "match/cluster_matcher.h"
#include "match/exhaustive_matcher.h"
#include "synth/generator.h"

namespace {

using namespace smb;

struct Setup {
  synth::SyntheticCollection collection;
  match::MatchOptions mopts;
  std::shared_ptr<const cluster::ElementClustering> clustering;
};

const Setup& GetSetup(size_t num_schemas) {
  static std::map<size_t, Setup> cache;
  auto it = cache.find(num_schemas);
  if (it != cache.end()) return it->second;

  Rng rng(1234 + num_schemas);
  synth::SynthOptions sopts;
  sopts.num_schemas = num_schemas;
  Setup setup;
  setup.collection = synth::GenerateProblem(4, sopts, &rng).value();
  static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();
  setup.mopts.delta_threshold = 0.25;
  setup.mopts.objective.name.synonyms = &kTable;
  cluster::ElementClusteringOptions copts;
  copts.num_clusters = 16;
  setup.clustering = std::make_shared<cluster::ElementClustering>(
      cluster::ElementClustering::Build(setup.collection.repository, copts,
                                        &rng)
          .value());
  return cache.emplace(num_schemas, std::move(setup)).first->second;
}

void BM_ExhaustiveMatcher(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  match::ExhaustiveMatcher matcher;
  size_t answers = 0;
  for (auto _ : state) {
    auto result = matcher.Match(setup.collection.query,
                                setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["elements"] =
      static_cast<double>(setup.collection.repository.total_elements());
}
BENCHMARK(BM_ExhaustiveMatcher)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_BeamMatcher(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  match::BeamMatcher matcher(match::BeamMatcherOptions{6});
  size_t answers = 0;
  for (auto _ : state) {
    auto result = matcher.Match(setup.collection.query,
                                setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_BeamMatcher)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_ClusterMatcher(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  match::ClusterMatcherOptions copts;
  copts.top_m_clusters = 10;
  match::ClusterMatcher matcher(setup.clustering, copts);
  size_t answers = 0;
  for (auto _ : state) {
    auto result = matcher.Match(setup.collection.query,
                                setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_ClusterMatcher)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_ClusteringBuild(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(99);
    cluster::ElementClusteringOptions copts;
    copts.num_clusters = 16;
    auto clustering = cluster::ElementClustering::Build(
        setup.collection.repository, copts, &rng);
    benchmark::DoNotOptimize(clustering);
  }
}
BENCHMARK(BM_ClusteringBuild)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
