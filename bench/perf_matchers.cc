// Perf-1: matcher wall time vs repository size — the paper's efficiency
// motivation (§1, §2.3: "exhaustive search of schema mappings needs
// exponential time; efficient techniques restrict the search space").
// Compares the exhaustive system against its two non-exhaustive
// improvements on identical collections.

#include <cstdio>
#include <cstdlib>
#include <map>

#include <benchmark/benchmark.h>

#include <filesystem>

#include "engine/batch_match_engine.h"
#include "index/prepared_repository.h"
#include "index/snapshot.h"
#include "match/beam_matcher.h"
#include "match/cluster_matcher.h"
#include "match/exhaustive_matcher.h"
#include "match/matcher_factory.h"
#include "match/topk_matcher.h"
#include "synth/generator.h"

namespace {

using namespace smb;

struct Setup {
  synth::SyntheticCollection collection;
  match::MatchOptions mopts;
  std::shared_ptr<const cluster::ElementClustering> clustering;
};

const Setup& GetSetup(size_t num_schemas) {
  static std::map<size_t, Setup> cache;
  auto it = cache.find(num_schemas);
  if (it != cache.end()) return it->second;

  Rng rng(1234 + num_schemas);
  synth::SynthOptions sopts;
  sopts.num_schemas = num_schemas;
  Setup setup;
  setup.collection = synth::GenerateProblem(4, sopts, &rng).value();
  static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();
  setup.mopts.delta_threshold = 0.25;
  setup.mopts.objective.name.synonyms = &kTable;
  cluster::ElementClusteringOptions copts;
  copts.num_clusters = 16;
  setup.clustering = std::make_shared<cluster::ElementClustering>(
      cluster::ElementClustering::Build(setup.collection.repository, copts,
                                        &rng)
          .value());
  return cache.emplace(num_schemas, std::move(setup)).first->second;
}

void BM_ExhaustiveMatcher(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  match::ExhaustiveMatcher matcher;
  size_t answers = 0;
  for (auto _ : state) {
    auto result = matcher.Match(setup.collection.query,
                                setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["elements"] =
      static_cast<double>(setup.collection.repository.total_elements());
}
BENCHMARK(BM_ExhaustiveMatcher)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_BeamMatcher(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  match::BeamMatcher matcher(match::BeamMatcherOptions{6});
  size_t answers = 0;
  for (auto _ : state) {
    auto result = matcher.Match(setup.collection.query,
                                setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_BeamMatcher)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_ClusterMatcher(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  match::ClusterMatcherOptions copts;
  copts.top_m_clusters = 10;
  match::ClusterMatcher matcher(setup.clustering, copts);
  size_t answers = 0;
  for (auto _ : state) {
    auto result = matcher.Match(setup.collection.query,
                                setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_ClusterMatcher)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// --- Sharded batch engine vs the single-threaded seed path ---------------
//
// Same matcher, same collection; the only variable is the thread count of
// the batch engine (Arg). Arg(0) is the direct single-threaded matcher run
// without the engine — the seed baseline. Each batch variant asserts once
// that its answer set is identical (keys and Δ) to the baseline, so the
// reported speedup is for *identical* output.

void CheckAnswersIdentical(const match::AnswerSet& batch,
                           const match::AnswerSet& direct,
                           const char* label) {
  bool same = batch.size() == direct.size();
  for (size_t i = 0; same && i < batch.size(); ++i) {
    const match::Mapping& a = batch.mappings()[i];
    const match::Mapping& b = direct.mappings()[i];
    same = a.key() == b.key() && a.delta == b.delta;
  }
  if (!same) {
    std::fprintf(stderr,
                 "%s: sharded answers differ from single-threaded answers "
                 "(%zu vs %zu)\n",
                 label, batch.size(), direct.size());
    std::abort();
  }
}

void BM_TopKMatcherSingleThread(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  match::TopKMatcher matcher(match::TopKMatcherOptions{10, 100000});
  size_t answers = 0;
  for (auto _ : state) {
    auto result = matcher.Match(setup.collection.query,
                                setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_TopKMatcherSingleThread)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchTopKMatcher(benchmark::State& state) {
  const size_t kSchemas = 400;
  const Setup& setup = GetSetup(kSchemas);
  match::TopKMatcher matcher(match::TopKMatcherOptions{10, 100000});
  engine::BatchMatchOptions bopts;
  bopts.num_threads = static_cast<size_t>(state.range(0));
  engine::BatchMatchEngine batch(bopts);

  auto direct = matcher.Match(setup.collection.query,
                              setup.collection.repository, setup.mopts);
  auto check = batch.Run(matcher, setup.collection.query,
                         setup.collection.repository, setup.mopts);
  CheckAnswersIdentical(*check, *direct, "BM_BatchTopKMatcher");

  size_t answers = 0;
  for (auto _ : state) {
    auto result = batch.Run(matcher, setup.collection.query,
                            setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_BatchTopKMatcher)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchExhaustiveMatcher(benchmark::State& state) {
  const size_t kSchemas = 400;
  const Setup& setup = GetSetup(kSchemas);
  match::ExhaustiveMatcher matcher;
  engine::BatchMatchOptions bopts;
  bopts.num_threads = static_cast<size_t>(state.range(0));
  engine::BatchMatchEngine batch(bopts);

  auto direct = matcher.Match(setup.collection.query,
                              setup.collection.repository, setup.mopts);
  auto check = batch.Run(matcher, setup.collection.query,
                         setup.collection.repository, setup.mopts);
  CheckAnswersIdentical(*check, *direct, "BM_BatchExhaustiveMatcher");

  size_t answers = 0;
  for (auto _ : state) {
    auto result = batch.Run(matcher, setup.collection.query,
                            setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_BatchExhaustiveMatcher)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SimilarityPoolBuild(benchmark::State& state) {
  const Setup& setup = GetSetup(400);
  for (auto _ : state) {
    auto pool = engine::SimilarityMatrixPool::Build(
        setup.collection.query, setup.collection.repository,
        setup.mopts.objective, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(pool);
  }
}
BENCHMARK(BM_SimilarityPoolBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Sparse candidate index vs the dense pool --------------------------
//
// The prepare-once/serve-many story: BM_PreparedRepositoryBuild is the
// one-time index cost; BM_DensePerQuery is the per-query cost of the dense
// path (pool fill + match); BM_SparsePerQuery/C is the per-query cost of
// candidate generation + sparse match over a prebuilt index, at candidate
// cutoffs C ∈ {4, 16, 64}. Each sparse variant reports the recall of the
// dense run's answers (counter "recall") and whether the dense top-1
// answer survived (counter "top1"), so the speedup is priced in measured
// effectiveness. Both paths run the factory-made exhaustive matcher on one
// thread over the 200-schema collection — the only variable is the index.

constexpr size_t kIndexSchemas = 200;

void BM_PreparedRepositoryBuild(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto prepared = index::PreparedRepository::Build(
        setup.collection.repository, setup.mopts.objective.name);
    benchmark::DoNotOptimize(prepared);
  }
  state.counters["elements"] =
      static_cast<double>(setup.collection.repository.total_elements());
}
BENCHMARK(BM_PreparedRepositoryBuild)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// The persistence counterpart of BM_PreparedRepositoryBuild: deserialize
// the same index from its snapshot instead of re-deriving it from the
// schemas. The ratio of the two is the "restart tax" a resident serve
// process avoids paying (CI gates it at >= 2.5x via tools/bench_diff.py;
// ~2.9x measured single-core, more with cores for the chunked decode).
void BM_SnapshotLoad(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  auto prepared = index::PreparedRepository::Build(
                      setup.collection.repository, setup.mopts.objective.name)
                      .value();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("smb_bench_snapshot_" + std::to_string(state.range(0)) + ".bin"))
          .string();
  if (auto saved = index::SaveSnapshot(prepared, path); !saved.ok()) {
    state.SkipWithError(saved.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto loaded = index::LoadSnapshot(path, setup.collection.repository,
                                      setup.mopts.objective.name,
                                      /*num_threads=*/0);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(loaded);
  }
  std::error_code ec;
  state.counters["bytes"] =
      static_cast<double>(std::filesystem::file_size(path, ec));
  std::filesystem::remove(path, ec);
}
BENCHMARK(BM_SnapshotLoad)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// Prices one sparse engine configuration against the dense run at the
// same options: reports the answers produced, the candidate entries the
// index generated ("candidates" — the budget), the certified completeness
// ("bound") and the measured recall/top-1 retention of the dense answers.
// Shared by the fixed-C and adaptive benchmarks.
void ReportSparseCounters(benchmark::State& state, const Setup& setup,
                          const match::MatchOptions& mopts,
                          engine::BatchMatchEngine& batch,
                          const match::Matcher& matcher) {
  engine::BatchMatchEngine dense_engine;
  auto dense = dense_engine.Run(matcher, setup.collection.query,
                                setup.collection.repository, mopts);
  engine::BatchMatchStats stats;
  auto sparse = batch.Run(matcher, setup.collection.query,
                          setup.collection.repository, mopts, &stats);
  auto in_sparse = [&](const match::Mapping::Key& key) {
    for (const match::Mapping& candidate : sparse->mappings()) {
      if (candidate.key() == key) return true;
    }
    return false;
  };
  size_t retained = 0;
  for (const match::Mapping& mapping : dense->mappings()) {
    if (in_sparse(mapping.key())) ++retained;
  }
  state.counters["answers"] = static_cast<double>(sparse->size());
  state.counters["candidates"] =
      static_cast<double>(stats.match.candidates_generated);
  state.counters["bound"] = stats.provably_complete_fraction;
  state.counters["recall"] =
      dense->empty() ? 1.0
                     : static_cast<double>(retained) /
                           static_cast<double>(dense->size());
  state.counters["top1"] =
      (dense->empty() || in_sparse(dense->mappings().front().key())) ? 1.0
                                                                    : 0.0;
}

void BM_DensePerQuery(benchmark::State& state) {
  const Setup& setup = GetSetup(kIndexSchemas);
  auto matcher =
      match::MakeMatcher("exhaustive", setup.collection.repository).value();
  engine::BatchMatchEngine batch;
  size_t answers = 0;
  for (auto _ : state) {
    auto result = batch.Run(*matcher, setup.collection.query,
                            setup.collection.repository, setup.mopts);
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_DensePerQuery)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SparsePerQuery(benchmark::State& state) {
  const Setup& setup = GetSetup(kIndexSchemas);
  auto matcher =
      match::MakeMatcher("exhaustive", setup.collection.repository).value();
  // Built once, amortized over every query — outside the timed loop.
  auto prepared = index::PreparedRepository::Build(
                      setup.collection.repository,
                      setup.mopts.objective.name)
                      .value();
  engine::BatchMatchOptions bopts;
  bopts.candidate_limit = static_cast<size_t>(state.range(0));
  bopts.prepared_repository = &prepared;
  engine::BatchMatchEngine batch(bopts);

  for (auto _ : state) {
    auto result = batch.Run(*matcher, setup.collection.query,
                            setup.collection.repository, setup.mopts);
    benchmark::DoNotOptimize(result);
  }
  ReportSparseCounters(state, setup, setup.mopts, batch, *matcher);
}
BENCHMARK(BM_SparsePerQuery)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Block-max (WAND) vs classic postings traversal ---------------------
//
// Candidate generation alone (no matching), same prebuilt index and
// limits: the only variable is the trigram traversal. The classic path
// walks and scores every posting of every query gram; the block-max path
// skips posting blocks that provably cannot enter the top-C, so it wins
// exactly where postings are long and C is small. Selection is identical
// by construction (tests/index/block_max_test.cc pins it).

void BM_CandidateGenClassic(benchmark::State& state) {
  const Setup& setup = GetSetup(kIndexSchemas);
  auto prepared = index::PreparedRepository::Build(
                      setup.collection.repository,
                      setup.mopts.objective.name)
                      .value();
  index::CandidateGenerator generator(&prepared, setup.mopts.objective);
  generator.set_block_max_enabled(false);
  const auto limit = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto candidates = generator.Generate(setup.collection.query, limit);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_CandidateGenClassic)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CandidateGenBlockMax(benchmark::State& state) {
  const Setup& setup = GetSetup(kIndexSchemas);
  auto prepared = index::PreparedRepository::Build(
                      setup.collection.repository,
                      setup.mopts.objective.name)
                      .value();
  index::CandidateGenerator generator(&prepared, setup.mopts.objective);
  const auto limit = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto candidates = generator.Generate(setup.collection.query, limit);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_CandidateGenBlockMax)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Wide variant: few schemas, each several hundred elements, so a cell's
// posting ranges span many 64-posting blocks — the regime the block
// metadata exists for. (The narrow collection above never leaves the
// dense small-cell fast path; this one pivots and skips.)
const Setup& GetWideSetup() {
  static const Setup* setup = [] {
    Rng rng(4321);
    synth::SynthOptions sopts;
    sopts.num_schemas = 12;
    sopts.min_schema_elements = 400;
    sopts.max_schema_elements = 600;
    auto* s = new Setup;
    s->collection = synth::GenerateProblem(4, sopts, &rng).value();
    static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();
    s->mopts.delta_threshold = 0.25;
    s->mopts.objective.name.synonyms = &kTable;
    return s;
  }();
  return *setup;
}

void BM_CandidateGenClassicWide(benchmark::State& state) {
  const Setup& setup = GetWideSetup();
  auto prepared = index::PreparedRepository::Build(
                      setup.collection.repository,
                      setup.mopts.objective.name)
                      .value();
  index::CandidateGenerator generator(&prepared, setup.mopts.objective);
  generator.set_block_max_enabled(false);
  const auto limit = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto candidates = generator.Generate(setup.collection.query, limit);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_CandidateGenClassicWide)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CandidateGenBlockMaxWide(benchmark::State& state) {
  const Setup& setup = GetWideSetup();
  auto prepared = index::PreparedRepository::Build(
                      setup.collection.repository,
                      setup.mopts.objective.name)
                      .value();
  index::CandidateGenerator generator(&prepared, setup.mopts.objective);
  const auto limit = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto candidates = generator.Generate(setup.collection.query, limit);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_CandidateGenBlockMaxWide)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Bound-driven adaptive budgets vs a fixed candidate budget ----------
//
// The adaptive policy grows each (query element, schema) cell only until
// the skip-bound certifies the target completeness, so easy cells stop at
// C=4 while hard ones climb. Both variants run at a tight Δ threshold
// (0.02 — the regime where the analytic bound tiers can certify cells
// without full coverage; at loose thresholds certification degenerates to
// full coverage and a fixed C is the right tool). Counters price the
// comparison: "candidates" (entries generated — the budget), "bound" (the
// certified completeness), "recall"/"top1" (measured against the dense run
// at the same threshold). CI gates candidates(Fixed/64) /
// candidates(Adaptive) ≥ 2 via tools/bench_diff.py --metric candidates.

constexpr double kTightDelta = 0.02;

match::MatchOptions TightDeltaOptions(const Setup& setup) {
  match::MatchOptions mopts = setup.mopts;
  mopts.delta_threshold = kTightDelta;
  return mopts;
}

void BM_FixedPerQuery(benchmark::State& state) {
  const Setup& setup = GetSetup(kIndexSchemas);
  const match::MatchOptions mopts = TightDeltaOptions(setup);
  auto matcher =
      match::MakeMatcher("exhaustive", setup.collection.repository).value();
  auto prepared = index::PreparedRepository::Build(
                      setup.collection.repository, mopts.objective.name)
                      .value();
  engine::BatchMatchOptions bopts;
  bopts.candidate_limit = static_cast<size_t>(state.range(0));
  bopts.prepared_repository = &prepared;
  engine::BatchMatchEngine batch(bopts);
  for (auto _ : state) {
    auto result = batch.Run(*matcher, setup.collection.query,
                            setup.collection.repository, mopts);
    benchmark::DoNotOptimize(result);
  }
  ReportSparseCounters(state, setup, mopts, batch, *matcher);
}
BENCHMARK(BM_FixedPerQuery)->Arg(64)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_AdaptivePerQuery(benchmark::State& state) {
  const Setup& setup = GetSetup(kIndexSchemas);
  const match::MatchOptions mopts = TightDeltaOptions(setup);
  auto matcher =
      match::MakeMatcher("exhaustive", setup.collection.repository).value();
  auto prepared = index::PreparedRepository::Build(
                      setup.collection.repository, mopts.objective.name)
                      .value();
  engine::BatchMatchOptions bopts;
  index::AdaptiveCandidatePolicy policy;
  policy.min_provable_completeness = 0.9;
  bopts.adaptive = policy;
  bopts.prepared_repository = &prepared;
  engine::BatchMatchEngine batch(bopts);
  for (auto _ : state) {
    auto result = batch.Run(*matcher, setup.collection.query,
                            setup.collection.repository, mopts);
    benchmark::DoNotOptimize(result);
  }
  ReportSparseCounters(state, setup, mopts, batch, *matcher);
}
BENCHMARK(BM_AdaptivePerQuery)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ClusteringBuild(benchmark::State& state) {
  const Setup& setup = GetSetup(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(99);
    cluster::ElementClusteringOptions copts;
    copts.num_clusters = 16;
    auto clustering = cluster::ElementClustering::Build(
        setup.collection.repository, copts, &rng);
    benchmark::DoNotOptimize(clustering);
  }
}
BENCHMARK(BM_ClusteringBuild)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
