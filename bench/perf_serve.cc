// Perf-6: serve frontend throughput — requests per second through the full
// network stack (loopback TCP, line protocol, bounded admission queue,
// worker pool, concurrent result cache) as a function of the number of
// concurrent client connections. The cache makes the steady state
// replay-dominated, so this measures the serving overhead the paper's
// effectiveness certificates ride on, not matcher time.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "engine/query_cache.h"
#include "serve/replay_client.h"
#include "io/csv.h"
#include "schema/text_format.h"
#include "serve/match_service.h"
#include "serve/server.h"
#include "serve/serving_index.h"
#include "synth/generator.h"

namespace {

using namespace smb;

/// One running server over a synthetic collection, shared by all
/// iterations of one benchmark run.
struct ServeSetup {
  synth::SyntheticCollection collection;
  std::unique_ptr<engine::QueryResultCache> cache;
  std::unique_ptr<serve::MatchService> service;
  std::unique_ptr<serve::MatchServer> server;
  std::string query_path;
};

ServeSetup* GetServeSetup(size_t num_schemas) {
  static std::map<size_t, std::unique_ptr<ServeSetup>> cache;
  auto it = cache.find(num_schemas);
  if (it != cache.end()) return it->second.get();

  auto setup = std::make_unique<ServeSetup>();
  Rng rng(1234 + num_schemas);
  synth::SynthOptions sopts;
  sopts.num_schemas = num_schemas;
  setup->collection = synth::GenerateProblem(4, sopts, &rng).value();
  static const sim::SynonymTable kTable = sim::SynonymTable::Builtin();

  setup->cache = std::make_unique<engine::QueryResultCache>(64);

  serve::MatchServiceConfig config;
  config.match_options.delta_threshold = 0.25;
  config.match_options.objective.name.synonyms = &kTable;
  config.engine_options.num_threads = 1;
  config.engine_options.candidate_limit = 8;
  config.cache = setup->cache.get();
  // The index must be built with the same name options the queries match
  // with (folding and synonyms feed the candidate generator).
  serve::ServingIndexOptions index_options;
  index_options.name_options = config.match_options.objective.name;
  auto index = serve::BuildServingIndex(setup->collection.repository,
                                        index_options, /*generation=*/1);
  if (!index.ok()) {
    std::fprintf(stderr, "serve bench: %s\n",
                 index.status().ToString().c_str());
    std::abort();
  }
  setup->service =
      std::make_unique<serve::MatchService>(*index, std::move(config));

  serve::MatchServerConfig server_config;
  server_config.workers = 2;
  server_config.queue_depth = 32;
  setup->server = std::make_unique<serve::MatchServer>(setup->service.get(),
                                                       server_config);
  if (Status st = setup->server->Start(); !st.ok()) {
    std::fprintf(stderr, "serve bench: %s\n", st.ToString().c_str());
    std::abort();
  }

  setup->query_path = "/tmp/perf_serve_query.txt";
  if (Status st = io::WriteTextFile(
          setup->query_path,
          schema::WriteSchemaText(setup->collection.query));
      !st.ok()) {
    std::fprintf(stderr, "serve bench: %s\n", st.ToString().c_str());
    std::abort();
  }
  return cache.emplace(num_schemas, std::move(setup)).first->second.get();
}

/// Requests/second over N concurrent connections (state.range(0)), 16
/// requests per connection per iteration. UseRealTime: the work happens in
/// server threads, not this one.
void BM_ServeThroughput(benchmark::State& state) {
  ServeSetup* setup = GetServeSetup(100);
  const size_t connections = static_cast<size_t>(state.range(0));
  constexpr size_t kRequestsPerConnection = 16;
  std::vector<std::string> requests(connections * kRequestsPerConnection,
                                    "match " + setup->query_path);

  serve::ReplayClientOptions options;
  options.port = setup->server->port();
  options.connections = connections;
  uint64_t served = 0;
  for (auto _ : state) {
    auto outcome = serve::ReplayRequests(options, requests);
    if (!outcome.ok() || outcome->err_count > 0) {
      if (!outcome.ok()) {
        std::fprintf(stderr, "serve bench: %s\n",
                     outcome.status().ToString().c_str());
      } else {
        for (const std::string& line : outcome->responses) {
          if (line.rfind("ok ", 0) != 0) {
            std::fprintf(stderr, "serve bench: %s\n", line.c_str());
            break;
          }
        }
      }
      state.SkipWithError("replay failed");
      break;
    }
    served += outcome->ok_count;
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
  state.counters["connections"] = static_cast<double>(connections);
}
BENCHMARK(BM_ServeThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
