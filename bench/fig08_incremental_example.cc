// Reproduces Figure 8 / §3.2: the incremental worst-case estimation example
// with the paper's exact numbers.
//
//   S1: 40 answers (15 correct) at δ1, 72 (27 correct) at δ2 — P = 3/8.
//   S2: 32 answers at δ1, 48 at δ2.
//
// Expected output (paper):
//   naive worst-case        P(δ1) = 7/32 = 21.9%,  P(δ2) = 1/16 = 6.3%
//   incremental worst-case  P(δ1) = 7/32 = 21.9%,  P(δ2) = 7/48 = 14.6%

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/table.h"

int main() {
  using namespace smb;
  std::cout << "=== Figure 8: incremental worst case estimation example ===\n\n";

  bounds::BoundsInput input;
  input.thresholds = {1.0, 2.0};  // δ1, δ2 (symbolic)
  input.s1_answers = {40.0, 72.0};
  input.s1_correct = {15.0, 27.0};
  input.s2_answers = {32.0, 48.0};
  input.total_correct = 60.0;  // any |H| >= 27; precision is |H|-free

  auto report = bounds::ComputeBoundsReport(input);
  if (!report.ok()) {
    std::cerr << "bounds failed: " << report.status() << "\n";
    return 1;
  }

  std::cout << "inputs (the paper's concrete numbers):\n";
  TextTable inputs({"threshold", "|A1|", "|T1|", "P1", "|A2|", "Â=A2/A1"});
  inputs.AddRow({"δ1", "40", "15", "3/8 (37.5%)", "32", "4/5"});
  inputs.AddRow({"δ2", "72", "27", "3/8 (37.5%)", "48", "2/3"});
  inputs.Print(std::cout);

  std::cout << "\nper-increment view (left part of the figure):\n";
  TextTable increments({"increment", "S1 answers", "S1 correct",
                        "S2 answers", "worst-case S2 correct"});
  increments.AddRow({"0-δ1", "40", "15", "32", "max(0, 32-25) = 7"});
  increments.AddRow({"δ1-δ2", "32", "12", "16", "max(0, 16-20) = 0"});
  increments.Print(std::cout);

  std::cout << "\ncomputed worst-case precision bounds:\n";
  TextTable results({"threshold", "naive (§3.1)", "incremental (§3.2)",
                     "paper"});
  const auto& naive = report->naive.points;
  const auto& incr = report->incremental.points;
  results.AddRow({"δ1",
                  FormatDouble(naive[0].worst.precision, 4) + " (7/32)",
                  FormatDouble(incr[0].worst.precision, 4) + " (7/32)",
                  "21.9%"});
  results.AddRow({"δ2",
                  FormatDouble(naive[1].worst.precision, 4) + " (1/16)",
                  FormatDouble(incr[1].worst.precision, 4) + " (7/48)",
                  "6.3% naive / 14.6% incremental"});
  results.Print(std::cout);

  std::cout << "\nbest-case precision (both algorithms):\n";
  TextTable best({"threshold", "naive", "incremental"});
  best.AddRow({"δ1", FormatDouble(naive[0].best.precision, 4),
               FormatDouble(incr[0].best.precision, 4)});
  best.AddRow({"δ2", FormatDouble(naive[1].best.precision, 4),
               FormatDouble(incr[1].best.precision, 4)});
  best.Print(std::cout);

  bool exact =
      std::abs(incr[0].worst.precision - 7.0 / 32.0) < 1e-12 &&
      std::abs(incr[1].worst.precision - 7.0 / 48.0) < 1e-12 &&
      std::abs(naive[1].worst.precision - 1.0 / 16.0) < 1e-12;
  std::cout << "\nexact reproduction of the paper's numbers: "
            << (exact ? "YES" : "NO") << "\n";
  return exact ? 0 : 1;
}
