// Reproduces Figure 10: "Measured Â^δ_{S2/S1} for two rather different
// system improvements" — the answer-size-ratio curves of the clustering
// improvement (S2-one, smooth decline) and the beam improvement (S2-two,
// aggressive cliff that still retains the best-scored answers).

#include <iostream>

#include "common/ascii_chart.h"
#include "common/experiment.h"
#include "common/table.h"

int main() {
  using namespace smb;
  std::cout << "=== Figure 10: answer size ratio A2/A1 vs threshold ===\n\n";
  auto experiment = bench::BuildExperiment();
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }
  bench::PrintExperimentSummary(*experiment, std::cout);

  std::vector<double> one = experiment->RatiosOf(experiment->s2_one);
  std::vector<double> two = experiment->RatiosOf(experiment->s2_two);

  TextTable table({"δ", "|A1|", "|A2-one|", "ratio-one", "|A2-two|",
                   "ratio-two"});
  for (size_t i = 0; i < experiment->thresholds.size(); ++i) {
    double delta = experiment->thresholds[i];
    table.AddRow({FormatDouble(delta, 2),
                  std::to_string(experiment->s1.CountAtThreshold(delta)),
                  std::to_string(experiment->s2_one.CountAtThreshold(delta)),
                  FormatDouble(one[i], 3),
                  std::to_string(experiment->s2_two.CountAtThreshold(delta)),
                  FormatDouble(two[i], 3)});
  }
  table.Print(std::cout);

  ChartSeries series_one{"S2-one (cluster)", 'o', experiment->thresholds, one};
  ChartSeries series_two{"S2-two (beam)", 'x', experiment->thresholds, two};
  ChartOptions chart;
  chart.x_min = 0.0;
  chart.x_max = experiment->options.delta_max;
  chart.x_label = "threshold δ";
  chart.y_label = "A2/A1";
  std::cout << "\n";
  RenderChart({series_one, series_two}, chart, std::cout);

  std::cout << "\nshape check (paper: S2-one declines smoothly, ~0.6 "
               "retained at δ=0.25;\n             S2-two drops to ~0.25-0.3 "
               "past δ≈0.13 but keeps the best answers)\n";
  std::cout << "  ratio-one @ δmax = " << FormatDouble(one.back(), 3) << "\n";
  std::cout << "  ratio-two @ δmax = " << FormatDouble(two.back(), 3) << "\n";
  std::cout << "  ratio-one @ first nonempty δ = " << FormatDouble(one.front(), 3)
            << ", ratio-two = " << FormatDouble(two.front(), 3) << "\n";
  return 0;
}
