// Ablation Abl-4 (negative control): the technique is only sound when the
// improved system uses the SAME objective function (§2.3). This bench
// builds a "fake improvement" that re-ranks with a *different* Δ (structure
// weight zeroed), shows that
//   (a) the library's contract check catches the violation, and
//   (b) had one ignored the check, the computed "bounds" can be violated by
//       the actual effectiveness — i.e., the assumption is load-bearing.

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/experiment.h"
#include "common/table.h"
#include "match/exhaustive_matcher.h"

int main() {
  using namespace smb;
  std::cout << "=== Ablation (negative control): S2 with a DIFFERENT "
               "objective function ===\n\n";
  bench::ExperimentOptions options;
  options.num_schemas = 150;
  auto experiment = bench::BuildExperiment(options);
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }

  // The "cheating" system: exhaustive search, but its Δ ignores structure
  // entirely (weight_structure = 0) — it ranks differently and produces
  // answers S1 never emits below the threshold.
  match::MatchOptions cheat_options = experiment->match_options;
  cheat_options.objective.weight_name = 1.0;
  cheat_options.objective.weight_structure = 0.0;
  match::ExhaustiveMatcher cheat;
  auto a_cheat = cheat.Match(experiment->collection.query,
                             experiment->collection.repository, cheat_options);
  if (!a_cheat.ok()) {
    std::cerr << "cheat matcher failed: " << a_cheat.status() << "\n";
    return 1;
  }

  // (a) The contract check rejects it.
  Status contract = match::AnswerSet::VerifySameObjective(*a_cheat,
                                                          experiment->s1);
  std::cout << "VerifySameObjective(cheating S2, S1):\n  "
            << contract.ToString().substr(0, 120) << "...\n\n";
  if (contract.ok()) {
    std::cerr << "ERROR: the contract check should have failed\n";
    return 1;
  }

  // (b) Force the bounds computation anyway (clamping sizes so the math
  // runs) and count how often the actual effectiveness escapes the
  // "bounds" — demonstrating they are meaningless without the assumption.
  std::vector<size_t> sizes = a_cheat->SizesAt(experiment->thresholds);
  bounds::BoundsInput input;
  input.total_correct =
      static_cast<double>(experiment->s1_curve.total_correct());
  for (size_t i = 0; i < experiment->thresholds.size(); ++i) {
    const auto& p = experiment->s1_curve.points()[i];
    input.thresholds.push_back(p.threshold);
    input.s1_answers.push_back(static_cast<double>(p.answers));
    input.s1_correct.push_back(static_cast<double>(p.true_positives));
    input.s2_answers.push_back(static_cast<double>(sizes[i]));
  }
  input = bounds::ClampToContainment(std::move(input));
  auto curve = bounds::ComputeIncrementalBounds(input);
  if (!curve.ok()) {
    std::cerr << "bounds failed: " << curve.status() << "\n";
    return 1;
  }

  TextTable table({"δ", "\"worst P\"", "actual P", "\"best P\"", "escaped?"});
  size_t violations = 0;
  for (size_t i = 0; i < experiment->thresholds.size(); ++i) {
    eval::ConfusionCounts actual =
        eval::Evaluate(*a_cheat, experiment->collection.truth,
                       experiment->thresholds[i]);
    double p = eval::Precision(actual);
    const auto& b = curve->points[i];
    bool escaped = p < b.worst.precision - 1e-9 ||
                   p > b.best.precision + 1e-9;
    if (escaped) ++violations;
    table.AddRow({FormatDouble(experiment->thresholds[i], 2),
                  FormatDouble(b.worst.precision, 3), FormatDouble(p, 3),
                  FormatDouble(b.best.precision, 3),
                  escaped ? "YES" : "no"});
  }
  table.Print(std::cout);
  std::cout << "\n" << violations << " of " << experiment->thresholds.size()
            << " thresholds escaped the pseudo-bounds.\n";
  std::cout << "conclusion: without the shared-Δ assumption the bounds are "
               "not guarantees;\nthe library's VerifySameObjective contract "
               "check is the guard rail.\n";
  // The negative control *should* produce escapes; exit 0 either way but
  // report prominently.
  return 0;
}
