// Multi-query workload study: the paper's large-scale setting has *many*
// personal schemas querying one repository. This bench runs a workload of
// queries, micro-averages the S1 curve over all matching problems (§2.2's
// counts summed), and computes pooled effectiveness bounds for the
// improvements — the system-level version of Figure 11.

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/table.h"
#include "eval/workload.h"
#include "match/beam_matcher.h"
#include "match/cluster_matcher.h"
#include "match/exhaustive_matcher.h"
#include "schema/stats.h"
#include "synth/generator.h"

namespace {

using namespace smb;

constexpr size_t kQueries = 5;

}  // namespace

int main() {
  std::cout << "=== Workload study: pooled bounds over " << kQueries
            << " queries ===\n\n";

  // One repository; each query gets its own planted copies. Generating per
  // query and merging repositories keeps every problem's H non-empty.
  Rng rng(5150);
  synth::SynthOptions sopts;
  sopts.num_schemas = 60;  // per query -> 300 schemas total
  schema::SchemaRepository repo;
  std::vector<eval::MatchingProblem> problems;
  for (size_t q = 0; q < kQueries; ++q) {
    auto domain = static_cast<synth::Domain>(q % 3);
    sopts.domain = domain;
    Rng sub = rng.Fork();
    auto query = synth::GenerateQuery(domain, 4, &sub);
    if (!query.ok()) {
      std::cerr << "query: " << query.status() << "\n";
      return 1;
    }
    auto collection = synth::GenerateCollection(*query, sopts, &sub);
    if (!collection.ok()) {
      std::cerr << "collection: " << collection.status() << "\n";
      return 1;
    }
    // Re-index the planted keys into the merged repository.
    int32_t base = static_cast<int32_t>(repo.schema_count());
    eval::MatchingProblem problem;
    problem.name = "query-" + std::to_string(q);
    problem.query = std::move(collection->query);
    for (const match::Mapping::Key& key : collection->planted) {
      match::Mapping::Key shifted = key;
      shifted.schema_index += base;
      problem.truth.AddCorrect(std::move(shifted));
    }
    for (const schema::Schema& s : collection->repository.schemas()) {
      if (auto added = repo.Add(s); !added.ok()) {
        std::cerr << "merge: " << added.status() << "\n";
        return 1;
      }
    }
    problems.push_back(std::move(problem));
  }
  schema::PrintStats(schema::ComputeStats(repo), std::cout);

  static const sim::SynonymTable kSynonyms = sim::SynonymTable::Builtin();
  match::MatchOptions options;
  options.delta_threshold = 0.25;
  options.objective.name.synonyms = &kSynonyms;
  std::vector<double> thresholds = eval::UniformThresholds(0.25, 0.01);

  match::ExhaustiveMatcher s1;
  auto s1_result = eval::RunWorkload(s1, problems, repo, options, thresholds);
  if (!s1_result.ok()) {
    std::cerr << "S1 workload: " << s1_result.status() << "\n";
    return 1;
  }

  Rng cluster_rng(17);
  match::ClusterMatcherOptions copts;
  copts.top_m_clusters = 10;
  copts.clustering.num_clusters = 16;
  auto cluster_matcher = match::ClusterMatcher::Create(repo, copts,
                                                       &cluster_rng);
  if (!cluster_matcher.ok()) {
    std::cerr << "cluster: " << cluster_matcher.status() << "\n";
    return 1;
  }
  match::BeamMatcher beam(match::BeamMatcherOptions{6});

  TextTable table({"system", "pooled |A|@δmax", "states", "worst P@R≤0.2",
                   "P≥0.5 guaranteed up to R"});
  auto study = [&](const match::Matcher& matcher) -> int {
    auto result = eval::RunWorkload(matcher, problems, repo, options,
                                    thresholds);
    if (!result.ok()) {
      std::cerr << matcher.name() << ": " << result.status() << "\n";
      return 1;
    }
    auto input = bounds::InputFromMeasuredCurve(
        s1_result->pooled_curve, eval::PooledSizes(*result, thresholds));
    if (!input.ok()) {
      std::cerr << matcher.name() << " input: " << input.status() << "\n";
      return 1;
    }
    auto curve = bounds::ComputeIncrementalBounds(*input);
    if (!curve.ok()) {
      std::cerr << matcher.name() << " bounds: " << curve.status() << "\n";
      return 1;
    }
    double worst_low_recall = 1.0;
    for (const auto& point : curve->points) {
      if (point.worst.recall <= 0.2 && point.worst.precision > 0) {
        worst_low_recall = point.worst.precision;
      }
    }
    size_t pooled_total = 0;
    for (const auto& a : result->answers) pooled_total += a.size();
    table.AddRow({result->system_name, std::to_string(pooled_total),
                  std::to_string(result->stats.states_explored),
                  FormatDouble(worst_low_recall, 3),
                  FormatDouble(bounds::GuaranteedRecallAt(*curve, 0.5), 3)});
    return 0;
  };
  if (study(*cluster_matcher) != 0) return 1;
  if (study(beam) != 0) return 1;

  size_t s1_total = 0;
  for (const auto& a : s1_result->answers) s1_total += a.size();
  std::cout << "\nS1 pooled: " << s1_total << " answers, "
            << s1_result->stats.states_explored << " states, |H| = "
            << s1_result->pooled_curve.total_correct() << "\n\n";
  table.Print(std::cout);
  std::cout << "\nreading: the bounds technique extends unchanged to "
               "multi-query workloads —\ncounts are simply summed over the "
               "matching problems (§2.2).\n";
  return 0;
}
