// Reproduces Figure 11: best/worst/random-case P/R bounds for the two real
// improvements S2-one (clustering) and S2-two (beam search), derived from
// the measured S1 curve (Figure 5) and the answer-size ratios (Figure 10).
//
// Also prints the paper's style of guarantee statements, e.g. "for recall
// levels up to X, S2-one guarantees a worst case precision of 0.5".

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/ascii_chart.h"
#include "common/experiment.h"
#include "common/table.h"

namespace {

using namespace smb;

int PrintSystem(const bench::Experiment& experiment,
                const match::AnswerSet& s2, const std::string& name,
                std::vector<ChartSeries>* series, char best_glyph,
                char worst_glyph, char random_glyph) {
  auto input = bounds::InputFromMeasuredCurve(
      experiment.s1_curve, s2.SizesAt(experiment.thresholds));
  if (!input.ok()) {
    std::cerr << "input failed for " << name << ": " << input.status() << "\n";
    return 1;
  }
  auto curve = bounds::ComputeIncrementalBounds(*input);
  if (!curve.ok()) {
    std::cerr << "bounds failed for " << name << ": " << curve.status()
              << "\n";
    return 1;
  }

  std::cout << "--- " << name << " ---\n";
  TextTable table({"δ", "Â", "best P", "best R", "rand P", "rand R",
                   "worst P", "worst R"});
  ChartSeries best{name + " best", best_glyph, {}, {}};
  ChartSeries worst{name + " worst", worst_glyph, {}, {}};
  ChartSeries random{name + " random", random_glyph, {}, {}};
  for (const auto& point : curve->points) {
    table.AddRow({FormatDouble(point.threshold, 2),
                  FormatDouble(point.ratio, 3),
                  FormatDouble(point.best.precision, 3),
                  FormatDouble(point.best.recall, 3),
                  FormatDouble(point.random.precision, 3),
                  FormatDouble(point.random.recall, 3),
                  FormatDouble(point.worst.precision, 3),
                  FormatDouble(point.worst.recall, 3)});
    best.x.push_back(point.best.recall);
    best.y.push_back(point.best.precision);
    worst.x.push_back(point.worst.recall);
    worst.y.push_back(point.worst.precision);
    random.x.push_back(point.random.recall);
    random.y.push_back(point.random.precision);
  }
  table.Print(std::cout);

  double guaranteed_worst = bounds::GuaranteedRecallAt(*curve, 0.5);
  bounds::BoundsCurve random_as_worst = *curve;
  for (auto& p : random_as_worst.points) p.worst = p.random;
  double guaranteed_random = bounds::GuaranteedRecallAt(random_as_worst, 0.5);
  std::cout << "\n" << name << " guarantees worst-case precision ≥ 0.5 up to "
            << "recall " << FormatDouble(guaranteed_worst, 3) << "\n";
  std::cout << name << " keeps precision ≥ 0.5 up to recall "
            << FormatDouble(guaranteed_random, 3)
            << " under the random-baseline assumption (§3.4)\n\n";

  series->push_back(std::move(best));
  series->push_back(std::move(random));
  series->push_back(std::move(worst));
  return 0;
}

}  // namespace

int main() {
  std::cout << "=== Figure 11: best/worst/random case P/R bounds for the "
               "two systems ===\n\n";
  auto experiment = bench::BuildExperiment();
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }
  bench::PrintExperimentSummary(*experiment, std::cout);

  std::vector<ChartSeries> series;
  std::vector<double> sr, sp;
  for (const eval::PrPoint& p : experiment->s1_curve.points()) {
    sr.push_back(p.recall);
    sp.push_back(p.precision);
  }
  series.push_back(ChartSeries{"S1 measured", '.', sr, sp});

  if (PrintSystem(*experiment, experiment->s2_one, "S2-one (cluster)",
                  &series, '1', '_', 'r') != 0) {
    return 1;
  }
  if (PrintSystem(*experiment, experiment->s2_two, "S2-two (beam)", &series,
                  '2', '=', 'q') != 0) {
    return 1;
  }

  ChartOptions chart;
  chart.x_label = "Recall";
  chart.y_label = "Precision";
  RenderChart(series, chart, std::cout);

  std::cout << "\nshape check (paper): best and worst case diverge at higher "
               "recall; the\nrandom baseline lies between them and gives the "
               "more useful lower bound;\nnarrow bounds only in the top-N "
               "(low recall) region.\n";
  return 0;
}
