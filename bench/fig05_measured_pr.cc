// Reproduces Figure 5: the measured P/R curve of the original exhaustive
// system S1, obtained by sweeping the threshold δ and recording precision
// and recall against the (synthetic-oracle) ground truth.

#include <iostream>

#include "common/ascii_chart.h"
#include "common/experiment.h"
#include "common/table.h"

int main() {
  using namespace smb;
  std::cout << "=== Figure 5: measured P/R curve of S1 ===\n\n";
  auto experiment = bench::BuildExperiment();
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }
  bench::PrintExperimentSummary(*experiment, std::cout);

  TextTable table({"δ", "|A1|", "|T1|", "precision", "recall"});
  std::vector<double> recalls, precisions;
  for (const eval::PrPoint& p : experiment->s1_curve.points()) {
    table.AddRow({FormatDouble(p.threshold, 2), std::to_string(p.answers),
                  std::to_string(p.true_positives),
                  FormatDouble(p.precision, 4), FormatDouble(p.recall, 4)});
    recalls.push_back(p.recall);
    precisions.push_back(p.precision);
  }
  table.Print(std::cout);

  ChartSeries series{"S1 measured", '*', recalls, precisions};
  ChartOptions chart;
  chart.x_label = "Recall";
  chart.y_label = "Precision";
  std::cout << "\n";
  RenderChart({series}, chart, std::cout);

  std::cout << "\nshape check (paper: precision falls as the threshold — and "
               "with it recall — rises)\n";
  std::cout << "  P @ lowest measured recall  = "
            << FormatDouble(precisions.front(), 3) << "\n";
  std::cout << "  P @ highest measured recall = "
            << FormatDouble(precisions.back(), 3)
            << " (recall reached " << FormatDouble(recalls.back(), 3)
            << ")\n";
  return 0;
}
