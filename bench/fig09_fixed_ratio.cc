// Reproduces Figure 9: best/worst case P/R bounds for a hypothetical
// improvement that keeps a fixed fraction Â = 0.9 of the answers in every
// increment, computed over the measured S1 curve of Figure 5.

#include <iostream>

#include "bounds/bounds_report.h"
#include "common/ascii_chart.h"
#include "common/experiment.h"
#include "common/table.h"

int main() {
  using namespace smb;
  std::cout << "=== Figure 9: best/worst case P/R bounds at fixed "
               "Â = 0.9 ===\n\n";
  auto experiment = bench::BuildExperiment();
  if (!experiment.ok()) {
    std::cerr << "experiment failed: " << experiment.status() << "\n";
    return 1;
  }

  // Hypothetical S2: |A2^δ| = 0.9 · |A1^δ| at every threshold.
  std::vector<size_t> s2_sizes;
  for (const eval::PrPoint& p : experiment->s1_curve.points()) {
    s2_sizes.push_back(
        static_cast<size_t>(0.9 * static_cast<double>(p.answers)));
  }
  // Integer rounding: enforce monotonicity.
  for (size_t i = 1; i < s2_sizes.size(); ++i) {
    s2_sizes[i] = std::max(s2_sizes[i], s2_sizes[i - 1]);
  }
  auto input = bounds::InputFromMeasuredCurve(experiment->s1_curve, s2_sizes);
  if (!input.ok()) {
    std::cerr << "input failed: " << input.status() << "\n";
    return 1;
  }
  auto curve = bounds::ComputeIncrementalBounds(*input);
  if (!curve.ok()) {
    std::cerr << "bounds failed: " << curve.status() << "\n";
    return 1;
  }

  TextTable table({"δ", "Â", "best P", "best R", "worst P", "worst R",
                   "S1 P", "S1 R"});
  std::vector<double> br, bp, wr, wp, sr, sp;
  for (size_t i = 0; i < curve->points.size(); ++i) {
    const auto& point = curve->points[i];
    const auto& s1 = experiment->s1_curve.points()[i];
    table.AddRow({FormatDouble(point.threshold, 2),
                  FormatDouble(point.ratio, 3),
                  FormatDouble(point.best.precision, 3),
                  FormatDouble(point.best.recall, 3),
                  FormatDouble(point.worst.precision, 3),
                  FormatDouble(point.worst.recall, 3),
                  FormatDouble(s1.precision, 3), FormatDouble(s1.recall, 3)});
    bp.push_back(point.best.precision);
    br.push_back(point.best.recall);
    wp.push_back(point.worst.precision);
    wr.push_back(point.worst.recall);
    sp.push_back(s1.precision);
    sr.push_back(s1.recall);
  }
  table.Print(std::cout);

  ChartSeries s1_series{"S1 measured", '.', sr, sp};
  ChartSeries best{"S2 best case", '+', br, bp};
  ChartSeries worst{"S2 worst case", '-', wr, wp};
  ChartOptions chart;
  chart.x_label = "Recall";
  chart.y_label = "Precision";
  std::cout << "\n";
  RenderChart({s1_series, best, worst}, chart, std::cout);

  std::cout << "\nshape check (paper): best case hugs the S1 curve from "
               "above, worst case\nfrom below; the envelope stays narrow "
               "because Â is close to 1.\n";
  return 0;
}
